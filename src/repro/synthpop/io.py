"""CSV serialisation of populations and contact networks.

The paper supplies population traits and contact networks to the simulations
as CSV files (Section III, "Input Data"), the persons file holding household
ID, age and age group, gender, county code, and home latitude/longitude, and
the network file holding the two person ids, start time, duration, and the
context of each endpoint.  These readers/writers reproduce those schemas so
the artefact sizes and parsing costs can be measured.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .activities import ACTIVITY_TYPES
from .contacts import ContactNetwork
from .persons import AGE_GROUPS, Population

PERSON_HEADER = [
    "pid", "hid", "age", "age_group", "gender", "county",
    "home_lat", "home_lon",
]

EDGE_HEADER = [
    "source", "target", "start", "duration",
    "source_activity", "target_activity", "weight",
]


def write_persons_csv(pop: Population, path: str | Path) -> int:
    """Write the persons file; returns the number of data rows written."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(PERSON_HEADER)
        for i in range(pop.size):
            w.writerow([
                int(pop.pid[i]), int(pop.hid[i]), int(pop.age[i]),
                AGE_GROUPS[pop.age_group[i]],
                "F" if pop.gender[i] == 0 else "M",
                int(pop.county[i]),
                f"{pop.home_lat[i]:.5f}", f"{pop.home_lon[i]:.5f}",
            ])
    return pop.size


def read_persons_csv(path: str | Path, region_code: str) -> Population:
    """Read a persons file back into a :class:`Population`."""
    rows = list(csv.DictReader(Path(path).open()))
    n = len(rows)
    group_idx = {g: i for i, g in enumerate(AGE_GROUPS)}
    pop = Population(
        region_code=region_code,
        pid=np.asarray([int(r["pid"]) for r in rows], np.int64),
        hid=np.asarray([int(r["hid"]) for r in rows], np.int64),
        age=np.asarray([int(r["age"]) for r in rows], np.int16),
        age_group=np.asarray(
            [group_idx[r["age_group"]] for r in rows], np.int8),
        gender=np.asarray(
            [0 if r["gender"] == "F" else 1 for r in rows], np.int8),
        county=np.asarray([int(r["county"]) for r in rows], np.int32),
        home_lat=np.asarray([float(r["home_lat"]) for r in rows], np.float32),
        home_lon=np.asarray([float(r["home_lon"]) for r in rows], np.float32),
    )
    assert pop.size == n
    return pop


def write_network_csv(net: ContactNetwork, path: str | Path) -> int:
    """Write the contact-network file; returns the number of edges."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(EDGE_HEADER)
        for i in range(net.n_edges):
            w.writerow([
                int(net.source[i]), int(net.target[i]),
                int(net.start[i]), int(net.duration[i]),
                ACTIVITY_TYPES[net.source_activity[i]],
                ACTIVITY_TYPES[net.target_activity[i]],
                f"{net.weight[i]:.3f}",
            ])
    return net.n_edges


def read_network_csv(
    path: str | Path, n_nodes: int, region_code: str
) -> ContactNetwork:
    """Read a contact-network file back into a :class:`ContactNetwork`."""
    rows = list(csv.DictReader(Path(path).open()))
    act_idx = {a: i for i, a in enumerate(ACTIVITY_TYPES)}
    return ContactNetwork(
        region_code=region_code,
        n_nodes=n_nodes,
        source=np.asarray([int(r["source"]) for r in rows], np.int64),
        target=np.asarray([int(r["target"]) for r in rows], np.int64),
        start=np.asarray([int(r["start"]) for r in rows], np.int32),
        duration=np.asarray([int(r["duration"]) for r in rows], np.int32),
        source_activity=np.asarray(
            [act_idx[r["source_activity"]] for r in rows], np.int8),
        target_activity=np.asarray(
            [act_idx[r["target_activity"]] for r in rows], np.int8),
        weight=np.asarray([float(r["weight"]) for r in rows], np.float32),
    )
