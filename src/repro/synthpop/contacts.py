"""Contact-network derivation from co-occupancy (Appendix C, network model).

From the people-location visit table we form ``G_max`` (all pairs of people
simultaneously present at a location), then apply sub-location contact
modelling to retain a realistic subset, producing the typical-day contact
network ``G_Wednesday`` used by the simulations.

Each retained edge carries the paper's attributes (Section III): the two
person ids, the interaction start time and duration, and the activity
*context* of each endpoint (which may differ: a shopper contacts a worker).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..params import DEFAULT_SCALE, DEFAULT_SEED
from .activities import assign_activities
from .locations import VisitTable, assign_locations
from .persons import Population, generate_population
from .regions import Region, get_region

#: Locations with at most this many co-present visitors form a full clique
#: (small venues: households, small offices).
DENSE_THRESHOLD: int = 12

#: In larger venues each visitor contacts about this many random others.
CONTACTS_PER_VISITOR: int = 6

#: Minimum temporal overlap (minutes) for a contact to be retained.
MIN_OVERLAP_MIN: int = 5


@dataclass(slots=True)
class ContactNetwork:
    """Columnar undirected contact network for one region.

    Edges are stored once with ``source < target``.  The ``active`` flag is
    the dynamic on/off switch interventions toggle during simulation
    (Section III: "each edge ... can be turned on and off dynamically").
    """

    region_code: str
    n_nodes: int
    source: np.ndarray  #: int64
    target: np.ndarray  #: int64
    start: np.ndarray  #: int32 minutes after midnight
    duration: np.ndarray  #: int32 minutes of overlap
    source_activity: np.ndarray  #: int8 context of source endpoint
    target_activity: np.ndarray  #: int8 context of target endpoint
    weight: np.ndarray  #: float32 edge weight w_e in Eq. (1)
    active: np.ndarray = field(default_factory=lambda: np.empty(0, bool))

    def __post_init__(self) -> None:
        m = self.source.shape[0]
        for name in ("target", "start", "duration", "source_activity",
                     "target_activity", "weight"):
            if getattr(self, name).shape[0] != m:
                raise ValueError(f"edge column {name} length mismatch")
        if self.active.size == 0:
            self.active = np.ones(m, dtype=bool)
        if m and not (self.source < self.target).all():
            raise ValueError("edges must be canonical: source < target")

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.source.shape[0])

    def degrees(self) -> np.ndarray:
        """Degree of every node (counting inactive edges too)."""
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        np.add.at(deg, self.source, 1)
        np.add.at(deg, self.target, 1)
        return deg

    def mean_degree(self) -> float:
        """Average contact degree."""
        return 2.0 * self.n_edges / max(1, self.n_nodes)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node`` over all (active or not) edges."""
        out = np.concatenate([
            self.target[self.source == node],
            self.source[self.target == node],
        ])
        return np.unique(out)

    def subset(self, mask: np.ndarray) -> "ContactNetwork":
        """A new network containing only edges where ``mask`` is true."""
        return ContactNetwork(
            region_code=self.region_code,
            n_nodes=self.n_nodes,
            source=self.source[mask],
            target=self.target[mask],
            start=self.start[mask],
            duration=self.duration[mask],
            source_activity=self.source_activity[mask],
            target_activity=self.target_activity[mask],
            weight=self.weight[mask],
            active=self.active[mask],
        )


def _pairs_for_group(
    g: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Local index pairs (i, j) to evaluate for a co-location group of ``g``.

    Dense groups return every pair; sparse groups return a random sample of
    about ``g * CONTACTS_PER_VISITOR / 2`` candidate pairs (the sub-location
    contact model).
    """
    if g <= DENSE_THRESHOLD:
        return np.triu_indices(g, k=1)
    n_pairs = (g * CONTACTS_PER_VISITOR) // 2
    i = rng.integers(0, g, size=n_pairs)
    j = rng.integers(0, g, size=n_pairs)
    keep = i != j
    i, j = i[keep], j[keep]
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    return lo, hi


def derive_contacts(
    visits: VisitTable,
    n_nodes: int,
    region_code: str,
    rng: np.random.Generator,
) -> ContactNetwork:
    """Apply co-occupancy + sub-location modelling to build the network.

    Args:
        visits: the bipartite people-location table.
        n_nodes: population size (nodes may be isolated).
        region_code: postal code recorded on the network.
        rng: random generator for the sub-location sampling.

    Returns:
        The deduplicated typical-day :class:`ContactNetwork`.
    """
    order = np.argsort(visits.location, kind="stable")
    loc = visits.location[order]
    person = visits.person[order]
    kind = visits.kind[order]
    start = visits.start[order]
    end = start + visits.duration[order]

    srcs: list[np.ndarray] = []
    tgts: list[np.ndarray] = []
    e_start: list[np.ndarray] = []
    e_dur: list[np.ndarray] = []
    e_ka: list[np.ndarray] = []
    e_kb: list[np.ndarray] = []

    boundaries = np.flatnonzero(np.diff(loc)) + 1
    group_starts = np.concatenate([[0], boundaries])
    group_ends = np.concatenate([boundaries, [loc.size]])

    for a, b in zip(group_starts, group_ends):
        g = b - a
        if g < 2:
            continue
        li, lj = _pairs_for_group(int(g), rng)
        if li.size == 0:
            continue
        pi, pj = person[a + li], person[a + lj]
        ov_start = np.maximum(start[a + li], start[a + lj])
        ov_end = np.minimum(end[a + li], end[a + lj])
        overlap = ov_end - ov_start
        ok = (overlap >= MIN_OVERLAP_MIN) & (pi != pj)
        if not ok.any():
            continue
        li, lj, pi, pj = li[ok], lj[ok], pi[ok], pj[ok]
        # Canonicalise by person id; carry each endpoint's own context.
        swap = pi > pj
        s = np.where(swap, pj, pi)
        t = np.where(swap, pi, pj)
        ka = np.where(swap, kind[a + lj], kind[a + li])
        kb = np.where(swap, kind[a + li], kind[a + lj])
        srcs.append(s)
        tgts.append(t)
        e_start.append(ov_start[ok].astype(np.int32))
        e_dur.append(overlap[ok].astype(np.int32))
        e_ka.append(ka.astype(np.int8))
        e_kb.append(kb.astype(np.int8))

    if not srcs:
        empty_i64 = np.empty(0, np.int64)
        empty_i32 = np.empty(0, np.int32)
        empty_i8 = np.empty(0, np.int8)
        return ContactNetwork(
            region_code, n_nodes, empty_i64, empty_i64.copy(),
            empty_i32, empty_i32.copy(), empty_i8, empty_i8.copy(),
            np.empty(0, np.float32),
        )

    source = np.concatenate(srcs)
    target = np.concatenate(tgts)
    e_start_a = np.concatenate(e_start)
    e_dur_a = np.concatenate(e_dur)
    ka_a = np.concatenate(e_ka)
    kb_a = np.concatenate(e_kb)

    # Deduplicate (person pair, source context): keep the longest overlap.
    key = (source * n_nodes + target) * 8 + ka_a
    order = np.lexsort((-e_dur_a, key))
    key_sorted = key[order]
    first = np.ones(key_sorted.size, dtype=bool)
    first[1:] = key_sorted[1:] != key_sorted[:-1]
    sel = order[first]

    return ContactNetwork(
        region_code=region_code,
        n_nodes=n_nodes,
        source=source[sel],
        target=target[sel],
        start=e_start_a[sel],
        duration=e_dur_a[sel],
        source_activity=ka_a[sel],
        target_activity=kb_a[sel],
        weight=np.ones(sel.size, dtype=np.float32),
    )


def build_region_network(
    region: Region | str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> tuple[Population, ContactNetwork]:
    """End-to-end synthesis: persons -> activities -> locations -> contacts.

    This is the public entry point for generating one region's inputs; it is
    deterministic in ``(region, scale, seed)``.
    """
    if isinstance(region, str):
        region = get_region(region)
    pop = generate_population(region, scale=scale, seed=seed)
    rng = np.random.default_rng((seed, region.fips, 1))
    acts = assign_activities(pop, rng)
    visits = assign_locations(pop, acts, rng)
    net = derive_contacts(visits, pop.size, region.code, rng)
    return pop, net
