"""Synthetic populations and contact networks (paper Appendix C).

Public entry points:

- :func:`repro.synthpop.generate_population` — IPF-fitted persons/households.
- :func:`repro.synthpop.build_region_network` — full pipeline to a
  typical-day contact network.
- :data:`repro.synthpop.REGIONS` — the 51 modelled regions.
"""

from .binfmt import (
    read_network_binary,
    read_partition_chunks,
    write_network_binary,
    write_partition_chunks,
)
from .week import WeeklyActivities, assign_week, weekly_contact_summary
from .activities import ACTIVITY_TYPES, ActivityTable, assign_activities
from .contacts import ContactNetwork, build_region_network, derive_contacts
from .ipf import IPFError, IPFResult, ipf_fit, sample_joint
from .locations import VisitTable, assign_locations
from .persons import AGE_GROUPS, Population, generate_population
from .regions import ALL_CODES, BY_POPULATION, REGIONS, Region, get_region

__all__ = [
    "WeeklyActivities",
    "assign_week",
    "read_network_binary",
    "read_partition_chunks",
    "weekly_contact_summary",
    "write_network_binary",
    "write_partition_chunks",
    "ACTIVITY_TYPES",
    "AGE_GROUPS",
    "ALL_CODES",
    "BY_POPULATION",
    "ActivityTable",
    "ContactNetwork",
    "IPFError",
    "IPFResult",
    "Population",
    "REGIONS",
    "Region",
    "VisitTable",
    "assign_activities",
    "assign_locations",
    "build_region_network",
    "derive_contacts",
    "generate_population",
    "get_region",
    "ipf_fit",
    "sample_joint",
]
