"""Activity-sequence assignment (Appendix C, activity model).

Each synthetic person receives a sequence of timed activities for a "typical
day" (the paper builds week-long sequences from NHTS/ATUS/MTUS data and then
projects to ``G_Wednesday``; we generate the Wednesday slice directly).  An
activity has a type, a start time, and a duration.  Children attend school,
college-age persons may attend college, working-age adults work with an
employment probability, and everyone mixes in shopping / other / religion
activities with small probabilities.

Times are minutes since midnight; durations are minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .persons import Population

#: Activity types; order defines the integer encoding used everywhere.
#: These are exactly the paper's edge contexts (Section III): "home, work,
#: shopping, other, school, college, and religion".
ACTIVITY_TYPES: tuple[str, ...] = (
    "home",
    "work",
    "shopping",
    "other",
    "school",
    "college",
    "religion",
)

HOME, WORK, SHOPPING, OTHER, SCHOOL, COLLEGE, RELIGION = range(7)

#: Employment probability for ages 18-64.
EMPLOYMENT_RATE: float = 0.72

#: Probability that an 18-22 year old attends college.
COLLEGE_RATE: float = 0.45

#: Daily participation probabilities for discretionary activities.
SHOPPING_RATE: float = 0.35
OTHER_RATE: float = 0.25
RELIGION_RATE: float = 0.06


@dataclass(slots=True)
class ActivityTable:
    """Columnar table of person-activities for one region-day.

    Parallel arrays; one row per (person, activity) pair, sorted by person.
    """

    person: np.ndarray  #: int64 person id
    kind: np.ndarray  #: int8 index into ACTIVITY_TYPES
    start: np.ndarray  #: int32 minutes after midnight
    duration: np.ndarray  #: int32 minutes

    @property
    def size(self) -> int:
        """Total number of activity rows."""
        return int(self.person.shape[0])

    def for_person(self, pid: int) -> np.ndarray:
        """Row indices of activities belonging to ``pid``."""
        return np.flatnonzero(self.person == pid)

    def kind_counts(self) -> dict[str, int]:
        """Mapping activity-type name -> number of rows of that type."""
        counts = np.bincount(self.kind, minlength=len(ACTIVITY_TYPES))
        return {name: int(c) for name, c in zip(ACTIVITY_TYPES, counts)}


def _jitter(rng: np.random.Generator, center: int, spread: int, n: int) -> np.ndarray:
    """Integer times normally spread around ``center``, clipped to a day."""
    vals = rng.normal(center, spread, size=n)
    return np.clip(vals, 0, 24 * 60 - 1).astype(np.int32)


def assign_activities(
    pop: Population, rng: np.random.Generator
) -> ActivityTable:
    """Build the typical-Wednesday activity table for ``pop``.

    Every person always has an all-day *home* anchor activity; daytime
    activities (school / college / work / discretionary) are layered on top
    based on age and participation rates.

    Returns:
        An :class:`ActivityTable` sorted by person id.
    """
    n = pop.size
    persons: list[np.ndarray] = []
    kinds: list[np.ndarray] = []
    starts: list[np.ndarray] = []
    durs: list[np.ndarray] = []

    def emit(mask: np.ndarray, kind: int, start: np.ndarray, dur: np.ndarray) -> None:
        persons.append(pop.pid[mask])
        kinds.append(np.full(int(mask.sum()), kind, dtype=np.int8))
        starts.append(start)
        durs.append(dur)

    # Home anchor for everyone (overnight presence).
    all_mask = np.ones(n, dtype=bool)
    emit(all_mask, HOME, np.zeros(n, dtype=np.int32),
         np.full(n, 24 * 60, dtype=np.int32))

    age = pop.age
    u = rng.random(n)

    school_mask = (age >= 5) & (age <= 17)
    ns = int(school_mask.sum())
    emit(school_mask, SCHOOL, _jitter(rng, 8 * 60, 20, ns),
         rng.integers(6 * 60, 8 * 60, ns).astype(np.int32))

    college_mask = (age >= 18) & (age <= 22) & (u < COLLEGE_RATE)
    nc = int(college_mask.sum())
    emit(college_mask, COLLEGE, _jitter(rng, 9 * 60, 45, nc),
         rng.integers(3 * 60, 7 * 60, nc).astype(np.int32))

    work_mask = (age >= 18) & (age <= 64) & ~college_mask & (
        rng.random(n) < EMPLOYMENT_RATE
    )
    nw = int(work_mask.sum())
    emit(work_mask, WORK, _jitter(rng, 8 * 60 + 30, 60, nw),
         rng.integers(7 * 60, 10 * 60, nw).astype(np.int32))

    for kind, rate, center, dur_lo, dur_hi in (
        (SHOPPING, SHOPPING_RATE, 17 * 60, 20, 90),
        (OTHER, OTHER_RATE, 18 * 60, 30, 150),
        (RELIGION, RELIGION_RATE, 10 * 60, 60, 150),
    ):
        mask = rng.random(n) < rate
        m = int(mask.sum())
        emit(mask, kind, _jitter(rng, center, 90, m),
             rng.integers(dur_lo, dur_hi, m).astype(np.int32))

    person = np.concatenate(persons)
    order = np.argsort(person, kind="stable")
    return ActivityTable(
        person=person[order],
        kind=np.concatenate(kinds)[order],
        start=np.concatenate(starts)[order],
        duration=np.concatenate(durs)[order],
    )
