"""Region (state) metadata for the 50 US states plus Washington DC.

The paper builds one synthetic population and contact network per region
(Figure 6).  This module records real-world census-scale populations and
county counts so that scaled-down populations preserve the *relative*
distribution of node and edge counts across regions, which is what the
scheduling experiments (Figures 8 and 9) depend on.

Populations are 2019 vintage estimates (the data year the paper's networks
were built from), rounded to thousands.  County counts sum to 3,140, matching
"3140 counties across the USA" (Section I).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Region:
    """One of the 51 modelled regions (a US state or DC)."""

    code: str  #: two-letter postal code
    name: str
    population: int  #: real-scale number of residents
    counties: int  #: number of counties (or county equivalents)
    fips: int  #: 2-digit state FIPS prefix

    def scaled_population(self, scale: float) -> int:
        """Number of synthetic persons at ``scale`` (at least 50)."""
        return max(50, round(self.population * scale))


# code, name, population, counties, fips
_RAW: list[tuple[str, str, int, int, int]] = [
    ("AL", "Alabama", 4_903_000, 67, 1),
    ("AK", "Alaska", 731_000, 27, 2),
    ("AZ", "Arizona", 7_279_000, 15, 4),
    ("AR", "Arkansas", 3_018_000, 75, 5),
    ("CA", "California", 39_512_000, 58, 6),
    ("CO", "Colorado", 5_759_000, 64, 8),
    ("CT", "Connecticut", 3_565_000, 8, 9),
    ("DE", "Delaware", 974_000, 3, 10),
    ("DC", "District of Columbia", 706_000, 1, 11),
    ("FL", "Florida", 21_478_000, 67, 12),
    ("GA", "Georgia", 10_617_000, 159, 13),
    ("HI", "Hawaii", 1_416_000, 5, 15),
    ("ID", "Idaho", 1_787_000, 44, 16),
    ("IL", "Illinois", 12_672_000, 102, 17),
    ("IN", "Indiana", 6_732_000, 92, 18),
    ("IA", "Iowa", 3_155_000, 99, 19),
    ("KS", "Kansas", 2_913_000, 105, 20),
    ("KY", "Kentucky", 4_468_000, 120, 21),
    ("LA", "Louisiana", 4_649_000, 64, 22),
    ("ME", "Maine", 1_344_000, 16, 23),
    ("MD", "Maryland", 6_046_000, 24, 24),
    ("MA", "Massachusetts", 6_893_000, 14, 25),
    ("MI", "Michigan", 9_987_000, 83, 26),
    ("MN", "Minnesota", 5_640_000, 87, 27),
    ("MS", "Mississippi", 2_976_000, 82, 28),
    ("MO", "Missouri", 6_137_000, 115, 29),
    ("MT", "Montana", 1_069_000, 56, 30),
    ("NE", "Nebraska", 1_934_000, 93, 31),
    ("NV", "Nevada", 3_080_000, 17, 32),
    ("NH", "New Hampshire", 1_360_000, 10, 33),
    ("NJ", "New Jersey", 8_882_000, 21, 34),
    ("NM", "New Mexico", 2_097_000, 33, 35),
    ("NY", "New York", 19_454_000, 62, 36),
    ("NC", "North Carolina", 10_488_000, 100, 37),
    ("ND", "North Dakota", 762_000, 53, 38),
    ("OH", "Ohio", 11_689_000, 88, 39),
    ("OK", "Oklahoma", 3_957_000, 77, 40),
    ("OR", "Oregon", 4_218_000, 36, 41),
    ("PA", "Pennsylvania", 12_802_000, 67, 42),
    ("RI", "Rhode Island", 1_059_000, 5, 44),
    ("SC", "South Carolina", 5_149_000, 46, 45),
    ("SD", "South Dakota", 885_000, 66, 46),
    ("TN", "Tennessee", 6_829_000, 95, 47),
    ("TX", "Texas", 28_996_000, 254, 48),
    ("UT", "Utah", 3_206_000, 29, 49),
    ("VT", "Vermont", 624_000, 14, 50),
    ("VA", "Virginia", 8_536_000, 133, 51),
    ("WA", "Washington", 7_615_000, 39, 53),
    ("WV", "West Virginia", 1_792_000, 55, 54),
    ("WI", "Wisconsin", 5_822_000, 72, 55),
    ("WY", "Wyoming", 579_000, 23, 56),
]

#: All 51 regions keyed by postal code.
REGIONS: dict[str, Region] = {
    code: Region(code, name, pop, counties, fips)
    for code, name, pop, counties, fips in _RAW
}

#: Region codes sorted alphabetically (the paper's Figure 8 x-axis order).
ALL_CODES: tuple[str, ...] = tuple(sorted(REGIONS))

#: Region codes in ascending population order (Figure 6 x-axis order).
BY_POPULATION: tuple[str, ...] = tuple(
    sorted(REGIONS, key=lambda c: REGIONS[c].population)
)


def get_region(code: str) -> Region:
    """Look up a region by its postal code, case-insensitively."""
    try:
        return REGIONS[code.upper()]
    except KeyError:
        raise KeyError(f"unknown region code {code!r}") from None


def total_population() -> int:
    """Real-scale population across all 51 regions (about 328M)."""
    return sum(r.population for r in REGIONS.values())


def total_counties() -> int:
    """Total number of counties across all regions (3,140 in the paper)."""
    return sum(r.counties for r in REGIONS.values())


def county_fips(region: Region) -> list[int]:
    """Synthetic 5-digit county FIPS codes for ``region``.

    Real county FIPS are odd numbers ``1, 3, 5, ...`` within the state; we
    follow the same convention so identifiers look like the paper's inputs.
    """
    return [region.fips * 1000 + (2 * i + 1) for i in range(region.counties)]
