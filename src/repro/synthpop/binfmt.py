"""Binary contact-network format and partitioned chunk files.

"All inputs to EpiHiper are given in JSON format, with the exception of the
contact network, which, due to its large size, is in csv or binary format"
(Appendix D), and partitions are pre-computed and stored: "partitioning the
network to binary chunks for California alone would take over one hour"
(Section VI).

The binary layout is a little-endian header (magic, version, node count,
edge count) followed by fixed-width packed edge records — compact, mmap-able
and dramatically faster to load than CSV, which is the production rationale.
Partition chunk files carry one rank's edges each, so a simulated rank can
load only its slice.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from ..epihiper.partition import Partition
from .contacts import ContactNetwork

MAGIC = b"EPHN"
VERSION = 1
_HEADER = struct.Struct("<4sHHqq")  # magic, version, reserved, nodes, edges

#: numpy record layout of one edge (34 bytes packed).
EDGE_DTYPE = np.dtype([
    ("source", "<i8"),
    ("target", "<i8"),
    ("start", "<i4"),
    ("duration", "<i4"),
    ("source_activity", "<i1"),
    ("target_activity", "<i1"),
    ("weight", "<f4"),
    ("active", "<i1"),
])


def _to_records(net: ContactNetwork) -> np.ndarray:
    rec = np.empty(net.n_edges, dtype=EDGE_DTYPE)
    rec["source"] = net.source
    rec["target"] = net.target
    rec["start"] = net.start
    rec["duration"] = net.duration
    rec["source_activity"] = net.source_activity
    rec["target_activity"] = net.target_activity
    rec["weight"] = net.weight
    rec["active"] = net.active
    return rec


def _from_records(
    rec: np.ndarray, n_nodes: int, region_code: str
) -> ContactNetwork:
    return ContactNetwork(
        region_code=region_code,
        n_nodes=n_nodes,
        source=rec["source"].astype(np.int64),
        target=rec["target"].astype(np.int64),
        start=rec["start"].astype(np.int32),
        duration=rec["duration"].astype(np.int32),
        source_activity=rec["source_activity"].astype(np.int8),
        target_activity=rec["target_activity"].astype(np.int8),
        weight=rec["weight"].astype(np.float32),
        active=rec["active"].astype(bool),
    )


def write_network_binary(net: ContactNetwork, path: str | Path) -> int:
    """Write the binary network file; returns bytes written."""
    rec = _to_records(net)
    header = _HEADER.pack(MAGIC, VERSION, 0, net.n_nodes, net.n_edges)
    data = header + rec.tobytes()
    Path(path).write_bytes(data)
    return len(data)


def read_network_binary(path: str | Path, region_code: str) -> ContactNetwork:
    """Read a binary network file."""
    raw = Path(path).read_bytes()
    if len(raw) < _HEADER.size:
        raise ValueError("file too short for a network header")
    magic, version, _reserved, n_nodes, n_edges = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ValueError("not an EPHN network file")
    if version != VERSION:
        raise ValueError(f"unsupported network format version {version}")
    expected = _HEADER.size + n_edges * EDGE_DTYPE.itemsize
    if len(raw) != expected:
        raise ValueError(
            f"truncated network file: {len(raw)} bytes, expected {expected}")
    rec = np.frombuffer(raw, dtype=EDGE_DTYPE, offset=_HEADER.size)
    return _from_records(rec, int(n_nodes), region_code)


def write_partition_chunks(
    net: ContactNetwork,
    partition: Partition,
    directory: str | Path,
    *,
    prefix: str = "chunk",
) -> list[Path]:
    """Write one binary chunk per rank (the pre-computed partition files).

    Each chunk holds exactly the edges owned by that rank; the union of all
    chunks reconstructs the network.
    """
    if partition.node_owner.shape[0] != net.n_nodes:
        raise ValueError("partition does not match network")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for rank in range(partition.n_parts):
        mask = partition.edge_owner == rank
        chunk = net.subset(mask)
        path = directory / f"{prefix}_{rank:04d}.ephn"
        write_network_binary(chunk, path)
        paths.append(path)
    return paths


def read_partition_chunks(
    paths: list[str | Path], n_nodes: int, region_code: str
) -> ContactNetwork:
    """Reassemble a network from its partition chunks."""
    if not paths:
        raise ValueError("no chunk files given")
    parts = [read_network_binary(p, region_code) for p in paths]
    return ContactNetwork(
        region_code=region_code,
        n_nodes=n_nodes,
        source=np.concatenate([p.source for p in parts]),
        target=np.concatenate([p.target for p in parts]),
        start=np.concatenate([p.start for p in parts]),
        duration=np.concatenate([p.duration for p in parts]),
        source_activity=np.concatenate([p.source_activity for p in parts]),
        target_activity=np.concatenate([p.target_activity for p in parts]),
        weight=np.concatenate([p.weight for p in parts]),
        active=np.concatenate([p.active for p in parts]),
    )
