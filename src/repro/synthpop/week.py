"""Week-long activity sequences and the G_Wednesday projection.

Appendix C: each person is assigned "a week-long activity sequence", the
contact network G is derived for the whole week, and "for the applications
and scenarios of this paper, we project from G, the week-long contact
network, to G_Wednesday, representing the contact network on a 'typical
day'".

This module builds the weekly schedule — weekday templates Monday-Friday,
distinct weekend behaviour (no school/work for most, more discretionary and
religious activity on Sunday) — and provides the per-day projection, with
Wednesday reproducing the single-day generator used elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activities import (
    ACTIVITY_TYPES,
    ActivityTable,
    RELIGION,
    SCHOOL,
    WORK,
    assign_activities,
)
from .persons import Population

#: Day labels; index is the day-of-week key used throughout.
WEEKDAYS: tuple[str, ...] = (
    "monday", "tuesday", "wednesday", "thursday", "friday",
    "saturday", "sunday",
)
WEDNESDAY: int = 2

#: Fraction of workers who also work a weekend day.
WEEKEND_WORK_RATE: float = 0.18
#: Multiplier on discretionary participation at weekends.
WEEKEND_DISCRETIONARY_BOOST: float = 1.6
#: Religion participation on Sunday vs the weekday rate.
SUNDAY_RELIGION_RATE: float = 0.35


@dataclass(frozen=True)
class WeeklyActivities:
    """Seven per-day activity tables for one population."""

    days: tuple[ActivityTable, ...]

    def __post_init__(self) -> None:
        if len(self.days) != 7:
            raise ValueError("a week has 7 days")

    def day(self, index: int) -> ActivityTable:
        """The activity table of one day (0 = Monday)."""
        return self.days[index]

    @property
    def wednesday(self) -> ActivityTable:
        """The typical-day slice the simulations use."""
        return self.days[WEDNESDAY]

    def total_rows(self) -> int:
        """Activity rows across the week."""
        return sum(d.size for d in self.days)


def _weekend_table(
    pop: Population, rng: np.random.Generator, *, sunday: bool
) -> ActivityTable:
    """A weekend day's activities: home anchor, rare work, boosted
    discretionary, Sunday religion."""
    base = assign_activities(pop, rng)
    keep = np.ones(base.size, dtype=bool)

    # Drop school entirely; keep a small fraction of work.
    keep[base.kind == SCHOOL] = False
    work_rows = np.flatnonzero(base.kind == WORK)
    drop_work = rng.random(work_rows.size) >= WEEKEND_WORK_RATE
    keep[work_rows[drop_work]] = False

    table = ActivityTable(
        person=base.person[keep],
        kind=base.kind[keep],
        start=base.start[keep],
        duration=base.duration[keep],
    )

    if sunday:
        # Additional Sunday-morning religion rows.
        attending = rng.random(pop.size) < SUNDAY_RELIGION_RATE
        pids = pop.pid[attending]
        extra = ActivityTable(
            person=pids,
            kind=np.full(pids.size, RELIGION, dtype=np.int8),
            start=np.full(pids.size, 10 * 60, dtype=np.int32),
            duration=rng.integers(60, 150, pids.size).astype(np.int32),
        )
        person = np.concatenate([table.person, extra.person])
        order = np.argsort(person, kind="stable")
        table = ActivityTable(
            person=person[order],
            kind=np.concatenate([table.kind, extra.kind])[order],
            start=np.concatenate([table.start, extra.start])[order],
            duration=np.concatenate([table.duration,
                                     extra.duration])[order],
        )
    return table


def assign_week(
    pop: Population, rng: np.random.Generator
) -> WeeklyActivities:
    """Build the full week of activity tables.

    Weekdays draw independent realisations of the weekday template (the
    day-to-day variation real sequences have); Saturday and Sunday use the
    weekend template.
    """
    days = []
    for d in range(5):
        days.append(assign_activities(pop, rng))
    days.append(_weekend_table(pop, rng, sunday=False))
    days.append(_weekend_table(pop, rng, sunday=True))
    return WeeklyActivities(tuple(days))


def weekly_contact_summary(week: WeeklyActivities) -> dict[str, list[int]]:
    """Per-day activity-type row counts (the weekly rhythm diagnostic)."""
    out: dict[str, list[int]] = {name: [] for name in ACTIVITY_TYPES}
    for table in week.days:
        counts = table.kind_counts()
        for name in ACTIVITY_TYPES:
            out[name].append(counts[name])
    return out
