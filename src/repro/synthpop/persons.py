"""Synthetic person and household generation (Appendix C, base population).

For each region the paper constructs a set of individuals with demographic
attributes fitted to census marginals by IPF, partitioned into households,
each with a residence location.  We reproduce that pipeline: an IPF fit over
an age-group x gender contingency table, sampling of persons, household
grouping with realistic size distribution, county assignment with a
heavy-tailed county-size distribution (so county-level curves look like
Figure 13), and home coordinates per household.

Person traits match the paper's list (Section III, "Input Data"): household
ID, age and age group, gender, county code, latitude/longitude of home.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..params import DEFAULT_SCALE, DEFAULT_SEED
from . import ipf
from .regions import Region, county_fips, get_region

#: Age-group labels used by the disease model (Table III columns).
AGE_GROUPS: tuple[str, ...] = ("0-4", "5-17", "18-49", "50-64", "65+")

#: Inclusive age bounds for each group.
AGE_BOUNDS: tuple[tuple[int, int], ...] = (
    (0, 4),
    (5, 17),
    (18, 49),
    (50, 64),
    (65, 99),
)

#: National age-group shares (ACS-like), used as the IPF target marginal.
AGE_GROUP_SHARES: tuple[float, ...] = (0.060, 0.163, 0.424, 0.193, 0.160)

#: Gender shares (female, male).
GENDER_SHARES: tuple[float, float] = (0.508, 0.492)

#: Household-size distribution for sizes 1..7 (ACS-like).
HOUSEHOLD_SIZE_PROBS: tuple[float, ...] = (
    0.283,
    0.345,
    0.151,
    0.128,
    0.058,
    0.023,
    0.012,
)


@dataclass(slots=True)
class Population:
    """Columnar synthetic population for one region.

    All columns are parallel numpy arrays of length ``size``; this mirrors
    the single persons CSV the paper feeds into its PostgreSQL servers and
    keeps the simulator fully vectorisable.
    """

    region_code: str
    pid: np.ndarray  #: int64 person id, 0..n-1
    hid: np.ndarray  #: int64 household id
    age: np.ndarray  #: int16 age in years
    age_group: np.ndarray  #: int8 index into AGE_GROUPS
    gender: np.ndarray  #: int8, 0 = female, 1 = male
    county: np.ndarray  #: int32 5-digit county FIPS
    home_lat: np.ndarray  #: float32
    home_lon: np.ndarray  #: float32
    county_codes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int32))

    def __post_init__(self) -> None:
        n = self.pid.shape[0]
        for name in ("hid", "age", "age_group", "gender", "county",
                     "home_lat", "home_lon"):
            if getattr(self, name).shape[0] != n:
                raise ValueError(f"column {name} length mismatch")
        if self.county_codes.size == 0:
            self.county_codes = np.unique(self.county)

    @property
    def size(self) -> int:
        """Number of synthetic persons."""
        return int(self.pid.shape[0])

    @property
    def n_households(self) -> int:
        """Number of distinct households."""
        return int(np.unique(self.hid).size)

    def household_members(self, hid: int) -> np.ndarray:
        """Person ids belonging to household ``hid``."""
        return self.pid[self.hid == hid]

    def county_of(self, pids: np.ndarray) -> np.ndarray:
        """County FIPS for each person id in ``pids``."""
        return self.county[np.asarray(pids, dtype=np.int64)]

    def county_sizes(self) -> dict[int, int]:
        """Mapping county FIPS -> resident count."""
        codes, counts = np.unique(self.county, return_counts=True)
        return dict(zip(codes.tolist(), counts.tolist()))


def _county_weights(n_counties: int, rng: np.random.Generator) -> np.ndarray:
    """Heavy-tailed county population shares (rank-size / Zipf-like).

    Real county populations within a state follow an approximate Zipf law;
    this is what makes the county-level incidence curves of Figure 13 span
    orders of magnitude.
    """
    ranks = np.arange(1, n_counties + 1, dtype=np.float64)
    weights = ranks ** -0.9
    weights *= rng.lognormal(0.0, 0.25, size=n_counties)
    return weights / weights.sum()


def generate_population(
    region: Region | str,
    *,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> Population:
    """Synthesise the population of one region.

    Args:
        region: a :class:`Region` or its postal code.
        scale: fraction of the real population to synthesise.
        seed: RNG seed; combined with the region FIPS so every region gets an
            independent but reproducible stream.

    Returns:
        A :class:`Population` whose age-group and gender marginals match the
        census shares via IPF, grouped into households of realistic sizes,
        each household placed in a county and given home coordinates.
    """
    if isinstance(region, str):
        region = get_region(region)
    rng = np.random.default_rng((seed, region.fips))
    n = region.scaled_population(scale)

    # Fit the age-group x gender joint to the marginals.  The seed table is
    # mildly informative (slightly more women at older ages), so IPF has
    # real work to do.
    seed_table = np.ones((len(AGE_GROUPS), 2))
    seed_table[-1, 0] = 1.15  # female skew in 65+
    target_age = np.asarray(AGE_GROUP_SHARES) * n
    target_gender = np.asarray(GENDER_SHARES) * n
    fit = ipf.ipf_fit(seed_table, [target_age, target_gender])
    draws = ipf.sample_joint(fit.table, n, rng)
    age_group = draws[:, 0].astype(np.int8)
    gender = draws[:, 1].astype(np.int8)

    lo = np.asarray([b[0] for b in AGE_BOUNDS])[age_group]
    hi = np.asarray([b[1] for b in AGE_BOUNDS])[age_group]
    age = rng.integers(lo, hi + 1).astype(np.int16)

    # Households: draw sizes until they cover the population, assign people
    # to households in order.  The last household absorbs the remainder.
    sizes: list[int] = []
    covered = 0
    size_choices = np.arange(1, len(HOUSEHOLD_SIZE_PROBS) + 1)
    while covered < n:
        batch = rng.choice(size_choices, size=256, p=HOUSEHOLD_SIZE_PROBS)
        for s in batch:
            if covered >= n:
                break
            s = int(min(s, n - covered))
            sizes.append(s)
            covered += s
    hh_sizes = np.asarray(sizes, dtype=np.int64)
    hid = np.repeat(np.arange(hh_sizes.size, dtype=np.int64), hh_sizes)

    # Counties: each *household* lives in one county, drawn from the
    # heavy-tailed share distribution.
    fips_codes = np.asarray(county_fips(region), dtype=np.int32)
    shares = _county_weights(fips_codes.size, rng)
    hh_county = rng.choice(fips_codes, size=hh_sizes.size, p=shares)
    county = hh_county[hid]

    # Home coordinates: one point per household inside a synthetic county
    # bounding box laid out on a grid covering a nominal state extent.
    grid = int(np.ceil(np.sqrt(fips_codes.size)))
    county_idx = {int(c): i for i, c in enumerate(fips_codes)}
    cidx = np.asarray([county_idx[int(c)] for c in hh_county])
    cell_lat = (cidx // grid).astype(np.float64)
    cell_lon = (cidx % grid).astype(np.float64)
    lat0 = 36.0 + (region.fips % 7) * 0.5
    lon0 = -82.0 - (region.fips % 11) * 0.7
    hh_lat = lat0 + (cell_lat + rng.random(hh_sizes.size)) * (4.0 / grid)
    hh_lon = lon0 + (cell_lon + rng.random(hh_sizes.size)) * (6.0 / grid)

    return Population(
        region_code=region.code,
        pid=np.arange(n, dtype=np.int64),
        hid=hid,
        age=age,
        age_group=age_group,
        gender=gender,
        county=county.astype(np.int32),
        home_lat=hh_lat[hid].astype(np.float32),
        home_lon=hh_lon[hid].astype(np.float32),
        county_codes=fips_codes,
    )
