"""Iterative proportional fitting (IPF) for population synthesis.

The base population model of the paper (Appendix C) uses IPF [4], [13] to fit
a joint distribution of person attributes to known census marginals, then
samples individuals from the fitted joint.  This module implements the
classical Deming-Stephan algorithm for dense n-dimensional contingency
tables, fully vectorised with numpy broadcasting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class IPFError(ValueError):
    """Raised when the IPF inputs are inconsistent or fitting fails."""


@dataclass(frozen=True, slots=True)
class IPFResult:
    """Outcome of an IPF fit.

    Attributes:
        table: fitted joint table, same shape as the seed.
        iterations: number of full sweeps performed.
        max_error: worst absolute marginal violation at termination.
        converged: whether ``max_error <= tol`` was reached.
    """

    table: np.ndarray
    iterations: int
    max_error: float
    converged: bool


def _marginal(table: np.ndarray, axis: int) -> np.ndarray:
    """Marginal of ``table`` along ``axis`` (sum over all other axes)."""
    axes = tuple(a for a in range(table.ndim) if a != axis)
    return table.sum(axis=axes)


def ipf_fit(
    seed: np.ndarray,
    marginals: list[np.ndarray],
    *,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> IPFResult:
    """Fit ``seed`` to one target marginal per axis.

    Args:
        seed: non-negative n-dimensional array of prior cell weights.  Cells
            that are zero in the seed stay zero (structural zeros).
        marginals: one 1-D target vector per axis of ``seed``; all targets
            must have equal totals (up to floating error).
        tol: maximum absolute deviation of any fitted marginal entry from its
            target at convergence.
        max_iter: maximum number of full axis sweeps.

    Returns:
        An :class:`IPFResult` whose table matches every marginal to ``tol``
        when ``converged`` is true.

    Raises:
        IPFError: on shape mismatch, negative inputs, inconsistent totals, or
            a target that is unreachable because of structural zeros.
    """
    seed = np.asarray(seed, dtype=np.float64)
    if seed.ndim != len(marginals):
        raise IPFError(
            f"seed has {seed.ndim} axes but {len(marginals)} marginals given"
        )
    if (seed < 0).any():
        raise IPFError("seed must be non-negative")

    targets = [np.asarray(m, dtype=np.float64) for m in marginals]
    for axis, target in enumerate(targets):
        if target.ndim != 1 or target.shape[0] != seed.shape[axis]:
            raise IPFError(
                f"marginal {axis} has shape {target.shape}, "
                f"expected ({seed.shape[axis]},)"
            )
        if (target < 0).any():
            raise IPFError(f"marginal {axis} must be non-negative")

    totals = [t.sum() for t in targets]
    if totals and not np.allclose(totals, totals[0], rtol=1e-6):
        raise IPFError(f"marginal totals disagree: {totals}")

    table = seed.copy()
    n_iter = 0
    max_err = np.inf
    for n_iter in range(1, max_iter + 1):
        for axis, target in enumerate(targets):
            current = _marginal(table, axis)
            # Cells whose whole slice is zero can never reach a positive
            # target: that is a structural inconsistency.
            dead = (current == 0) & (target > 0)
            if dead.any():
                raise IPFError(
                    f"axis {axis} level(s) {np.flatnonzero(dead).tolist()} "
                    "are structurally zero in the seed but have a positive "
                    "target"
                )
            with np.errstate(divide="ignore", invalid="ignore"):
                factor = np.where(current > 0, target / current, 0.0)
            shape = [1] * table.ndim
            shape[axis] = table.shape[axis]
            table *= factor.reshape(shape)
        max_err = max(
            float(np.abs(_marginal(table, axis) - target).max())
            for axis, target in enumerate(targets)
        )
        if max_err <= tol:
            return IPFResult(table, n_iter, max_err, True)
    return IPFResult(table, n_iter, max_err, False)


def sample_joint(
    table: np.ndarray, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` index tuples from the joint distribution in ``table``.

    Returns an ``(n, table.ndim)`` integer array; each row is a cell index,
    drawn proportionally to the fitted cell weights.  This is the sampling
    step that turns the fitted contingency table into synthetic persons.
    """
    flat = table.ravel()
    total = flat.sum()
    if total <= 0:
        raise IPFError("cannot sample from an all-zero table")
    idx = rng.choice(flat.size, size=n, p=flat / total)
    return np.column_stack(np.unravel_index(idx, table.shape))
