"""Location model and location assignment (Appendix C).

The paper constructs a set of spatially embedded locations (residences plus
activity locations from building / POI / school data) and assigns every
non-home activity of every person to a location.  Work locations are chosen
using commute flows (most work in the home county, some commute out); school
locations are county-local; discretionary activities are anchored near home.

We reproduce that structure: per county we create a number of locations of
each activity type proportional to residents, and assign activities with a
commute-flow matrix for work.  The output is the bipartite people-location
visit table ``G_PL`` from which contacts are derived.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activities import (
    ACTIVITY_TYPES,
    COLLEGE,
    HOME,
    OTHER,
    RELIGION,
    SCHOOL,
    SHOPPING,
    WORK,
    ActivityTable,
)
from .persons import Population

#: Average number of assigned visitors per location, by activity type.
#: Controls location counts: a county with R residents doing activity k gets
#: about ``participants / VISITORS_PER_LOCATION[k]`` locations of type k.
VISITORS_PER_LOCATION: dict[int, int] = {
    WORK: 18,
    SHOPPING: 40,
    OTHER: 15,
    SCHOOL: 120,
    COLLEGE: 400,
    RELIGION: 60,
}

#: Fraction of workers who commute out of their home county.
OUT_COMMUTE_RATE: float = 0.22


@dataclass(slots=True)
class VisitTable:
    """The bipartite people-location graph ``G_PL`` for one region-day.

    One row per (person, location, activity) visit with timing; home visits
    point at per-household residence locations.
    """

    person: np.ndarray  #: int64
    location: np.ndarray  #: int64 globally unique location id
    kind: np.ndarray  #: int8 activity type of the visit
    start: np.ndarray  #: int32 minutes
    duration: np.ndarray  #: int32 minutes
    n_locations: int

    @property
    def size(self) -> int:
        """Number of visit rows."""
        return int(self.person.shape[0])

    def visitors_of(self, location: int) -> np.ndarray:
        """Person ids visiting ``location``."""
        return self.person[self.location == location]


def _commute_matrix(
    county_codes: np.ndarray, rng: np.random.Generator
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """For each county, the distribution over work-destination counties.

    Mirrors ACS commute-flow data [50]: most workers stay home, the rest
    spread over a handful of "nearby" counties (adjacent county indices).
    """
    k = county_codes.size
    flows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for i, code in enumerate(county_codes):
        neighbors = [(i + d) % k for d in (-2, -1, 1, 2) if k > 1]
        dests = np.asarray([code] + [county_codes[j] for j in neighbors])
        w = np.empty(dests.size)
        w[0] = 1.0 - OUT_COMMUTE_RATE
        if dests.size > 1:
            rest = rng.dirichlet(np.ones(dests.size - 1)) * OUT_COMMUTE_RATE
            w[1:] = rest
        else:
            w[0] = 1.0
        flows[int(code)] = (dests, w / w.sum())
    return flows


def assign_locations(
    pop: Population,
    acts: ActivityTable,
    rng: np.random.Generator,
) -> VisitTable:
    """Assign a location to every activity, yielding the visit table.

    Home activities map to one residence location per household.  Work uses
    the commute-flow matrix; school / college / shopping / other / religion
    are drawn from the home county's location pool of that type.

    Returns:
        A :class:`VisitTable`; location ids are contiguous ``0..L-1`` with
        residences first.
    """
    county_codes = pop.county_codes
    flows = _commute_matrix(county_codes, rng)

    # Residence locations: one per household.
    n_res = int(pop.hid.max()) + 1 if pop.size else 0
    next_loc = n_res

    # Pools of activity locations per (county, kind).
    pools: dict[tuple[int, int], np.ndarray] = {}

    def pool(county: int, kind: int, demand: int) -> np.ndarray:
        nonlocal next_loc
        key = (county, kind)
        if key not in pools:
            per_loc = VISITORS_PER_LOCATION[kind]
            n_loc = max(1, int(np.ceil(demand / per_loc)))
            pools[key] = np.arange(next_loc, next_loc + n_loc, dtype=np.int64)
            next_loc += n_loc
        return pools[key]

    location = np.empty(acts.size, dtype=np.int64)

    home_rows = acts.kind == HOME
    location[home_rows] = pop.hid[acts.person[home_rows]]

    person_county = pop.county[acts.person]

    # Work: pick destination county from the commute flow, then a location.
    work_rows = np.flatnonzero(acts.kind == WORK)
    if work_rows.size:
        dest = np.empty(work_rows.size, dtype=np.int64)
        home_counties = person_county[work_rows]
        for code in np.unique(home_counties):
            sel = home_counties == code
            dests, w = flows[int(code)]
            dest[sel] = rng.choice(dests, size=int(sel.sum()), p=w)
        # Demand per destination county sizes the pool.
        for code in np.unique(dest):
            sel = dest == code
            p = pool(int(code), WORK, int(sel.sum()))
            location[work_rows[sel]] = rng.choice(p, size=int(sel.sum()))

    # County-local activities.
    for kind in (SCHOOL, COLLEGE, SHOPPING, OTHER, RELIGION):
        rows = np.flatnonzero(acts.kind == kind)
        if not rows.size:
            continue
        counties = person_county[rows]
        for code in np.unique(counties):
            sel = counties == code
            p = pool(int(code), kind, int(sel.sum()))
            location[rows[sel]] = rng.choice(p, size=int(sel.sum()))

    return VisitTable(
        person=acts.person.copy(),
        location=location,
        kind=acts.kind.copy(),
        start=acts.start.copy(),
        duration=acts.duration.copy(),
        n_locations=next_loc,
    )


def location_kind_counts(visits: VisitTable) -> dict[str, int]:
    """Number of distinct locations observed per activity type."""
    out: dict[str, int] = {}
    for k, name in enumerate(ACTIVITY_TYPES):
        mask = visits.kind == k
        out[name] = int(np.unique(visits.location[mask]).size) if mask.any() else 0
    return out
