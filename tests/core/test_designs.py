"""Experiment-design tests (Table I scale checks)."""

import numpy as np
import pytest

from repro.core.designs import (
    Cell,
    ExperimentDesign,
    calibration_design,
    case_study_space,
    economic_design,
    factorial_cells,
    lhs_cells,
    prediction_design,
)


def test_economic_design_matches_table_i():
    d = economic_design()
    assert d.n_cells == 12  # 2 x 3 x 2
    assert d.n_regions == 51
    assert d.replicates == 15
    assert d.n_simulations == 9180


def test_prediction_design_matches_table_i():
    d = prediction_design()
    assert d.n_cells == 12  # 3 x 4
    assert d.n_simulations == 9180


def test_calibration_design_matches_table_i():
    d = calibration_design(seed=0)
    assert d.n_cells == 300
    assert d.replicates == 1
    assert d.n_simulations == 15300


def test_factorial_cells_expand():
    cells = factorial_cells({"a": [1, 2], "b": ["x", "y", "z"]})
    assert len(cells) == 6
    combos = {(c.params["a"], c.params["b"]) for c in cells}
    assert len(combos) == 6
    assert cells[0].index == 0


def test_factorial_requires_factors():
    with pytest.raises(ValueError):
        factorial_cells({})


def test_lhs_cells_within_space():
    space = case_study_space()
    cells = lhs_cells(space, 20, np.random.default_rng(0))
    assert len(cells) == 20
    for c in cells:
        for k, name in enumerate(space.names):
            assert space.lower[k] <= c.params[name] <= space.upper[k]


def test_case_study_space_names():
    space = case_study_space()
    assert space.names == ("TAU", "SYMP", "SH_COMPLIANCE", "VHI_COMPLIANCE")


def test_design_validation():
    with pytest.raises(ValueError):
        ExperimentDesign("x", ())
    with pytest.raises(ValueError):
        ExperimentDesign("x", (Cell(0),), replicates=0)


def test_instances_iteration():
    d = ExperimentDesign("x", (Cell(0), Cell(1)), ("VA", "MD"), 3)
    instances = list(d.instances())
    assert len(instances) == d.n_simulations == 12
    cell, region, rep = instances[0]
    assert cell.index == 0 and region == "VA" and rep == 0


def test_cell_label():
    c = Cell(3, {"b": 2, "a": 1})
    assert c.label() == "cell3[a=1,b=2]"
