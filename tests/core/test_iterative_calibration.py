"""Iterative (sequential-design) calibration tests."""

import numpy as np
import pytest

from repro.core.calibration_wf import run_iterative_calibration


@pytest.fixture(scope="module")
def rounds():
    return run_iterative_calibration(
        "VT", n_rounds=2, n_cells=12, n_days=50, scale=1e-3, seed=5,
        mcmc_samples=250, mcmc_burn_in=250)


def test_round_count(rounds):
    assert len(rounds) == 2


def test_training_set_grows(rounds):
    first, second = rounds
    assert second.prior_design.shape[0] > first.prior_design.shape[0]
    assert second.sim_series.shape[0] == second.prior_design.shape[0]


def test_second_round_includes_first(rounds):
    first, second = rounds
    np.testing.assert_allclose(
        second.prior_design[: first.prior_design.shape[0]],
        first.prior_design)


def test_augmentation_from_posterior(rounds):
    """Round-2 additions are drawn from round 1's posterior support."""
    first, second = rounds
    extra = second.prior_design[first.prior_design.shape[0]:]
    assert first.space.contains(extra).all()


def test_posteriors_stay_in_space(rounds):
    for r in rounds:
        assert r.space.contains(r.posterior.theta_samples).all()


def test_validation():
    with pytest.raises(ValueError):
        run_iterative_calibration("VT", n_rounds=0)
