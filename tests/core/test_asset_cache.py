"""The bounded per-process asset cache and its ``assets.cache.*`` telemetry.

Regression for the unbounded-cache satellite: the historical
``lru_cache(maxsize=64)`` could pin 64 full region bundles in a worker
while the warm-pool preload cap promised at most a handful.  The cache
now honours ``max_preload_assets()`` (re-read per insert) and publishes
hit/miss/eviction counters.
"""

import pytest

from repro.core import runner
from repro.core.runner import _AssetCache, load_region_assets
from repro.obs import MetricsRegistry
from repro.plane.manifest import AssetKey


@pytest.fixture(autouse=True)
def _clean_cache():
    load_region_assets.cache_clear()
    yield
    load_region_assets.cache_clear()


def test_capacity_tracks_preload_cap(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "2")
    assert _AssetCache.capacity() == 2
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "0")
    assert _AssetCache.capacity() == 1  # floor: the bundle in use stays
    monkeypatch.delenv("REPRO_MAX_PRELOAD_ASSETS")
    from repro.core.parallel import MAX_PRELOAD_ASSETS

    assert _AssetCache.capacity() == MAX_PRELOAD_ASSETS


def test_lru_eviction_respects_cap_and_counts(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "2")
    cache = _AssetCache()
    reg = MetricsRegistry()
    k = [AssetKey("VT", 1e-3, i) for i in range(3)]
    cache.put(k[0], "a0", reg)
    cache.put(k[1], "a1", reg)
    assert cache.get(k[0], reg) == "a0"  # refresh 0: now 1 is LRU
    cache.put(k[2], "a2", reg)
    assert len(cache) == 2
    assert reg.value("assets.cache.evictions") == 1
    assert cache.get(k[1], reg) is None  # the LRU one went
    assert cache.get(k[0], reg) == "a0"
    assert cache.get(k[2], reg) == "a2"
    assert reg.value("assets.cache.hits") == 3
    assert reg.value("assets.cache.misses") == 1


def test_cap_shrink_applies_on_next_insert(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "4")
    cache = _AssetCache()
    reg = MetricsRegistry()
    for i in range(4):
        cache.put(AssetKey("VT", 1e-3, i), i, reg)
    assert len(cache) == 4
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "2")
    cache.put(AssetKey("VT", 1e-3, 99), 99, reg)
    assert len(cache) == 2  # shrunk without a restart
    assert reg.value("assets.cache.evictions") == 3


def test_load_region_assets_publishes_metrics():
    reg = MetricsRegistry()
    a = load_region_assets("VT", 1e-3, 424242, 40, metrics=reg)
    b = load_region_assets("VT", 1e-3, 424242, 40, metrics=reg)
    assert a is b
    assert reg.value("assets.cache.misses") == 1
    assert reg.value("assets.cache.hits") == 1
    # Distinct truth horizon = distinct canonical key = a real miss.
    c = load_region_assets("VT", 1e-3, 424242, 50, metrics=reg)
    assert c is not a
    assert reg.value("assets.cache.misses") == 2


def test_cache_clear_back_compat():
    reg = MetricsRegistry()
    load_region_assets("VT", 1e-3, 424242, 40, metrics=reg)
    assert len(runner._ASSET_CACHE) == 1
    load_region_assets.cache_clear()
    assert len(runner._ASSET_CACHE) == 0
