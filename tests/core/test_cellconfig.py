"""Cell-configuration serialisation and execution tests."""

import pytest

from repro.core.cellconfig import (
    CellConfig,
    configs_from_design,
    execute_config,
    read_config_bundle,
    write_config_bundle,
)
from repro.core.designs import ExperimentDesign, factorial_cells


def test_config_validation():
    with pytest.raises(KeyError):
        CellConfig(region_code="ZZ")
    with pytest.raises(ValueError):
        CellConfig(region_code="VT", n_days=-1)
    with pytest.raises(ValueError):
        CellConfig(region_code="VT", scale=0.0)


def test_instance_id():
    c = CellConfig(region_code="VA", cell_index=3, replicate=7)
    assert c.instance_id == "VA-c3-r7"


def test_json_roundtrip():
    c = CellConfig(
        region_code="VT", cell_index=2, replicate=1, n_days=60,
        scale=1e-3, seed=5,
        disease={"TAU": 0.22, "SYMP": 0.6},
        interventions={"SH_COMPLIANCE": 0.7, "lockdown_days": 45},
    )
    back = CellConfig.from_json(c.to_json())
    assert back == c
    assert back.runner_params() == {
        "TAU": 0.22, "SYMP": 0.6, "SH_COMPLIANCE": 0.7,
        "lockdown_days": 45}


def test_rejects_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        CellConfig.from_dict({"schema": 99, "region_code": "VT"})


def test_bundle_roundtrip(tmp_path):
    configs = [
        CellConfig(region_code="VT", cell_index=i, disease={"TAU": 0.2})
        for i in range(5)
    ]
    path = tmp_path / "bundle.json"
    size = write_config_bundle(configs, path)
    assert size == path.stat().st_size
    back = read_config_bundle(path)
    assert back == configs


def test_configs_from_design():
    cells = factorial_cells({"TAU": [0.1, 0.3], "sh_compliance": [0.5]})
    design = ExperimentDesign("x", cells, ("VT", "RI"), 2)
    configs = configs_from_design(design, n_days=30, scale=1e-3, seed=1)
    assert len(configs) == design.n_simulations == 8
    # Disease vs intervention parameters are split correctly.
    c = configs[0]
    assert "TAU" in c.disease
    assert "sh_compliance" in c.interventions
    ids = {c.instance_id for c in configs}
    assert len(ids) == 8


def test_execute_config():
    config = CellConfig(
        region_code="VT", n_days=20, scale=1e-3, seed=3,
        disease={"TAU": 0.3},
        interventions={"VHI_COMPLIANCE": 0.5},
    )
    result, model = execute_config(config)
    assert result.n_days == 20
    assert model.transmissibility == 0.3


def test_execute_config_replicates_differ():
    base = dict(region_code="VT", n_days=30, scale=1e-3, seed=3,
                disease={"TAU": 0.3})
    r0, m = execute_config(CellConfig(**base, replicate=0))
    r1, _m = execute_config(CellConfig(**base, replicate=1))
    assert r0.log.size != r1.log.size or (
        r0.state_counts != r1.state_counts).any()
