"""Table I / Table II accounting tests."""

import pytest

from repro.core.accounting import (
    account_workflow,
    raw_bytes_per_simulation,
    summary_bytes_per_simulation,
    table_i,
)
from repro.core.designs import (
    calibration_design,
    economic_design,
    prediction_design,
)
from repro.params import GB, TB


def test_economic_row_matches_table_i():
    acct = account_workflow(economic_design())
    assert acct.n_simulations == 9180
    # Paper: ~3TB raw, ~2.5GB summary, ~1e9 summary entries.
    assert 2 * TB < acct.raw_bytes < 4.5 * TB
    assert 1.5 * GB < acct.summary_bytes < 3.5 * GB
    assert 0.7e9 < acct.summary_entries < 1.3e9


def test_calibration_row_matches_table_i():
    acct = account_workflow(calibration_design(seed=0))
    assert acct.n_simulations == 15300
    # Paper: ~5TB raw, ~4GB summary, ~1.5e9 entries.
    assert 3.5 * TB < acct.raw_bytes < 6.5 * TB
    assert 3 * GB < acct.summary_bytes < 5.5 * GB
    assert 1.2e9 < acct.summary_entries < 1.8e9


def test_prediction_row_matches_table_i():
    acct = account_workflow(prediction_design())
    assert acct.n_simulations == 9180
    # Paper: ~1TB raw (dendogram records), ~2.5GB summary.
    assert 0.5 * TB < acct.raw_bytes < 2 * TB
    assert 1.5 * GB < acct.summary_bytes < 3.5 * GB


def test_raw_bytes_scale_with_region():
    assert (raw_bytes_per_simulation("CA")
            > 10 * raw_bytes_per_simulation("WY"))


def test_raw_record_modes():
    t = raw_bytes_per_simulation("VA", raw_record="transition")
    d = raw_bytes_per_simulation("VA", raw_record="dendogram")
    assert t != d
    with pytest.raises(ValueError):
        raw_bytes_per_simulation("VA", raw_record="bogus")


def test_multi_million_transitions_per_simulation():
    """Section III: simulations emit multi-million state transitions."""
    from repro.core.accounting import (
        BYTES_PER_TREE_ENTRY,
        TRANSITIONS_PER_INFECTION,
    )
    from repro.params import BYTES_PER_TRANSITION
    raw = raw_bytes_per_simulation("VA")
    transitions = raw / BYTES_PER_TRANSITION
    assert transitions > 5e6


def test_summary_bytes_per_simulation():
    per_sim = summary_bytes_per_simulation()
    # 365 x 90 x 3 entries x ~2.7 bytes ~ 266KB.
    assert 200_000 < per_sim < 350_000


def test_table_renders():
    rows = [account_workflow(d) for d in
            (economic_design(), prediction_design())]
    text = table_i(rows)
    assert "economic" in text and "prediction" in text
    assert "TB" in text
