"""Workflow DAG engine tests."""

import pytest

from repro.core.engine import WorkflowEngine, WorkflowError
from repro.core.tasks import HOME, REMOTE, DataArtifact, WorkflowTask


def noop(ctx):
    return None


def test_topological_order():
    tasks = [
        WorkflowTask("c", HOME, noop, deps=("b",)),
        WorkflowTask("a", HOME, noop),
        WorkflowTask("b", HOME, noop, deps=("a",)),
    ]
    engine = WorkflowEngine(tasks)
    assert engine.order == ["a", "b", "c"]


def test_cycle_detected():
    tasks = [
        WorkflowTask("a", HOME, noop, deps=("b",)),
        WorkflowTask("b", HOME, noop, deps=("a",)),
    ]
    with pytest.raises(WorkflowError, match="cycle"):
        WorkflowEngine(tasks)


def test_unknown_dependency():
    with pytest.raises(WorkflowError, match="unknown"):
        WorkflowEngine([WorkflowTask("a", HOME, noop, deps=("ghost",))])


def test_duplicate_names():
    with pytest.raises(WorkflowError, match="duplicate"):
        WorkflowEngine([WorkflowTask("a", HOME, noop),
                        WorkflowTask("a", HOME, noop)])


def test_artifacts_flow():
    def produce(ctx):
        return {"data": DataArtifact("data", HOME, 100.0, payload=[1, 2])}

    def consume(ctx):
        assert ctx["artifacts"]["data"].payload == [1, 2]
        return None

    run = WorkflowEngine([
        WorkflowTask("p", HOME, produce),
        WorkflowTask("c", HOME, consume, deps=("p",)),
    ]).execute()
    assert "data" in run.artifacts


def test_site_violation_rejected():
    def bad(ctx):
        return {"data": DataArtifact("data", REMOTE, 1.0)}

    with pytest.raises(WorkflowError, match="without a transfer"):
        WorkflowEngine([WorkflowTask("p", HOME, bad)]).execute()


def test_transfer_prefix_allows_cross_site():
    def xfer(ctx):
        return {"xfer:data": DataArtifact("data", REMOTE, 1.0)}

    run = WorkflowEngine([WorkflowTask("t", HOME, xfer)]).execute()
    assert run.artifacts["data"].site == REMOTE


def test_timeline_serialises_per_site():
    tasks = [
        WorkflowTask("a", HOME, noop, est_duration=10.0),
        WorkflowTask("b", HOME, noop, est_duration=5.0),
        WorkflowTask("r", REMOTE, noop, est_duration=3.0),
    ]
    run = WorkflowEngine(tasks).execute()
    a, b, r = (run.task_run(n) for n in ("a", "b", "r"))
    assert a.started == 0.0 and a.finished == 10.0
    assert b.started == 10.0  # same site serialises
    assert r.started == 0.0  # different site runs in parallel
    assert run.makespan == 15.0


def test_deps_gate_start_across_sites():
    tasks = [
        WorkflowTask("home", HOME, noop, est_duration=7.0),
        WorkflowTask("remote", REMOTE, noop, deps=("home",),
                     est_duration=2.0),
    ]
    run = WorkflowEngine(tasks).execute()
    assert run.task_run("remote").started == 7.0
    assert run.makespan == 9.0


def test_task_run_lookup_missing():
    run = WorkflowEngine([WorkflowTask("a", HOME, noop)]).execute()
    with pytest.raises(KeyError):
        run.task_run("zzz")


def test_invalid_site():
    with pytest.raises(ValueError, match="site"):
        WorkflowTask("a", "moon", noop)
    with pytest.raises(ValueError, match="site"):
        DataArtifact("x", "moon", 1.0)


def test_artifact_helpers():
    art = DataArtifact("x", HOME, 2e9)
    moved = art.at(REMOTE)
    assert moved.site == REMOTE and moved.size_bytes == 2e9
    assert "2.0GB" in str(art)
    with pytest.raises(ValueError):
        DataArtifact("x", HOME, -1.0)
