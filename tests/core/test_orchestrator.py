"""Nightly orchestration tests (Figures 1-2, Table II ranges)."""

import pytest

from repro.core.designs import economic_design, prediction_design
from repro.core.orchestrator import orchestrate_night, weekly_timeline
from repro.params import GB, MB


@pytest.fixture(scope="module")
def night():
    return orchestrate_night(prediction_design(), seed=0)


def test_fits_nightly_window(night):
    """The production requirement: the batch completes inside 10 hours."""
    assert night.fits_window
    assert 0.5 < night.remote_hours < 10.0


def test_high_utilization_with_ffdt(night):
    assert night.utilization > 0.9


def test_config_transfer_within_table_ii_range(night):
    moved = night.link.bytes_moved(src="rivanna", dst="bridges")
    assert 100 * MB <= moved <= 8.7 * GB


def test_summary_transfer_within_table_ii_range(night):
    moved = night.link.bytes_moved(src="bridges", dst="rivanna")
    assert 120 * MB <= moved <= 70 * GB


def test_task_graph_executed_in_order(night):
    names = [r.task_name for r in night.workflow_run.runs]
    assert names.index("generate-configurations") < names.index(
        "transfer-configurations")
    assert names.index("run-simulations") < names.index(
        "transfer-summaries")
    assert names[-1] == "home-analytics"


def test_simulation_duration_patched(night):
    sim_run = night.workflow_run.task_run("run-simulations")
    assert sim_run.duration == pytest.approx(night.schedule.makespan)


def test_nfdt_longer_than_ffdt():
    nf = orchestrate_night(prediction_design(), algorithm="NFDT-DC", seed=0)
    ff = orchestrate_night(prediction_design(), algorithm="FFDT-DC", seed=0)
    assert nf.schedule.makespan > ff.schedule.makespan
    assert nf.utilization < ff.utilization


def test_onetime_staging():
    rep = orchestrate_night(prediction_design(),
                            include_onetime_transfer=True, seed=0)
    moved = rep.link.bytes_moved(src="rivanna", dst="bridges")
    assert moved > 2_000 * GB  # includes the 2TB one-time staging


def test_summary_text(night):
    text = night.summary()
    assert "prediction" in text
    assert "fits: True" in text


def test_weekly_timeline():
    reports = [orchestrate_night(prediction_design(), seed=s)
               for s in (0, 1)]
    text = weekly_timeline(reports)
    assert text.count("prediction") == 2
