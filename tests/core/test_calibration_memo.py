"""Memoized calibration: repeat runs execute zero simulations, and the
onset-alignment helper matches the historical inline logic."""

import numpy as np
import pytest

from repro.core.calibration_wf import (
    align_onset,
    run_calibration_workflow,
    run_iterative_calibration,
)
from repro.core.runner import load_region_assets, observed_series
from repro.store.cas import ContentStore
from repro.store.ledger import RunLedger, replay_ledger

ARGS = dict(n_cells=6, n_days=40, scale=1e-3, seed=11,
            mcmc_samples=120, mcmc_burn_in=120)


@pytest.fixture()
def store(tmp_path):
    return ContentStore(tmp_path / "store")


def test_repeat_workflow_serves_everything_from_store(store):
    first = run_calibration_workflow("VT", **ARGS, store=store,
                                     parallel=False)
    assert store.stats.misses == ARGS["n_cells"]
    assert store.stats.hits == 0

    second = run_calibration_workflow("VT", **ARGS, store=store,
                                      parallel=False)
    # The acceptance criterion: zero simulation executions on the repeat.
    assert store.stats.misses == ARGS["n_cells"]  # no new misses
    assert store.stats.hits == ARGS["n_cells"]
    assert store.stats.puts == ARGS["n_cells"]
    # Cached and uncached paths are bit-identical.
    np.testing.assert_array_equal(first.sim_series, second.sim_series)
    np.testing.assert_array_equal(first.observed, second.observed)
    np.testing.assert_array_equal(first.prior_design, second.prior_design)
    assert first.onset_day == second.onset_day


def test_uncached_and_cached_series_bit_identical(store):
    plain = run_calibration_workflow("VT", **ARGS, parallel=False)
    run_calibration_workflow("VT", **ARGS, store=store, parallel=False)
    cached = run_calibration_workflow("VT", **ARGS, store=store,
                                      parallel=False)
    np.testing.assert_array_equal(plain.sim_series, cached.sim_series)
    assert plain.sim_series.dtype == cached.sim_series.dtype


def test_workflow_ledger_journal(store, tmp_path):
    ledger = RunLedger(tmp_path / "cal.jsonl")
    run_calibration_workflow("VT", **ARGS, store=store, ledger=ledger,
                             parallel=False)
    run_calibration_workflow("VT", **ARGS, store=store, ledger=ledger,
                             parallel=False)
    replay = replay_ledger(tmp_path / "cal.jsonl")
    assert replay.count("instance_completed") == ARGS["n_cells"]
    assert replay.count("cache_hit") == ARGS["n_cells"]


def test_iterative_rounds_reuse_across_calls(store):
    kwargs = dict(n_rounds=2, n_cells=5, n_days=30, scale=1e-3, seed=13,
                  mcmc_samples=100, mcmc_burn_in=100)
    first = run_iterative_calibration("VT", **kwargs, store=store,
                                      parallel=False)
    executed = store.stats.misses
    assert executed == first[-1].sim_series.shape[0]  # every row simulated
    second = run_iterative_calibration("VT", **kwargs, store=store,
                                       parallel=False)
    assert store.stats.misses == executed  # the repeat call runs nothing
    np.testing.assert_array_equal(first[-1].sim_series,
                                  second[-1].sim_series)


def test_parallel_and_serial_calibration_identical(store, tmp_path):
    serial = run_calibration_workflow("VT", **ARGS, parallel=False)
    par = run_calibration_workflow(
        "VT", **ARGS, store=ContentStore(tmp_path / "p"), parallel=True,
        max_workers=2)
    np.testing.assert_array_equal(serial.sim_series, par.sim_series)


# --- align_onset ------------------------------------------------------------


def test_align_onset_matches_inline_logic():
    assets = load_region_assets("VT", 1e-3, 11)
    n_days = 40
    observed, onset = align_onset(assets.truth, 1e-3, n_days)

    full = observed_series(assets.truth, 1e-3, assets.truth.n_days - 1)
    nz = np.flatnonzero(full >= 1.0)
    expect_onset = int(nz[0]) if nz.size else 0
    expect_onset = min(expect_onset, full.shape[0] - (n_days + 1))
    assert onset == expect_onset
    np.testing.assert_array_equal(observed,
                                  full[onset: onset + n_days + 1])


def test_align_onset_window_shape():
    assets = load_region_assets("VT", 1e-3, 11)
    for n_days in (10, 40, 80):
        observed, onset = align_onset(assets.truth, 1e-3, n_days)
        assert observed.shape == (n_days + 1,)
        assert 0 <= onset <= assets.truth.n_days - (n_days + 1)


def test_align_onset_first_point_is_onset_case():
    """The window starts at the first day with >= 1 scaled case (when one
    exists and the window fits)."""
    assets = load_region_assets("VA", 1e-3, 11)
    observed, onset = align_onset(assets.truth, 1e-3, 40)
    full = observed_series(assets.truth, 1e-3, assets.truth.n_days - 1)
    if onset > 0 and (full >= 1.0).any() and full[onset] >= 1.0:
        assert (full[:onset] < 1.0).all()


def test_workflow_onset_consistent_with_helper():
    cal = run_calibration_workflow("VT", **ARGS, parallel=False)
    observed, onset = align_onset(cal.assets.truth, ARGS["scale"],
                                  ARGS["n_days"])
    assert cal.onset_day == onset
    np.testing.assert_array_equal(cal.observed, observed)
