"""Resumable nights: an interrupted run re-executes only the missing
instances after replaying its ledger."""

import json

import pytest

from repro.core.designs import ExperimentDesign, factorial_cells
from repro.core.orchestrator import orchestrate_night
from repro.store.ledger import RunLedger, replay_ledger

pytestmark = pytest.mark.fast


@pytest.fixture()
def design():
    return ExperimentDesign(
        name="mini",
        cells=factorial_cells({"TAU": [0.2, 0.3]}),
        regions=("VA", "VT"),
        replicates=2,
    )


def run_night(design, path, **kwargs):
    with RunLedger(path) as ledger:
        return orchestrate_night(design, seed=3, ledger=ledger, **kwargs)


def test_full_night_journals_every_instance(design, tmp_path):
    path = tmp_path / "night.jsonl"
    report = run_night(design, path)
    assert report.n_resumed == 0
    assert len(report.schedule.records) == design.n_simulations
    replay = replay_ledger(path)
    done = replay.completed("task_id", night=report.night_id)
    assert len(done) == len(report.schedule.records)
    assert replay.count("run_started") == replay.count("run_completed") == 1


def test_resume_after_interruption_runs_only_missing(design, tmp_path):
    full = tmp_path / "full.jsonl"
    baseline = run_night(design, full)
    n_jobs = len(baseline.schedule.records)

    # Simulate an interruption: keep only the first half of the journal.
    events = [json.loads(line) for line in full.read_text().splitlines()]
    completed = [e for e in events if e["event"] == "instance_completed"]
    kept = completed[: n_jobs // 2]
    partial = tmp_path / "partial.jsonl"
    partial.write_text("".join(json.dumps(e) + "\n" for e in kept))

    resumed = run_night(design, partial, resume=True)
    assert resumed.n_resumed == len(kept)
    assert len(resumed.schedule.records) == n_jobs - len(kept)
    kept_ids = {e["task_id"] for e in kept}
    ran_ids = {r.job.job_id for r in resumed.schedule.records}
    assert ran_ids.isdisjoint(kept_ids)
    assert ran_ids | kept_ids == {r.job.job_id
                                  for r in baseline.schedule.records}
    # After the resumed run the journal covers the whole night.
    done = replay_ledger(partial).completed("task_id",
                                            night=resumed.night_id)
    assert done == kept_ids | ran_ids


def test_resume_of_complete_night_executes_nothing(design, tmp_path):
    path = tmp_path / "night.jsonl"
    run_night(design, path)
    resumed = run_night(design, path, resume=True)
    assert len(resumed.schedule.records) == 0
    assert resumed.n_resumed == design.n_simulations
    assert resumed.schedule.makespan == 0.0
    assert resumed.fits_window
    assert "0 re-executed" in resumed.summary()


def test_resume_scoped_by_night_id(design, tmp_path):
    """A ledger from a different seed does not satisfy this night."""
    path = tmp_path / "night.jsonl"
    with RunLedger(path) as ledger:
        orchestrate_night(design, seed=3, ledger=ledger)
    with RunLedger(path) as ledger:
        other = orchestrate_night(design, seed=4, ledger=ledger,
                                  resume=True)
    assert other.n_resumed == 0
    assert len(other.schedule.records) > 0


def test_resume_requires_ledger(design):
    with pytest.raises(ValueError):
        orchestrate_night(design, resume=True)


def test_resumed_night_report_mentions_resume(design, tmp_path):
    path = tmp_path / "night.jsonl"
    baseline = run_night(design, path)
    resumed = run_night(design, path, resume=True)
    assert resumed.night_id == baseline.night_id
    assert f"resumed: {resumed.n_resumed}" in resumed.summary()
