"""Simulation-instance runner tests."""

import numpy as np
import pytest

from repro.core.runner import (
    build_interventions,
    confirmed_series,
    load_region_assets,
    observed_series,
    run_instance,
)


@pytest.fixture(scope="module")
def assets():
    return load_region_assets("VT", 1e-3, 7)


def test_assets_cached():
    a = load_region_assets("VT", 1e-3, 7)
    b = load_region_assets("VT", 1e-3, 7)
    assert a is b


def test_interventions_from_params():
    ivs = build_interventions({})
    assert [iv.name for iv in ivs] == ["SC"]
    ivs = build_interventions({
        "SH_COMPLIANCE": 0.5, "VHI_COMPLIANCE": 0.4,
        "reopen_level": 0.5, "tracing_compliance": 0.3,
    })
    names = [iv.name for iv in ivs]
    assert names == ["SC", "VHI", "SH", "RO", "D1CT"]


def test_lowercase_param_aliases():
    ivs = build_interventions({"sh_compliance": 0.5, "vhi_compliance": 0.3})
    assert {"SH", "VHI"} <= {iv.name for iv in ivs}


def test_run_instance_basic(assets):
    result, model = run_instance(
        assets, {"TAU": 0.25, "SYMP": 0.6}, n_days=40, seed=1)
    assert result.n_days == 40
    assert model.transmissibility == 0.25
    series = confirmed_series(result, model, 40)
    assert series.shape == (41,)
    assert (np.diff(series) >= 0).all()


def test_tau_increases_cases(assets):
    finals = []
    for tau in (0.05, 0.5):
        totals = []
        for seed in range(4):
            result, model = run_instance(
                assets, {"TAU": tau}, n_days=60, seed=seed)
            totals.append(confirmed_series(result, model, 60)[-1])
        finals.append(np.mean(totals))
    assert finals[1] > finals[0]


def test_observed_series_scaling(assets):
    obs = observed_series(assets.truth, 1e-3, 50)
    assert obs.shape == (51,)
    np.testing.assert_allclose(
        obs, assets.truth.state_cumulative()[:51] * 1e-3)


def test_observed_series_too_long(assets):
    with pytest.raises(ValueError):
        observed_series(assets.truth, 1e-3, 10_000)


def test_seeding_uses_surveillance(assets):
    result, _model = run_instance(assets, {}, n_days=0, seed=2)
    assert result.log.size > 0  # seeds recorded at tick 0
    assert (result.log.tick == 0).all()


def test_backend_param_results_identical(assets):
    """The cell-level backend knob only changes speed, never results."""
    series = []
    for backend in ("dense", "frontier", "auto"):
        result, model = run_instance(
            assets, {"TAU": 0.3, "backend": backend}, n_days=20, seed=5)
        series.append(confirmed_series(result, model, 20))
    np.testing.assert_array_equal(series[0], series[1])
    np.testing.assert_array_equal(series[0], series[2])


def test_backend_param_invalid_rejected(assets):
    with pytest.raises(ValueError, match="unknown transmission backend"):
        run_instance(assets, {"backend": "sparse"}, n_days=1, seed=5)
