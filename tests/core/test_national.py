"""National multi-region sweep tests."""

import numpy as np
import pytest

from repro.analytics.targets import CONFIRMED, DEATHS
from repro.core.national import run_national


@pytest.fixture(scope="module")
def national():
    return run_national(
        {"TAU": 0.3}, (CONFIRMED, DEATHS),
        regions=("VT", "RI", "DE"), n_days=60, scale=1e-3, seed=9)


def test_shapes(national):
    assert national.series["confirmed"].shape == (3, 61)
    assert set(national.attack_rates) == {"VT", "RI", "DE"}


def test_national_sums_regions(national):
    total = national.national("confirmed")
    np.testing.assert_allclose(
        total, national.series["confirmed"].sum(axis=0))
    assert total[-1] > 0


def test_region_series_lookup(national):
    vt = national.region_series("confirmed", "VT")
    assert vt.shape == (61,)
    assert (np.diff(vt) >= 0).all()  # cumulative target


def test_attack_rates_in_range(national):
    for v in national.attack_rates.values():
        assert 0.0 <= v <= 1.0


def test_requires_regions():
    with pytest.raises(ValueError):
        run_national({"TAU": 0.2}, (CONFIRMED,), regions=())


def test_bigger_region_more_cases(national):
    # RI (~1.06M) vs VT (~0.62M): larger population, larger counts.
    ri = national.region_series("confirmed", "RI")[-1]
    vt = national.region_series("confirmed", "VT")[-1]
    assert ri + vt > 0
