"""Process-parallel instance execution tests."""

import numpy as np
import pytest

from repro.core.designs import ExperimentDesign, factorial_cells
from repro.core.parallel import (
    InstanceSpec,
    _asset_key,
    gather_ensemble,
    pool_chunksize,
    run_instances,
    specs_for_design,
)


def make_specs(n=4, region="VT"):
    return [
        InstanceSpec(region_code=region, params={"TAU": 0.3},
                     n_days=25, scale=1e-3, seed=100 + i,
                     label=f"s{i}")
        for i in range(n)
    ]


def test_serial_execution():
    outcomes = run_instances(make_specs(3), parallel=False)
    assert len(outcomes) == 3
    for o in outcomes:
        assert o.confirmed.shape == (26,)
        assert 0.0 <= o.attack_rate <= 1.0
        assert o.transitions >= 0


def test_parallel_matches_serial():
    specs = make_specs(4)
    serial = run_instances(specs, parallel=False)
    parallel = run_instances(specs, parallel=True, max_workers=2)
    for s, p in zip(serial, parallel):
        assert s.spec == p.spec
        np.testing.assert_array_equal(s.confirmed, p.confirmed)
        assert s.attack_rate == p.attack_rate


def test_results_in_input_order():
    specs = make_specs(5)
    outcomes = run_instances(specs, parallel=True, max_workers=3)
    assert [o.spec.label for o in outcomes] == [s.label for s in specs]


def test_empty_specs():
    assert run_instances([]) == []


def test_single_spec_runs_inline():
    outcomes = run_instances(make_specs(1))
    assert len(outcomes) == 1


def test_specs_for_design():
    cells = factorial_cells({"TAU": [0.1, 0.3]})
    design = ExperimentDesign("x", cells, ("VT",), 2)
    specs = specs_for_design(design, n_days=10, scale=1e-3, seed=0)
    assert len(specs) == 4
    seeds = {s.seed for s in specs}
    assert len(seeds) == 4  # distinct RNG streams per instance


def test_pool_chunksize_batches():
    assert pool_chunksize(3, 4) == 1  # never zero
    assert pool_chunksize(32, 4) == 2  # ~4 chunks per worker
    assert pool_chunksize(1000, 8) == 31


def test_mixed_regions_keep_input_order():
    specs = make_specs(2, region="VT") + make_specs(2, region="WY")
    specs = [specs[2], specs[0], specs[3], specs[1]]  # interleave regions
    outcomes = run_instances(specs, parallel=True, max_workers=2)
    assert [o.spec.region_code for o in outcomes] == \
        [s.region_code for s in specs]
    assert [o.spec.seed for o in outcomes] == [s.seed for s in specs]


def test_asset_key_groups_by_inputs():
    a, b = make_specs(2)
    assert _asset_key(a) == _asset_key(b)  # same region/scale/asset seed


def test_gather_ensemble():
    outcomes = run_instances(make_specs(3), parallel=False)
    ens = gather_ensemble(outcomes)
    assert ens.shape == (3, 26)
    with pytest.raises(ValueError):
        gather_ensemble([])


def test_max_preload_assets_env_override(monkeypatch):
    from repro.core.parallel import MAX_PRELOAD_ASSETS, max_preload_assets

    monkeypatch.delenv("REPRO_MAX_PRELOAD_ASSETS", raising=False)
    assert max_preload_assets() == MAX_PRELOAD_ASSETS
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "9")
    assert max_preload_assets() == 9
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "0")
    assert max_preload_assets() == 0  # pre-warming disabled
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "  ")
    assert max_preload_assets() == MAX_PRELOAD_ASSETS  # blank = default
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "four")
    with pytest.raises(ValueError, match="must be an integer"):
        max_preload_assets()
    monkeypatch.setenv("REPRO_MAX_PRELOAD_ASSETS", "-1")
    with pytest.raises(ValueError, match=">= 0"):
        max_preload_assets()
