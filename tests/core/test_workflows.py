"""Integration tests: calibration -> prediction handoff, economic workflow.

These run the real workflows at miniature scale (tiny regions, few cells)
to verify the end-to-end plumbing the paper's Figure 1 describes.
"""

import numpy as np
import pytest

from repro.core.calibration_wf import run_calibration_workflow
from repro.core.counterfactual_wf import run_economic_workflow
from repro.core.prediction_wf import (
    run_prediction_workflow,
    what_if_expansion,
)


@pytest.fixture(scope="module")
def calibration():
    return run_calibration_workflow(
        "VT", n_cells=15, n_days=60, scale=1e-3, seed=3,
        mcmc_samples=300, mcmc_burn_in=300)


def test_calibration_outputs(calibration):
    assert calibration.prior_design.shape == (15, 4)
    assert calibration.sim_series.shape == (15, 61)
    assert calibration.observed.shape == (61,)
    assert calibration.posterior.theta_samples.shape[1] == 4


def test_posterior_within_prior_ranges(calibration):
    space = calibration.space
    assert space.contains(calibration.posterior.theta_samples).all()


def test_posterior_configurations_dicts(calibration):
    rng = np.random.default_rng(0)
    configs = calibration.posterior_configurations(5, rng)
    assert len(configs) == 5
    assert set(configs[0]) == {"TAU", "SYMP", "SH_COMPLIANCE",
                               "VHI_COMPLIANCE"}


def test_prediction_workflow(calibration):
    pred = run_prediction_workflow(
        calibration, n_configurations=3, replicates=2, horizon=14, seed=4)
    assert pred.n_members == 6
    total = calibration.observed.shape[0] - 1 + 14 + 1
    assert pred.confirmed_ensemble.shape == (6, total)
    assert pred.confirmed_band.median.shape == (total,)
    assert set(pred.target_bands) >= {"confirmed", "deaths"}
    assert pred.what_if == ("as-is",) * 6


def test_prediction_with_what_if(calibration):
    pred = run_prediction_workflow(
        calibration, n_configurations=1, replicates=1, horizon=7,
        reopen_levels=(0.25, 0.75), tracing_compliances=(0.5,), seed=5)
    assert pred.n_members == 2
    assert "RO=0.25+CT=0.5" in pred.what_if


def test_what_if_expansion_shapes():
    base = {"TAU": 0.2}
    assert what_if_expansion(base) == [("as-is", {"TAU": 0.2})]
    expanded = what_if_expansion(base, reopen_levels=(0.25, 0.5),
                                 tracing_compliances=(0.3, 0.6))
    assert len(expanded) == 4
    labels = [lbl for lbl, _ in expanded]
    assert "RO=0.25+CT=0.3" in labels
    # Base params untouched.
    assert base == {"TAU": 0.2}


def test_economic_workflow_small():
    from repro.core.designs import ExperimentDesign, factorial_cells

    cells = factorial_cells({
        "vhi_compliance": [0.3, 0.9],
        "sh_compliance": [0.3, 0.9],
    })
    design = ExperimentDesign("economic", cells, ("VT",), 2)
    result = run_economic_workflow(
        regions=("VT",), design=design, n_days=70, scale=1e-3, seed=6)
    assert len(result.outcomes) == 4
    for o in result.outcomes:
        assert o.total_cost >= 0
        assert 0.0 <= o.mean_attack_rate <= 1.0
    assert result.cheapest().total_cost <= result.most_expensive().total_cost
    table = result.cost_table()
    assert "vhi_compliance" in table


def test_economic_costs_scale_with_epidemic():
    """Scenarios with bigger outbreaks cost more."""
    from repro.core.designs import ExperimentDesign, factorial_cells

    cells = factorial_cells({"TAU": [0.03, 0.5]})
    design = ExperimentDesign("economic", cells, ("VT",), 3)
    result = run_economic_workflow(
        regions=("VT",), design=design, n_days=80, scale=1e-3, seed=7)
    by_tau = {o.cell.params["TAU"]: o for o in result.outcomes}
    assert by_tau[0.5].mean_attack_rate > by_tau[0.03].mean_attack_rate
    assert by_tau[0.5].total_cost > by_tau[0.03].total_cost
