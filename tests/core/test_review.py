"""Prediction-review (Figure 5 feedback loop) tests."""

import numpy as np
import pytest

from repro.analytics.ensembles import ensemble_band
from repro.core.prediction_wf import PredictionWorkflowResult
from repro.core.review import (
    calibrate_predict_review_loop,
    review_prediction,
)


def make_prediction(history, ensemble):
    ensemble = np.asarray(ensemble, dtype=np.float64)
    return PredictionWorkflowResult(
        region_code="VT",
        horizon=ensemble.shape[1] - history.shape[0],
        confirmed_ensemble=ensemble,
        confirmed_band=ensemble_band(ensemble),
        target_bands={},
        history=np.asarray(history, dtype=np.float64),
        what_if=("as-is",) * ensemble.shape[0],
    )


def smooth_case():
    history = np.linspace(0, 100, 31)
    rng = np.random.default_rng(0)
    members = []
    for _ in range(20):
        future = history[-1] + np.cumsum(rng.uniform(2, 4, 30))
        members.append(np.concatenate([history, future]))
    return make_prediction(history, np.vstack(members))


def test_accepts_consistent_forecast():
    outcome = review_prediction(smooth_case())
    assert outcome.accepted, outcome.report()
    assert not outcome.failures


def test_rejects_discontinuous_forecast():
    history = np.linspace(0, 100, 31)
    members = [np.concatenate([history, np.full(30, 500.0)])
               for _ in range(5)]
    outcome = review_prediction(make_prediction(history, members))
    assert not outcome.accepted
    assert any(f.check == "continuity" for f in outcome.failures)


def test_rejects_trend_explosion():
    history = np.linspace(0, 100, 31)
    rng = np.random.default_rng(1)
    members = []
    for _ in range(10):
        # Join smoothly, then grow 20x faster than history.
        future = history[-1] + np.cumsum(
            rng.uniform(60, 70, 30))
        members.append(np.concatenate([history, future]))
    outcome = review_prediction(make_prediction(history, members))
    assert not outcome.accepted
    assert any(f.check == "trend-consistency" for f in outcome.failures)


def test_rejects_degenerate_ensemble():
    history = np.linspace(0, 100, 31)
    member = np.concatenate([history, history[-1] + np.arange(1, 31) * 3.0])
    members = [member.copy() for _ in range(8)]
    outcome = review_prediction(make_prediction(history, members))
    assert any(f.check == "band-sanity" for f in outcome.failures)


def test_report_renders():
    outcome = review_prediction(smooth_case())
    text = outcome.report()
    assert "ACCEPT" in text
    assert "continuity" in text


def test_full_loop_runs():
    prediction, outcome, iterations = calibrate_predict_review_loop(
        "VT", max_iterations=2, n_cells=10, n_days=50, horizon=21,
        scale=1e-3, seed=7)
    assert prediction is not None
    assert outcome is not None
    assert 1 <= iterations <= 2
    # The loop returns a structurally valid prediction either way.
    assert prediction.confirmed_band.n_days == 50 + 21 + 1
