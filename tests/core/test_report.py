"""Weekly-briefing generation tests."""

import pytest

from repro.core.calibration_wf import run_calibration_workflow
from repro.core.prediction_wf import run_prediction_workflow
from repro.core.report import generate_weekly_report


@pytest.fixture(scope="module")
def pipeline():
    cal = run_calibration_workflow(
        "VT", n_cells=12, n_days=50, scale=1e-2, seed=33,
        mcmc_samples=200, mcmc_burn_in=200)
    pred = run_prediction_workflow(
        cal, n_configurations=4, replicates=2, horizon=28, seed=34)
    return cal, pred


def test_report_structure(pipeline):
    cal, pred = pipeline
    report = generate_weekly_report(cal, pred)
    assert report.region_code == "VT"
    text = report.text
    for section in ("SITUATION", "CALIBRATED PARAMETERS", "FORECAST",
                    "HOSPITAL CAPACITY", "QUALITY REVIEW"):
        assert section in text
    # All four calibrated parameters are reported.
    for name in cal.space.names:
        assert name in text


def test_report_forecast_rows(pipeline):
    cal, pred = pipeline
    report = generate_weekly_report(cal, pred, horizons=(7, 21))
    assert "+ 7d" in report.text
    assert "+21d" in report.text
    assert "+14d" not in report.text


def test_report_embeds_review(pipeline):
    cal, pred = pipeline
    report = generate_weekly_report(cal, pred)
    assert report.review is not None
    if report.approved_for_release:
        assert "APPROVED" in report.text
    else:
        assert "HELD" in report.text
        assert "failed check" in report.text


def test_trend_labels():
    import numpy as np

    from repro.core.report import _trend_label

    assert _trend_label(np.zeros(40)) == "flat"
    accel = np.concatenate([np.linspace(0, 10, 20),
                            10 + np.linspace(0, 60, 20)])
    assert _trend_label(accel) == "accelerating"
    decel = np.concatenate([np.linspace(0, 60, 20),
                            60 + np.linspace(0, 10, 20)])
    assert _trend_label(decel) == "decelerating"
    steady = np.linspace(0, 100, 40)
    assert _trend_label(steady) == "steady"
    assert _trend_label(np.zeros(5)) == "insufficient history"
