"""Replicate-batching policy and its fan-out integration.

Covers the grouping layer (:mod:`repro.core.batching`), the batched route
through :func:`~repro.core.parallel.supervise_instances` (bit-identical to
the solo path, evict-on-fault semantics, per-instance quarantine), the
store integration (per-replicate cache keys), and the supervisor's
continued-attempt plumbing that keeps eviction retries accountable.
"""

import numpy as np
import pytest

from repro.core.batching import (
    MAX_BATCH_LANES,
    batch_groups,
    batching_enabled,
    group_key,
    max_batch_lanes,
)
from repro.core.parallel import (
    InstanceSpec,
    run_instances,
    supervise_instances,
)
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.supervisor import supervise_map
from repro.store.cas import ContentStore
from repro.store.keys import instance_key
from repro.store.memo import run_instances_memoized

pytestmark = pytest.mark.fast

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)


def make_specs(n=4, region="VT", n_days=12, tau=0.3, seed0=100,
               asset_seed=0):
    return [
        InstanceSpec(region_code=region, params={"TAU": tau},
                     n_days=n_days, scale=1e-3, seed=seed0 + 17 * i,
                     label=f"{region}-i{i}", asset_seed=asset_seed)
        for i in range(n)
    ]


# ---- grouping policy -------------------------------------------------------


def test_group_key_ignores_seed_params_label():
    a, b = make_specs(2)
    assert a.seed != b.seed and a.label != b.label
    assert group_key(a) == group_key(b)
    hot = InstanceSpec(region_code="VT", params={"TAU": 0.9, "SYMP": 0.5},
                       n_days=12, scale=1e-3, seed=1, asset_seed=0)
    assert group_key(hot) == group_key(a)


@pytest.mark.parametrize("field,value", [
    ("region_code", "RI"),
    ("scale", 2e-3),
    ("asset_seed", 7),
    ("n_days", 13),
])
def test_group_key_separates_asset_fields(field, value):
    base = make_specs(1)[0]
    other = InstanceSpec(**{**{
        "region_code": base.region_code, "params": base.params,
        "n_days": base.n_days, "scale": base.scale, "seed": base.seed + 1,
        "asset_seed": base.asset_seed}, field: value})
    assert group_key(base) != group_key(other)


def test_batch_groups_order_and_membership():
    vt = make_specs(3, region="VT")
    ri = make_specs(2, region="RI")
    specs = [vt[0], ri[0], vt[1], ri[1], vt[2]]  # interleaved
    groups = batch_groups(specs)
    # First-occurrence key order, input order within a group.
    assert groups == [[0, 2, 4], [1, 3]]
    covered = sorted(i for g in groups for i in g)
    assert covered == list(range(len(specs)))


def test_batch_groups_cap_split():
    specs = make_specs(7)
    groups = batch_groups(specs, max_lanes=3)
    assert groups == [[0, 1, 2], [3, 4, 5], [6]]


def test_batching_env_knobs(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_REPLICATES", raising=False)
    assert batching_enabled()
    for token in ("0", "false", "OFF", " no "):
        monkeypatch.setenv("REPRO_BATCH_REPLICATES", token)
        assert not batching_enabled()
    monkeypatch.setenv("REPRO_BATCH_REPLICATES", "1")
    assert batching_enabled()

    monkeypatch.delenv("REPRO_MAX_BATCH_LANES", raising=False)
    assert max_batch_lanes() == MAX_BATCH_LANES
    monkeypatch.setenv("REPRO_MAX_BATCH_LANES", "8")
    assert max_batch_lanes() == 8
    monkeypatch.setenv("REPRO_MAX_BATCH_LANES", "batchy")
    with pytest.raises(ValueError, match="integer"):
        max_batch_lanes()
    monkeypatch.setenv("REPRO_MAX_BATCH_LANES", "0")
    with pytest.raises(ValueError, match=">= 1"):
        max_batch_lanes()


# ---- batched fan-out: equivalence and telemetry ----------------------------


def test_batched_run_instances_matches_unbatched(monkeypatch):
    """The batched route returns byte-identical outcomes to the solo path."""
    specs = make_specs(5) + make_specs(2, region="RI", seed0=900)
    reg_on = MetricsRegistry()
    batched = run_instances(specs, parallel=False, registry=reg_on)

    monkeypatch.setenv("REPRO_BATCH_REPLICATES", "0")
    reg_off = MetricsRegistry()
    solo = run_instances(specs, parallel=False, registry=reg_off)

    for b, s in zip(batched, solo):
        assert b.spec == s.spec
        np.testing.assert_array_equal(b.confirmed, s.confirmed)
        assert b.attack_rate == s.attack_rate
        assert b.transitions == s.transitions

    on = reg_on.snapshot()
    assert on["batch.groups"] == 2  # VT x5 and RI x2
    assert on["batch.size"] >= 2
    assert on["runner.instances"] == len(specs)
    assert "batch.size" not in reg_off.snapshot()
    assert reg_off.snapshot()["runner.instances"] == len(specs)


def test_batched_pooled_matches_serial():
    specs = make_specs(4)
    serial = run_instances(specs, parallel=False)
    pooled = run_instances(specs, parallel=True, max_workers=2)
    for s, p in zip(serial, pooled):
        np.testing.assert_array_equal(s.confirmed, p.confirmed)
        assert s.attack_rate == p.attack_rate


def test_eviction_quarantines_spec_not_group():
    """A poisoned replicate is evicted from its batch; partners survive."""
    plan = FaultPlan.parse(["worker.exception:match=i1"], seed=0)  # always
    reg = MetricsRegistry()
    specs = make_specs(3)
    res = supervise_instances(specs, parallel=False, retry=FAST_RETRY,
                              faults=plan, registry=reg)

    assert not res.ok
    assert [r is None for r in res.results] == [False, True, False]
    (q,) = res.quarantined
    # Attempt accounting matches the unbatched path exactly: the batch
    # eviction is attempt 1, the solo retry attempt 2.
    assert q.key == "VT-i1" and q.kind == "transient" and q.attempts == 2
    snap = reg.snapshot()
    assert snap["faults.worker.exception"] == 2
    assert snap["retry.retries"] == 1
    assert snap["batch.groups"] == 1

    # Surviving lanes are bit-identical to a clean run.
    clean = run_instances(specs, parallel=False)
    for i in (0, 2):
        np.testing.assert_array_equal(res.results[i].confirmed,
                                      clean[i].confirmed)


def test_evicted_transient_recovers_bit_identical():
    """A fail-once spec is evicted, retried solo, and fully recovers."""
    plan = FaultPlan.parse(["worker.exception:match=i2,times=1"], seed=0)
    reg = MetricsRegistry()
    specs = make_specs(4)
    res = supervise_instances(specs, parallel=False, retry=FAST_RETRY,
                              faults=plan, registry=reg)

    assert res.ok and not res.quarantined
    assert res.retries >= 1
    clean = run_instances(specs, parallel=False)
    for got, want in zip(res.results, clean):
        np.testing.assert_array_equal(got.confirmed, want.confirmed)


def test_memoized_batches_land_under_individual_keys(tmp_path):
    """One batched execution, K cache entries — then K pure hits."""
    specs = make_specs(4)
    keys = {instance_key(s) for s in specs}
    assert len(keys) == len(specs)  # per-replicate keys stay distinct

    store = ContentStore(tmp_path / "store")
    reg_cold = MetricsRegistry()
    cold = run_instances_memoized(specs, store=store, parallel=False,
                                  registry=reg_cold)
    snap_cold = reg_cold.snapshot()
    assert snap_cold["memo.misses"] == 4 and snap_cold["memo.hits"] == 0
    assert snap_cold["batch.groups"] == 1

    reg_warm = MetricsRegistry()
    warm = run_instances_memoized(specs, store=store, parallel=False,
                                  registry=reg_warm)
    snap_warm = reg_warm.snapshot()
    assert snap_warm["memo.hits"] == 4 and snap_warm["memo.misses"] == 0
    for c, w in zip(cold, warm):
        np.testing.assert_array_equal(c.confirmed, w.confirmed)
        assert c.attack_rate == w.attack_rate


def test_batching_disabled_env_skips_grouping(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_REPLICATES", "off")
    reg = MetricsRegistry()
    res = supervise_instances(make_specs(3), parallel=False, registry=reg)
    assert res.ok
    snap = reg.snapshot()
    assert "batch.groups" not in snap and "batch.size" not in snap


# ---- supervisor plumbing the eviction retries ride on ----------------------


def test_supervise_map_start_attempts_and_prior_failures():
    """Continued items start at the given attempt with failures charged."""
    seen: list[int] = []

    def fn(item, attempt, _faults):
        seen.append(attempt)
        if item == "flaky" and attempt < 2:
            raise TimeoutError("transient")
        return item

    policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
    res = supervise_map(fn, ["flaky"], keys=["flaky"], retry=policy,
                        start_attempts=[1], prior_failures=[1],
                        registry=MetricsRegistry())
    assert res.ok and res.results == ["flaky"]
    assert seen == [1, 2]  # resumed mid-sequence, not from attempt 0

    # With the budget already spent, the continued item quarantines at
    # its recorded cumulative attempt count.
    seen.clear()
    res = supervise_map(fn, ["flaky"], keys=["flaky"],
                        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                                          jitter=0.0),
                        start_attempts=[1], prior_failures=[1],
                        registry=MetricsRegistry())
    assert not res.ok
    (q,) = res.quarantined
    assert q.attempts == 2 and seen == [1]
