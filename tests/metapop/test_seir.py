"""Metapopulation SEIR tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metapop.scenarios import ALL_SCENARIOS, WORST_CASE
from repro.metapop.seir import (
    MetapopModel,
    SEIRParams,
    gravity_coupling,
)


@pytest.fixture(scope="module")
def model():
    return MetapopModel.for_region("VA")


def test_params_validation():
    with pytest.raises(ValueError):
        SEIRParams(beta=-0.1)
    with pytest.raises(ValueError):
        SEIRParams(beta=0.3, infectious_days=0)
    assert SEIRParams(beta=0.5, infectious_days=5).r0 == pytest.approx(2.5)


def test_gravity_coupling_row_stochastic():
    pops = np.array([1000.0, 5000.0, 200.0])
    c = gravity_coupling(pops, mixing=0.1)
    np.testing.assert_allclose(c.sum(axis=1), 1.0)
    np.testing.assert_allclose(np.diag(c), 0.9)
    # Off-diagonal mass goes preferentially to the big county.
    assert c[0, 1] > c[0, 2]


def test_gravity_single_county():
    c = gravity_coupling(np.array([100.0]))
    np.testing.assert_allclose(c, [[1.0]])


def test_deterministic_conservation(model):
    res = model.run(SEIRParams(beta=0.4), 150)
    assert res.conservation_error() < 1e-6


@settings(max_examples=15, deadline=None)
@given(beta=st.floats(0.05, 0.9), seed=st.integers(0, 2**31))
def test_property_stochastic_conservation(beta, seed):
    model = MetapopModel(np.array([5000.0, 2000.0, 800.0]))
    res = model.run(SEIRParams(beta=beta), 100, stochastic=True,
                    rng=np.random.default_rng(seed),
                    initial_infected=20.0)
    assert res.conservation_error() < 1e-6
    assert (res.s >= 0).all() and (res.i >= 0).all()


def test_s_monotone_decreasing(model):
    res = model.run(SEIRParams(beta=0.4), 100)
    assert (np.diff(res.s.sum(axis=1)) <= 1e-9).all()


def test_r0_controls_final_size(model):
    small = model.run(SEIRParams(beta=0.1), 300)
    large = model.run(SEIRParams(beta=0.5), 300)
    assert (large.r[-1].sum() > small.r[-1].sum())


def test_subcritical_dies_out(model):
    res = model.run(SEIRParams(beta=0.05, infectious_days=5.0), 400)
    attack = res.r[-1].sum() / model.county_pop.sum()
    assert attack < 0.05


def test_confirmed_lags_infections(model):
    params = SEIRParams(beta=0.6, report_delay=7)
    res = model.run(params, 300)  # long enough for the peak to pass
    inf_peak = res.new_infections.sum(axis=1).argmax()
    conf_peak = res.confirmed.sum(axis=1).argmax()
    assert inf_peak < 290  # the peak is inside the window
    assert conf_peak >= inf_peak + 5


def test_ascertainment_scales_confirmed(model):
    res = model.run(SEIRParams(beta=0.4, ascertainment=0.25,
                               report_delay=0), 100)
    np.testing.assert_allclose(
        res.confirmed.sum(), res.new_infections.sum() * 0.25)


def test_stochastic_requires_rng(model):
    with pytest.raises(ValueError, match="rng"):
        model.run(SEIRParams(beta=0.3), 10, stochastic=True)


def test_initial_infected_vector(model):
    i0 = np.zeros(model.n_counties)
    i0[0] = 50.0
    res = model.run(SEIRParams(beta=0.3), 10, initial_infected=i0)
    assert res.i[0, 0] == 50.0
    assert res.i[0, 1:].sum() == 0.0


def test_mixing_spreads_to_other_counties(model):
    i0 = np.zeros(model.n_counties)
    i0[0] = 100.0
    res = model.run(SEIRParams(beta=0.5), 60, initial_infected=i0)
    assert (res.i[-1, 1:] > 0).any()


def test_scenarios_ordering(model):
    """Stronger/longer distancing -> smaller outbreak (Case study 2)."""
    params = SEIRParams(beta=0.42)
    finals = {}
    for sc in ALL_SCENARIOS:
        res = model.run(params, 210, beta_modifier=sc.beta_modifier())
        finals[sc.name] = res.state_confirmed_cumulative()[-1]
    assert finals["worst-case"] == max(finals.values())
    assert (finals["distancing-to-Jun10-50pct"]
            < finals["distancing-to-Apr30-50pct"])
    assert (finals["distancing-to-Apr30-50pct"]
            < finals["distancing-to-Apr30-25pct"])


def test_beta_modifier_values():
    mod = ALL_SCENARIOS[1].beta_modifier()  # Apr30, 25%
    assert mod(10) == 1.0
    assert mod(60) == 0.75
    assert mod(150) == 1.0
    assert WORST_CASE.beta_modifier()(60) == 1.0
