"""Plane-attached runs are bit-identical to private-copy runs.

The acceptance matrix: every transmission backend (dense / frontier /
auto), solo and batched widths K ∈ {1, 16}, plus checkpointed crash →
resume — all byte-identical between a run whose assets came from the
shared plane's read-only views and a run on privately built copies.
"""

import pytest

from repro.checkpoint import CheckpointPlan
from repro.core.parallel import InstanceSpec, run_instances, supervise_instances
from repro.core.runner import load_region_assets
from repro.obs import MetricsRegistry
from repro.plane import plane_stats
from repro.resilience import FaultPlan, RetryPolicy
from tests.checkpoint.test_equivalence import assert_payload_bytes_identical

DAYS = 8
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


def specs(backend, k):
    return [
        InstanceSpec(
            region_code="VT",
            params={"TAU": 0.3, "SYMP": 0.65, "SH_COMPLIANCE": 0.6,
                    "backend": backend},
            n_days=DAYS, scale=1e-3, seed=100 + 13 * i,
            label=f"plane-eq-{backend}-k{k}-i{i}", asset_seed=0)
        for i in range(k)
    ]


def _copy_run(monkeypatch, backend, k):
    monkeypatch.delenv("REPRO_PLANE", raising=False)
    load_region_assets.cache_clear()
    return run_instances(specs(backend, k), parallel=False,
                         registry=MetricsRegistry())


@pytest.mark.parametrize("backend", ["dense", "frontier", "auto"])
@pytest.mark.parametrize("k", [1, 16])
def test_plane_run_bit_identical(plane_root, monkeypatch, backend, k):
    clean = _copy_run(monkeypatch, backend, k)

    monkeypatch.setenv("REPRO_PLANE", "1")
    load_region_assets.cache_clear()
    reg = MetricsRegistry()
    planed = run_instances(specs(backend, k), parallel=False, registry=reg)

    assert reg.value("plane.built") == 1  # the plane actually served
    assert reg.value("plane.fallbacks") == 0
    assert len(planed) == len(clean) == k
    for c, p in zip(clean, planed):
        assert_payload_bytes_identical(c, p)


def test_checkpoint_crash_resume_on_plane(plane_root, monkeypatch,
                                          tmp_path):
    """Mid-run crash + checkpoint resume, with the assets on the plane:
    still byte-identical to a clean private-copy run."""
    clean = _copy_run(monkeypatch, "auto", 4)

    monkeypatch.setenv("REPRO_PLANE", "1")
    load_region_assets.cache_clear()
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=3)
    faults = FaultPlan.parse(["worker.crash_mid_run:tick=4,times=1"],
                             seed=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs("auto", 4), parallel=False,
                              retry=FAST_RETRY, faults=faults,
                              registry=reg, checkpoint=plan)
    assert res.ok and res.retries == 1
    # Attempt 0 built the plane and then crashed — and the supervisor
    # discards failed-attempt telemetry by design, so the build counter
    # died with that attempt.  The evidence lives in the plane itself:
    # the segment is up with our live ref, and the resumed attempt
    # re-served the same read-only views straight from the process
    # cache (one hit, zero misses — the bundle never left the plane).
    assert reg.value("assets.cache.hits") == 1
    assert reg.value("assets.cache.misses") == 0
    stats = plane_stats(plane_root)
    assert len(stats["segments"]) == 1
    assert stats["segments"][0]["live_refs"] >= 1
    for c, p in zip(clean, res.results):
        assert_payload_bytes_identical(c, p)
