"""Plane test fixtures: isolated roots and a tiny real bundle.

Every test gets a private plane root under ``tmp_path`` (via the
``REPRO_PLANE_DIR`` env the whole stack honours) and a teardown that
shuts down any runtime rooted there and sweeps ``/dev/shm`` — a leaked
segment in one test must never leak into the next.
"""

import pytest


@pytest.fixture
def plane_root(tmp_path, monkeypatch):
    root = tmp_path / "plane"
    monkeypatch.setenv("REPRO_PLANE", "1")
    monkeypatch.setenv("REPRO_PLANE_DIR", str(root))
    from repro.core.runner import load_region_assets

    load_region_assets.cache_clear()
    yield root
    from repro.plane import plane_gc
    from repro.plane.lifecycle import _RUNTIMES

    rt = _RUNTIMES.pop(root, None)
    if rt is not None:
        rt.shutdown()
    plane_gc(root)
    load_region_assets.cache_clear()


@pytest.fixture(scope="session")
def vt_bundle(vt_assets):
    """A small real RegionAssets to publish on test planes."""
    from repro.core.runner import RegionAssets
    from repro.surveillance import generate_region_truth

    pop, net = vt_assets
    truth = generate_region_truth("VT", n_days=40, seed=424242)
    return RegionAssets(pop=pop, net=net, truth=truth, scale=1e-3)
