"""AssetKey canonicalization and the versioned manifest registry."""

import time

import pytest

from repro.core.batching import group_key
from repro.core.parallel import InstanceSpec, _asset_key
from repro.plane.manifest import (
    PLANE_FORMAT,
    AssetKey,
    Manifest,
    PlaneError,
    list_manifests,
    manifest_path,
    read_manifest,
    write_manifest,
)


def _spec(**kw):
    base = dict(region_code="VT", params={"TAU": 0.2}, n_days=10,
                scale=1e-3, seed=5, label="x", asset_seed=7)
    base.update(kw)
    return InstanceSpec(**base)


class TestAssetKey:
    def test_numeric_normalization(self):
        # int-typed scale / numpy-ish seed must not mint a second key.
        assert AssetKey("VT", 1, 0) == AssetKey("VT", 1.0, 0)
        assert AssetKey("VT", 1e-3, 7).token() == AssetKey(
            "VT", 0.001, 7).token()

    def test_truth_days_participates(self):
        """Regression: the historical warm-preload key dropped
        ``truth_days``, so bundles with a non-default horizon aliased."""
        a = AssetKey("VT", 1e-3, 7, truth_days=210)
        b = AssetKey("VT", 1e-3, 7, truth_days=150)
        assert a != b
        assert a.token() != b.token()
        assert a.digest("s") != b.digest("s")

    def test_one_canonical_key_everywhere(self):
        """Warm preload, batch grouping and the plane agree on the key."""
        spec = _spec()
        k = AssetKey.of_spec(spec)
        assert _asset_key(spec) == k
        assert group_key(spec)[0] == k
        assert k == AssetKey("VT", 1e-3, 7)  # asset_seed, not run seed

    def test_digest_salted(self):
        k = AssetKey("VT", 1e-3, 7)
        assert k.digest("salt-a") != k.digest("salt-b")
        assert len(k.digest("s")) == 64

    def test_ordering_and_hashing(self):
        keys = {AssetKey("VT"), AssetKey("VA"), AssetKey("VT")}
        assert len(keys) == 2
        assert sorted(keys)[0].region_code == "VA"


def _manifest(key="a" * 64, fmt=PLANE_FORMAT):
    return Manifest(
        key=key, asset=AssetKey("VT", 1e-3, 7), salt="s",
        segment="repro-plane-test", nbytes=128,
        arrays=[{"name": "pop.pid", "dtype": "<i8", "shape": [4],
                 "offset": 0, "nbytes": 32}],
        meta={"region_code": "VT", "n_nodes": 4, "scale": 1e-3},
        owner_pid=1234, owner="pid:1234", created_ts=time.time(),
        format=fmt)


class TestManifestRegistry:
    def test_roundtrip(self, tmp_path):
        m = _manifest()
        write_manifest(tmp_path, m)
        got = read_manifest(tmp_path, m.key)
        assert got == m
        assert list_manifests(tmp_path) == [m]

    def test_missing_and_torn_read_as_none(self, tmp_path):
        assert read_manifest(tmp_path, "b" * 64) is None
        m = _manifest()
        write_manifest(tmp_path, m)
        manifest_path(tmp_path, m.key).write_text('{"torn', encoding="utf-8")
        assert read_manifest(tmp_path, m.key) is None

    def test_future_format_rejected(self, tmp_path):
        future = _manifest(fmt=PLANE_FORMAT + 1)
        with pytest.raises(PlaneError):
            Manifest.from_json(future.to_json())
        write_manifest(tmp_path, future)
        # An attacher must behave as if the bundle were never built.
        assert read_manifest(tmp_path, future.key) is None

    def test_write_is_atomic_replace(self, tmp_path):
        m = _manifest()
        write_manifest(tmp_path, m)
        updated = _manifest()
        write_manifest(tmp_path, updated)
        assert len(list_manifests(tmp_path)) == 1
        # No temp droppings next to the manifest.
        leftovers = [p for p in manifest_path(tmp_path, m.key).parent.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []
