"""Graceful degradation: no /dev/shm, ENOSPC, plane off."""

import errno

import pytest

from repro.obs import MetricsRegistry
from repro.plane.lifecycle import PlaneRuntime
from repro.plane.manifest import AssetKey

KEY = AssetKey("VT", 1e-3, 424242, 40)


def test_probe_failure_disables_and_falls_back(plane_root, vt_bundle,
                                               monkeypatch):
    """No usable shared memory: every ensure() is a silent fallback."""
    def broken_probe(name):
        raise OSError(errno.ENOENT, "/dev/shm is not mounted")

    monkeypatch.setattr("repro.plane.segment.probe", broken_probe)
    rt = PlaneRuntime(root=plane_root)
    reg = MetricsRegistry()
    assert rt.ensure(KEY, lambda: vt_bundle, metrics=reg) is None
    assert reg.value("plane.fallbacks") == 1
    assert not rt.available()
    assert "not mounted" in rt.disabled_reason()
    # The probe result is cached: a second call costs nothing and still
    # declines.
    assert rt.ensure(KEY, lambda: vt_bundle, metrics=reg) is None
    assert reg.value("plane.fallbacks") == 2


def test_enospc_during_build_falls_back_without_disabling(
        plane_root, vt_bundle, monkeypatch):
    """A bundle too large for /dev/shm falls back for *this* key but
    leaves the plane usable for smaller ones."""
    def no_space(name, size):
        raise OSError(errno.ENOSPC, "no space on /dev/shm")

    monkeypatch.setattr("repro.plane.segment.create_segment", no_space)
    rt = PlaneRuntime(root=plane_root)
    reg = MetricsRegistry()
    assert rt.ensure(KEY, lambda: vt_bundle, metrics=reg) is None
    assert reg.value("plane.fallbacks") == 1
    assert rt.available()  # ENOSPC is per-bundle, not fatal


def test_load_assets_returns_private_build_on_fallback(
        plane_root, monkeypatch):
    """The runner path never fails because the plane cannot serve."""
    def broken_probe(name):
        raise OSError(errno.ENOENT, "no shm")

    monkeypatch.setattr("repro.plane.segment.probe", broken_probe)
    from repro.core.runner import load_region_assets

    reg = MetricsRegistry()
    assets = load_region_assets("VT", 1e-3, 424242, 40, metrics=reg)
    assert assets.pop.size > 0
    assert reg.value("plane.fallbacks") == 1
    assert reg.value("plane.built") == 0
    # Private fallbacks are writable — nothing shared to corrupt.
    assets.pop.age[0] = assets.pop.age[0]


def test_plane_off_touches_nothing(tmp_path, monkeypatch):
    """Without the opt-in, the plane dir is never even created."""
    monkeypatch.delenv("REPRO_PLANE", raising=False)
    monkeypatch.setenv("REPRO_PLANE_DIR", str(tmp_path / "plane"))
    from repro.core.runner import load_region_assets

    load_region_assets.cache_clear()
    assets = load_region_assets("VT", 1e-3, 424242, 40)
    assert assets.pop.size > 0
    assert not (tmp_path / "plane").exists()
    load_region_assets.cache_clear()
