"""Plane lifecycle: build-once arbitration, refcounts, reclamation.

The cross-process tests use real spawn children racing through
``load_region_assets`` with the plane enabled — the same entry point the
warm pool and service shards use — so the arbitration they exercise is
the production path, not a harness.
"""

import glob
import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.plane import plane_gc, plane_stats
from repro.plane.lifecycle import PlaneRuntime, _segment_name, _plane_salt
from repro.plane.manifest import (
    AssetKey,
    Manifest,
    manifest_path,
    read_manifest,
    refs_dir,
    write_manifest,
)

KEY = AssetKey("VT", 1e-3, 424242, 40)


def _shm_segments():
    return glob.glob("/dev/shm/repro-plane-*")


def test_build_then_attach_then_hit(plane_root, vt_bundle):
    a = PlaneRuntime(root=plane_root)
    reg = MetricsRegistry()
    built = a.ensure(KEY, lambda: vt_bundle, metrics=reg)
    assert built is not None
    assert reg.value("plane.built") == 1
    assert reg.value("plane.attached") == 1
    assert reg.value("plane.bytes") > 0
    # Even the builder runs off the shared read-only pages.
    with pytest.raises(ValueError):
        built.pop.age[0] = 1
    assert np.array_equal(built.pop.pid, vt_bundle.pop.pid)
    assert np.array_equal(built.net.weight, vt_bundle.net.weight)
    assert np.array_equal(built.truth.daily, vt_bundle.truth.daily)

    # A second runtime (fresh process-cache) attaches without building:
    # the builder is a tripwire that must never run.
    b = PlaneRuntime(root=plane_root)
    reg2 = MetricsRegistry()
    attached = b.ensure(KEY, lambda: 1 / 0, metrics=reg2)
    assert attached is not None
    assert reg2.value("plane.built") == 0
    assert reg2.value("plane.attached") == 1
    assert np.array_equal(attached.pop.pid, vt_bundle.pop.pid)

    # Same runtime again: process-cache hit, no filesystem traffic.
    again = b.ensure(KEY, lambda: 1 / 0, metrics=reg2)
    assert again is attached
    assert reg2.value("plane.hits") == 1

    b.shutdown()
    a.shutdown()
    assert _shm_segments() == []


def test_reap_respects_live_refs(plane_root, vt_bundle):
    a = PlaneRuntime(root=plane_root)
    reg = MetricsRegistry()
    assert a.ensure(KEY, lambda: vt_bundle, metrics=reg) is not None
    digest = KEY.digest(_plane_salt())

    # Our own (live) ref holds the segment down.
    assert PlaneRuntime(root=plane_root).reap(digest, metrics=reg) == 0
    assert read_manifest(plane_root, digest) is not None
    assert reg.value("plane.reclaimed") == 0

    # Last man out unlinks: stats before, nothing after.
    stats = plane_stats(plane_root)
    assert len(stats["segments"]) == 1
    assert stats["segments"][0]["live_refs"] == 1
    assert stats["segments"][0]["owner_alive"] is True
    a.shutdown()
    assert read_manifest(plane_root, digest) is None
    assert _shm_segments() == []


def test_stale_manifest_torn_down_and_rebuilt(plane_root, vt_bundle):
    """A manifest whose segment vanished (e.g. a reboot cleared /dev/shm)
    must be discarded and the bundle rebuilt, not fatal."""
    digest = KEY.digest(_plane_salt())
    write_manifest(plane_root, Manifest(
        key=digest, asset=KEY, salt=_plane_salt(),
        segment=_segment_name(digest), nbytes=64, arrays=[],
        meta={"region_code": "VT", "n_nodes": 0, "scale": 1e-3},
        owner_pid=2 ** 22 + 1, owner="pid:dead", created_ts=0.0))
    rt = PlaneRuntime(root=plane_root)
    reg = MetricsRegistry()
    got = rt.ensure(KEY, lambda: vt_bundle, metrics=reg)
    assert got is not None
    assert reg.value("plane.stale") == 1
    assert reg.value("plane.built") == 1
    rt.shutdown()


def _race_child(root, q, gate):
    os.environ["REPRO_PLANE"] = "1"
    os.environ["REPRO_PLANE_DIR"] = root
    from repro.core.runner import load_region_assets
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    assets = load_region_assets("VT", 1e-3, 424242, 40, metrics=reg)
    # Hold the attachment until every sibling has loaded: without the
    # barrier an early finisher exits, its last-man-out reap tears the
    # segment down, and a late starter legitimately rebuilds — which
    # would test the reclaim path, not the arbitration.
    gate.wait(timeout=120)
    q.put({
        "built": int(reg.value("plane.built")),
        "attached": int(reg.value("plane.attached")),
        "fallbacks": int(reg.value("plane.fallbacks")),
        "persons": int(assets.pop.size),
        "checksum": int(np.asarray(assets.net.source,
                                   dtype=np.int64).sum()),
    })


def test_concurrent_builders_build_exactly_once(plane_root):
    """Four processes race the same key: one builds, three attach."""
    ctx = mp.get_context("spawn")
    q = ctx.Queue()
    gate = ctx.Barrier(4)
    procs = [ctx.Process(target=_race_child, args=(str(plane_root), q, gate))
             for _ in range(4)]
    for p in procs:
        p.start()
    rows = [q.get(timeout=180) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0
    assert sum(r["built"] for r in rows) == 1
    assert sum(r["attached"] for r in rows) == 4
    assert sum(r["fallbacks"] for r in rows) == 0
    assert len({r["persons"] for r in rows}) == 1
    assert len({r["checksum"] for r in rows}) == 1
    # Every child exited; the last one out reaped the segment.
    assert _shm_segments() == []


def _crash_child(root):
    os.environ["REPRO_PLANE"] = "1"
    os.environ["REPRO_PLANE_DIR"] = root
    from repro.core.runner import load_region_assets

    load_region_assets("VT", 1e-3, 424242, 40)
    os._exit(17)  # skip atexit: leave the segment, manifest and ref behind


def test_crashed_owner_segment_reclaimed_by_gc(plane_root):
    ctx = mp.get_context("spawn")
    p = ctx.Process(target=_crash_child, args=(str(plane_root),))
    p.start()
    p.join(timeout=180)
    assert p.exitcode == 17
    # The crash left a published segment with a dead owner and a dead ref.
    stats = plane_stats(plane_root)
    assert len(stats["segments"]) == 1
    assert stats["segments"][0]["owner_alive"] is False
    assert len(_shm_segments()) == 1

    reg = MetricsRegistry()
    out = plane_gc(plane_root, metrics=reg)
    assert out["reclaimed"] == 1
    assert reg.value("plane.reclaimed") == 1
    assert reg.value("plane.reclaimed_bytes") > 0
    assert _shm_segments() == []
    assert plane_stats(plane_root)["segments"] == []


def test_gc_sweeps_dead_refs_and_orphan_segments(plane_root, vt_bundle):
    from repro.plane import segment as seg

    rt = PlaneRuntime(root=plane_root)
    assert rt.ensure(KEY, lambda: vt_bundle,
                     metrics=MetricsRegistry()) is not None
    digest = KEY.digest(_plane_salt())
    # A ref from a long-dead pid must not pin the segment...
    (refs_dir(plane_root, digest) / "4194299.ref").write_text(
        "{}", encoding="utf-8")
    # ...and a manifest-less segment (publisher crashed pre-manifest,
    # lease long expired) is an orphan the sweeper removes.
    orphan = seg.create_segment(f"{seg.SEGMENT_PREFIX}orphan-{os.getpid()}",
                                128)
    orphan.close()

    out = plane_gc(plane_root)
    assert out["kept"] == 1       # ours is live via our own ref
    assert out["orphans"] == 1
    assert len(_shm_segments()) == 1  # only the live segment remains

    rt.shutdown()
    assert _shm_segments() == []


def test_ensure_skips_plane_after_disable(plane_root, vt_bundle,
                                          monkeypatch):
    rt = PlaneRuntime(root=plane_root)
    rt._disabled = "test: forced off"
    reg = MetricsRegistry()
    assert rt.ensure(KEY, lambda: vt_bundle, metrics=reg) is None
    assert reg.value("plane.fallbacks") == 1
    assert not rt.available()
    assert rt.disabled_reason() == "test: forced off"
