"""Segment codec: layout, pack/attach round-trips, read-only views."""

import os

import numpy as np
import pytest

from repro.plane import segment as seg


def _arrays():
    rng = np.random.default_rng(7)
    return {
        "a.i64": np.arange(17, dtype=np.int64),
        "b.f32": rng.random(33).astype(np.float32),
        "c.bool": rng.random(9) < 0.5,
        "d.i8": np.arange(-5, 6, dtype=np.int8),
        "e.2d": rng.integers(0, 99, (4, 3)).astype(np.int32),
        "f.empty": np.empty(0, dtype=np.float64),
    }


def _name(tag):
    return f"{seg.SEGMENT_PREFIX}test-{tag}-{os.getpid()}"


def test_layout_alignment_and_order():
    arrays = _arrays()
    entries, total = seg.layout(arrays)
    assert [e["name"] for e in entries] == list(arrays)
    for e in entries:
        assert e["offset"] % seg.ALIGN == 0
        assert e["nbytes"] == arrays[e["name"]].nbytes
    assert total >= max(e["offset"] + e["nbytes"] for e in entries)


def test_layout_empty_is_one_byte():
    entries, total = seg.layout({})
    assert entries == [] and total == 1


def test_pack_views_roundtrip():
    arrays = _arrays()
    entries, total = seg.layout(arrays)
    shm = seg.create_segment(_name("roundtrip"), total)
    try:
        seg.pack(shm, entries, arrays)
        views = seg.views(shm, entries)
        assert set(views) == set(arrays)
        for name, arr in arrays.items():
            got = views[name]
            assert got.dtype == arr.dtype and got.shape == arr.shape
            assert np.array_equal(got, arr)
            assert not got.flags.writeable
    finally:
        seg.destroy(shm)


def test_views_are_zero_copy_and_write_protected():
    arrays = {"x": np.arange(8, dtype=np.int64)}
    entries, total = seg.layout(arrays)
    shm = seg.create_segment(_name("ro"), total)
    try:
        seg.pack(shm, entries, arrays)
        view = seg.views(shm, entries)["x"]
        with pytest.raises(ValueError):
            view[0] = 99
        # Zero-copy: a second mapping of the same segment sees writes
        # made through the buffer directly.
        np.ndarray(8, dtype=np.int64, buffer=shm.buf)[3] = 42
        assert view[3] == 42
    finally:
        seg.destroy(shm)


def test_open_and_unlink_by_name():
    arrays = {"x": np.arange(4, dtype=np.int32)}
    entries, total = seg.layout(arrays)
    name = _name("byname")
    shm = seg.create_segment(name, total)
    seg.pack(shm, entries, arrays)
    other = seg.open_segment(name)
    try:
        assert np.array_equal(seg.views(other, entries)["x"], arrays["x"])
    finally:
        other.close()
        shm.close()
    assert seg.unlink_segment(name) is True
    assert seg.unlink_segment(name) is False  # already gone
    with pytest.raises(FileNotFoundError):
        seg.open_segment(name)


def test_create_refuses_duplicate_names():
    name = _name("dup")
    shm = seg.create_segment(name, 64)
    try:
        with pytest.raises(FileExistsError):
            seg.create_segment(name, 64)
    finally:
        seg.destroy(shm)


def test_probe_leaves_nothing_behind():
    name = _name("probe")
    seg.probe(name)
    with pytest.raises(FileNotFoundError):
        seg.open_segment(name)
