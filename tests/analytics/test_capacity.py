"""Hospital-capacity / resource-depletion tests."""

import numpy as np
import pytest

from repro.analytics.capacity import (
    BEDS_PER_1000,
    OverflowReport,
    assess_overflow,
    capacity_report,
    region_capacity,
)
from repro.synthpop.regions import get_region


def test_region_capacity_rates():
    cap = region_capacity("VA")
    va = get_region("VA")
    assert cap.beds == round(va.population / 1000 * BEDS_PER_1000)
    assert cap.icu_beds < cap.beds
    assert cap.ventilators < cap.icu_beds
    assert 0 < cap.surge_beds < cap.beds


def test_region_capacity_scales():
    full = region_capacity("VA")
    scaled = region_capacity("VA", scale=1e-3)
    assert scaled.beds == pytest.approx(full.beds * 1e-3, abs=2)


def test_assess_no_overflow():
    census = np.array([0, 5, 10, 8, 2])
    rep = assess_overflow(census, 20, resource="beds")
    assert not rep.overflows
    assert rep.first_overflow_day == -1
    assert rep.peak_demand == 10
    assert rep.peak_day == 2
    assert rep.excess_patient_days == 0
    assert rep.peak_utilization == pytest.approx(0.5)


def test_assess_overflow():
    census = np.array([0, 15, 30, 25, 5])
    rep = assess_overflow(census, 20, resource="beds")
    assert rep.overflows
    assert rep.first_overflow_day == 2
    assert rep.overflow_days == 2
    assert rep.excess_patient_days == (30 - 20) + (25 - 20)
    assert rep.peak_utilization == pytest.approx(1.5)


def test_capacity_report_from_simulation(va_run, covid_model):
    from repro.analytics.aggregate import summarize
    from repro.analytics.targets import (
        HOSPITAL_CENSUS,
        VENTILATOR_CENSUS,
        target_series,
    )

    pop, _net, result = va_run
    summary = summarize(result, covid_model)
    hosp = target_series(summary, covid_model, HOSPITAL_CENSUS)
    vent = target_series(summary, covid_model, VENTILATOR_CENSUS)
    report = capacity_report(hosp, vent, "VA", scale=1e-3)
    assert set(report) == {"beds", "ventilators"}
    for rep in report.values():
        assert isinstance(rep, OverflowReport)
        assert rep.capacity > 0
        assert rep.peak_demand >= 0
    # Ventilator demand never exceeds bed demand.
    assert (report["ventilators"].peak_demand
            <= report["beds"].peak_demand)


def test_worse_epidemic_more_overflow():
    mild = np.full(50, 5)
    severe = np.full(50, 50)
    cap = 10
    assert not assess_overflow(mild, cap, resource="x").overflows
    bad = assess_overflow(severe, cap, resource="x")
    assert bad.overflow_days == 50
    assert bad.excess_patient_days == 40 * 50
