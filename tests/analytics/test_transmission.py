"""Transmission-tree analytics tests."""

import numpy as np
import pytest

from repro.analytics.transmission import (
    effective_r_series,
    generation_intervals,
    offspring_counts,
    transmission_stats,
)
from repro.epihiper.output import TransitionRecorder

EXPOSED = 1


def build_log(rows):
    """rows: (tick, pid, state, infector)."""
    rec = TransitionRecorder()
    for tick, pid, state, infector in rows:
        rec.record(tick, np.array([pid]), np.array([state], np.int8),
                   np.array([infector]))
    return rec.finalize()


@pytest.fixture()
def chain_log():
    # Seed 1 at t=0; infects 2 at t=4 and 3 at t=6; 2 infects 4 at t=9.
    return build_log([
        (0, 1, EXPOSED, -1),
        (4, 2, EXPOSED, 1),
        (6, 3, EXPOSED, 1),
        (9, 4, EXPOSED, 2),
    ])


def test_generation_intervals(chain_log):
    gi = generation_intervals(chain_log, EXPOSED)
    assert sorted(gi.tolist()) == [4, 5, 6]  # 4-0, 6-0, 9-4


def test_offspring_counts(chain_log):
    off = offspring_counts(chain_log, EXPOSED)
    # Person 1 caused 2; person 2 caused 1; persons 3 and 4 caused 0.
    assert off.tolist() == [2, 1, 0, 0]


def test_transmission_stats(chain_log):
    stats = transmission_stats(chain_log, EXPOSED)
    assert stats.n_transmissions == 3
    assert stats.mean_generation_interval == pytest.approx(5.0)
    assert stats.offspring_mean == pytest.approx(0.75)


def test_effective_r_series(chain_log):
    r = effective_r_series(chain_log, EXPOSED, n_days=10, window=1)
    assert r[0] == pytest.approx(2.0)  # day-0 cohort is person 1
    assert r[4] == pytest.approx(1.0)  # day-4 cohort is person 2
    assert r[6] == pytest.approx(0.0)
    assert np.isnan(r[1])  # empty cohort


def test_effective_r_window_smoothing(chain_log):
    r = effective_r_series(chain_log, EXPOSED, n_days=10, window=7)
    # Window [0..6] covers persons 1, 2, 3: (2 + 1 + 0) / 3 = 1.
    assert r[6] == pytest.approx(1.0)


def test_empty_log():
    log = TransitionRecorder().finalize()
    stats = transmission_stats(log, EXPOSED)
    assert stats.n_transmissions == 0
    assert stats.offspring_mean == 0.0
    assert generation_intervals(log, EXPOSED).size == 0


def test_real_run_statistics(va_run, covid_model):
    """On a real epidemic: positive R early, intervals in plausible range,
    overdispersed offspring."""
    _pop, _net, result = va_run
    exposed = covid_model.code("Exposed")
    stats = transmission_stats(result.log, exposed)
    assert stats.n_transmissions > 50
    assert 2.0 < stats.mean_generation_interval < 15.0
    assert stats.offspring_var > stats.offspring_mean  # superspreading
    r = effective_r_series(result.log, exposed, result.n_days)
    early = np.nanmean(r[:14])
    late = np.nanmean(r[-14:])
    assert early > 1.0  # growing epidemic at the start
    assert late < early  # susceptible depletion
