"""Aggregation tests: individual output -> county/state summaries."""

import numpy as np
import pytest

from repro.analytics.aggregate import (
    conservation_check,
    county_cumulative_counts,
    county_daily_counts,
    state_cumulative_curve,
    summarize,
)


@pytest.fixture(scope="module")
def summary(va_run, covid_model):
    _pop, _net, result = va_run
    return summarize(result, covid_model)


def test_summary_shapes(summary, covid_model, va_run):
    _pop, _net, result = va_run
    t = result.n_days + 1
    assert summary.new.shape == (t, covid_model.n_states)
    assert summary.current.shape == (t, covid_model.n_states)
    assert summary.cumulative.shape == (t, covid_model.n_states)


def test_conservation(summary, va_run):
    pop, _net, _result = va_run
    assert conservation_check(summary, pop.size)


def test_cumulative_is_running_sum(summary):
    np.testing.assert_array_equal(
        summary.cumulative, np.cumsum(summary.new, axis=0))


def test_new_counts_match_log(summary, va_run, covid_model):
    _pop, _net, result = va_run
    code = covid_model.code("Symptomatic")
    assert summary.new[:, code].sum() == result.log.entering(code).size


def test_summary_bytes_positive(summary):
    assert summary.summary_bytes > 0


def test_series_accessor(summary, covid_model):
    code = covid_model.code("Recovered")
    series = summary.series("current", code)
    assert series.shape[0] == summary.new.shape[0]
    with pytest.raises(KeyError):
        summary.series("bogus", code)


def test_county_daily_counts_sum_to_state(va_run, covid_model):
    pop, _net, result = va_run
    code = covid_model.code("Symptomatic")
    fips, counts = county_daily_counts(result.log, pop, code, result.n_days)
    state = state_cumulative_curve(result.log, code, result.n_days)
    np.testing.assert_array_equal(np.cumsum(counts.sum(axis=0)), state)
    assert fips.shape[0] == counts.shape[0]


def test_county_cumulative_monotone(va_run, covid_model):
    pop, _net, result = va_run
    code = covid_model.code("Symptomatic")
    _fips, cum = county_cumulative_counts(
        result.log, pop, code, result.n_days)
    assert (np.diff(cum, axis=1) >= 0).all()


def test_state_curve_total(va_run, covid_model):
    _pop, _net, result = va_run
    code = covid_model.code("Exposed")
    curve = state_cumulative_curve(result.log, code, result.n_days)
    assert curve[-1] == result.log.entering(code).size


def test_counties_cover_all_events(va_run, covid_model):
    pop, _net, result = va_run
    code = covid_model.code("Exposed")
    _fips, counts = county_daily_counts(result.log, pop, code, result.n_days)
    assert counts.sum() == result.log.entering(code).size
