"""Forecast-hub format tests."""

import numpy as np
import pytest

from repro.analytics.hubformat import (
    HUB_QUANTILES,
    ensemble_to_hub_rows,
    read_hub_csv,
    validate_hub_rows,
    write_hub_csv,
)


@pytest.fixture()
def ensemble():
    rng = np.random.default_rng(0)
    base = np.cumsum(rng.poisson(5, size=(40, 100)), axis=1)
    return base.astype(np.float64)


def test_rows_structure(ensemble):
    rows = ensemble_to_hub_rows(
        ensemble, location="VA", target="cum case", forecast_start=60)
    horizons = {r.horizon_days for r in rows}
    assert horizons == {7, 14, 21, 28}
    per_horizon = [r for r in rows if r.horizon_days == 7]
    assert sum(1 for r in per_horizon if r.type == "point") == 1
    assert sum(1 for r in per_horizon if r.type == "quantile") == len(
        HUB_QUANTILES)


def test_quantiles_monotone(ensemble):
    rows = ensemble_to_hub_rows(
        ensemble, location="VA", target="cum case", forecast_start=60)
    validate_hub_rows(rows)  # raises on violation


def test_point_is_median(ensemble):
    rows = ensemble_to_hub_rows(
        ensemble, location="VA", target="cum case", forecast_start=60,
        horizons=(7,))
    point = next(r for r in rows if r.type == "point")
    q50 = next(r for r in rows
               if r.type == "quantile" and r.quantile == 0.50)
    assert point.value == pytest.approx(q50.value)


def test_horizon_beyond_window(ensemble):
    with pytest.raises(ValueError, match="beyond"):
        ensemble_to_hub_rows(ensemble, location="VA", target="x",
                             forecast_start=95, horizons=(28,))


def test_csv_roundtrip(tmp_path, ensemble):
    rows = ensemble_to_hub_rows(
        ensemble, location="VA", target="cum case", forecast_start=60)
    path = tmp_path / "forecast.csv"
    text = write_hub_csv(rows, path)
    assert path.read_text() == text
    back = read_hub_csv(path)
    assert len(back) == len(rows)
    assert back[0].location == "VA"
    vals_in = [r.value for r in rows]
    vals_out = [r.value for r in back]
    np.testing.assert_allclose(vals_out, vals_in, atol=1e-3)


def test_validation_catches_bad_quantiles(ensemble):
    rows = ensemble_to_hub_rows(
        ensemble, location="VA", target="cum case", forecast_start=60,
        horizons=(7,))
    # Corrupt one quantile to break monotonicity.
    bad = [r for r in rows]
    idx = next(i for i, r in enumerate(bad)
               if r.type == "quantile" and r.quantile == 0.99)
    from repro.analytics.hubformat import HubRow
    bad[idx] = HubRow("VA", "cum case", 7, "quantile", 0.99, -1.0)
    with pytest.raises(ValueError, match="monotone"):
        validate_hub_rows(bad)


def test_prediction_workflow_output_is_hub_ready():
    """End-to-end: the prediction workflow's ensemble renders to a valid
    hub submission."""
    from repro.core.calibration_wf import run_calibration_workflow
    from repro.core.prediction_wf import run_prediction_workflow

    cal = run_calibration_workflow(
        "VT", n_cells=10, n_days=50, scale=1e-3, seed=13,
        mcmc_samples=150, mcmc_burn_in=150)
    pred = run_prediction_workflow(cal, n_configurations=3, replicates=2,
                                   horizon=28, seed=14)
    rows = ensemble_to_hub_rows(
        pred.confirmed_ensemble, location="VT", target="cum case",
        forecast_start=50, horizons=(7, 14, 28))
    validate_hub_rows(rows)
    assert len(rows) == 3 * (1 + len(HUB_QUANTILES))
