"""Ensemble-band tests (Figure 17 mechanics)."""

import numpy as np
import pytest

from repro.analytics.ensembles import (
    ensemble_band,
    pool_cells,
    quantile_scores,
)


def test_band_ordering():
    rng = np.random.default_rng(0)
    series = rng.normal(100, 10, size=(200, 50))
    band = ensemble_band(series)
    assert (band.lower <= band.median).all()
    assert (band.median <= band.upper).all()
    assert band.level == 0.95


def test_band_covers_generating_process():
    rng = np.random.default_rng(1)
    series = rng.normal(0, 1, size=(500, 30))
    band = ensemble_band(series, level=0.9)
    observed = rng.normal(0, 1, size=30)
    cov = band.empirical_coverage(observed)
    assert cov > 0.6  # well above chance for a matched process


def test_band_narrow_for_identical_members():
    series = np.tile(np.arange(10.0), (5, 1))
    band = ensemble_band(series)
    np.testing.assert_array_equal(band.lower, band.upper)
    np.testing.assert_array_equal(band.median, np.arange(10.0))


def test_band_validation():
    with pytest.raises(ValueError):
        ensemble_band(np.empty((0, 5)))
    with pytest.raises(ValueError):
        ensemble_band(np.ones((3, 5)), level=1.5)


def test_coverage_length_mismatch():
    band = ensemble_band(np.ones((3, 5)))
    with pytest.raises(ValueError):
        band.covers(np.ones(6))


def test_pool_cells_stacks():
    a = np.ones((3, 10))
    b = np.zeros((2, 10))
    pooled = pool_cells([a, b])
    assert pooled.shape == (5, 10)


def test_pool_cells_accepts_1d():
    pooled = pool_cells([np.ones(10), np.zeros((2, 10))])
    assert pooled.shape == (3, 10)


def test_pool_cells_horizon_mismatch():
    with pytest.raises(ValueError, match="horizon"):
        pool_cells([np.ones((2, 10)), np.ones((2, 9))])


def test_quantile_scores_prefer_matching_ensemble():
    rng = np.random.default_rng(2)
    observed = rng.normal(0, 1, size=40)
    good = rng.normal(0, 1, size=(300, 40))
    bad = rng.normal(5, 1, size=(300, 40))
    qs = np.asarray([0.05, 0.25, 0.5, 0.75, 0.95])
    assert quantile_scores(good, observed, qs) < quantile_scores(
        bad, observed, qs)
