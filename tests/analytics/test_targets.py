"""Forecast-target extraction tests."""

import numpy as np
import pytest

from repro.analytics.aggregate import summarize
from repro.analytics.targets import (
    ALL_TARGETS,
    CONFIRMED,
    DAILY_CASES,
    DEATHS,
    HOSPITAL_CENSUS,
    HOSPITALIZATIONS,
    VENTILATIONS,
    peak_demand,
    target_series,
)


@pytest.fixture(scope="module")
def summary(va_run, covid_model):
    _pop, _net, result = va_run
    return summarize(result, covid_model)


def test_confirmed_cumulative_monotone(summary, covid_model):
    series = target_series(summary, covid_model, CONFIRMED)
    assert (np.diff(series) >= 0).all()


def test_confirmed_equals_symptomatic_entries(summary, covid_model, va_run):
    _pop, _net, result = va_run
    series = target_series(summary, covid_model, CONFIRMED)
    sympt_entries = result.log.entering(
        covid_model.code("Symptomatic")).size
    assert series[-1] == sympt_entries


def test_daily_cases_sum_to_confirmed_final(summary, covid_model):
    daily = target_series(summary, covid_model, DAILY_CASES)
    cum = target_series(summary, covid_model, CONFIRMED)
    assert daily.sum() == cum[-1]


def test_hospitalizations_no_double_count(summary, covid_model, va_run):
    """Hospitalization incidence counts admissions, not internal moves
    (Hospitalized -> Ventilated must not count twice)."""
    _pop, _net, result = va_run
    adm = target_series(summary, covid_model, HOSPITALIZATIONS)
    hosp_entries = (
        result.log.entering(covid_model.code("Hospitalized")).size
        + result.log.entering(covid_model.code("Hospitalized_D")).size
    )
    assert adm.sum() == hosp_entries


def test_ventilations_subset_of_hospitalizations(summary, covid_model):
    vents = target_series(summary, covid_model, VENTILATIONS).sum()
    hosp = target_series(summary, covid_model, HOSPITALIZATIONS).sum()
    assert vents <= hosp


def test_census_bounded_by_population(summary, covid_model, va_run):
    pop, _net, _result = va_run
    census = target_series(summary, covid_model, HOSPITAL_CENSUS)
    assert census.max() <= pop.size
    assert census.min() >= 0


def test_deaths_monotone_and_final(summary, covid_model, va_run):
    _pop, _net, result = va_run
    deaths = target_series(summary, covid_model, DEATHS)
    assert (np.diff(deaths) >= 0).all()
    assert deaths[-1] == result.state_counts[-1][
        covid_model.code("Death")]


def test_all_targets_extract(summary, covid_model):
    for t in ALL_TARGETS:
        series = target_series(summary, covid_model, t)
        assert series.shape[0] == summary.new.shape[0]
        assert (series >= 0).all()


def test_peak_demand(summary, covid_model):
    day, value = peak_demand(summary, covid_model, HOSPITAL_CENSUS)
    series = target_series(summary, covid_model, HOSPITAL_CENSUS)
    assert value == series.max()
    assert series[day] == value
