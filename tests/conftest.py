"""Shared fixtures: small, session-cached region inputs.

Tests run at tiny scales (tens to a few thousand persons) so the whole
suite stays fast while exercising the real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.epihiper import Simulation, build_covid_model, uniform_seeds
from repro.surveillance import generate_region_truth
from repro.synthpop import build_region_network

#: Scale used by most tests (VT ~ 620 persons, VA ~ 8.5k).
TEST_SCALE = 1e-3
TEST_SEED = 424242


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_store(tmp_path_factory):
    """Keep the default result store and trace out of ~/.cache in tests."""
    import os

    old = {k: os.environ.get(k)
           for k in ("REPRO_STORE_DIR", "REPRO_TRACE_PATH")}
    os.environ["REPRO_STORE_DIR"] = str(
        tmp_path_factory.mktemp("result-store"))
    os.environ["REPRO_TRACE_PATH"] = str(
        tmp_path_factory.mktemp("trace") / "trace.jsonl")
    yield
    for key, val in old.items():
        if val is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = val


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(scope="session")
def vt_assets():
    """Vermont at 1e-3: ~620 persons — the smallest real region."""
    return build_region_network("VT", scale=TEST_SCALE, seed=TEST_SEED)


@pytest.fixture(scope="session")
def va_assets():
    """Virginia at 1e-3: ~8.5k persons, ~30k edges."""
    return build_region_network("VA", scale=TEST_SCALE, seed=TEST_SEED)


@pytest.fixture(scope="session")
def covid_model():
    return build_covid_model()


@pytest.fixture(scope="session")
def va_truth():
    return generate_region_truth("VA", n_days=150, seed=TEST_SEED)


@pytest.fixture(scope="session")
def va_run(va_assets, covid_model):
    """A completed 90-day VA simulation shared by read-only tests."""
    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=7)
    sim.seed_infections(uniform_seeds(pop, 25, sim.rng))
    result = sim.run(90)
    return pop, net, result
