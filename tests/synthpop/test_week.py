"""Week-long activity sequence tests."""

import numpy as np
import pytest

from repro.synthpop.activities import RELIGION, SCHOOL, WORK
from repro.synthpop.persons import generate_population
from repro.synthpop.week import (
    WEDNESDAY,
    WeeklyActivities,
    assign_week,
    weekly_contact_summary,
)


@pytest.fixture(scope="module")
def week():
    pop = generate_population("VT", scale=1e-2, seed=21)
    rng = np.random.default_rng(21)
    return pop, assign_week(pop, rng)


def test_seven_days(week):
    _pop, w = week
    assert len(w.days) == 7
    assert w.day(WEDNESDAY) is w.wednesday


def test_weekdays_have_school(week):
    _pop, w = week
    for d in range(5):
        assert (w.day(d).kind == SCHOOL).any()


def test_weekend_has_no_school(week):
    _pop, w = week
    for d in (5, 6):
        assert not (w.day(d).kind == SCHOOL).any()


def test_weekend_work_reduced(week):
    _pop, w = week
    weekday_work = (w.day(1).kind == WORK).sum()
    weekend_work = (w.day(5).kind == WORK).sum()
    assert weekend_work < 0.5 * weekday_work


def test_sunday_religion_boost(week):
    _pop, w = week
    sunday = (w.day(6).kind == RELIGION).sum()
    wednesday = (w.day(2).kind == RELIGION).sum()
    assert sunday > wednesday


def test_everyone_home_every_day(week):
    pop, w = week
    from repro.synthpop.activities import HOME

    for d in range(7):
        table = w.day(d)
        homes = np.unique(table.person[table.kind == HOME])
        assert homes.size == pop.size


def test_weekday_variation(week):
    """Weekdays are independent realisations, not copies."""
    _pop, w = week
    assert w.day(0).size != w.day(1).size or not np.array_equal(
        w.day(0).start, w.day(1).start)


def test_tables_sorted(week):
    _pop, w = week
    for d in range(7):
        assert (np.diff(w.day(d).person) >= 0).all()


def test_summary_shape(week):
    _pop, w = week
    summary = weekly_contact_summary(w)
    assert all(len(v) == 7 for v in summary.values())
    assert summary["school"][5] == 0  # Saturday
    assert summary["school"][0] > 0  # Monday


def test_validation():
    with pytest.raises(ValueError, match="7 days"):
        WeeklyActivities(days=())
