"""Synthetic-population generation tests."""

import numpy as np
import pytest

from repro.synthpop.persons import (
    AGE_BOUNDS,
    AGE_GROUP_SHARES,
    GENDER_SHARES,
    HOUSEHOLD_SIZE_PROBS,
    Population,
    generate_population,
)
from repro.synthpop.regions import get_region


@pytest.fixture(scope="module")
def pop():
    return generate_population("VA", scale=1e-3, seed=1)


def test_size_matches_scale(pop):
    assert pop.size == get_region("VA").scaled_population(1e-3)


def test_age_group_marginals_match_ipf_targets(pop):
    counts = np.bincount(pop.age_group, minlength=5) / pop.size
    np.testing.assert_allclose(counts, AGE_GROUP_SHARES, atol=0.02)


def test_gender_marginals(pop):
    female = (pop.gender == 0).mean()
    assert abs(female - GENDER_SHARES[0]) < 0.02


def test_ages_within_group_bounds(pop):
    for g, (lo, hi) in enumerate(AGE_BOUNDS):
        ages = pop.age[pop.age_group == g]
        assert ages.size > 0
        assert ages.min() >= lo and ages.max() <= hi


def test_households_share_county(pop):
    """Everyone in a household lives in the same county."""
    order = np.argsort(pop.hid, kind="stable")
    hid = pop.hid[order]
    county = pop.county[order]
    changes = np.flatnonzero(np.diff(hid) == 0)
    assert (county[changes] == county[changes + 1]).all()


def test_households_share_coordinates(pop):
    order = np.argsort(pop.hid, kind="stable")
    hid, lat = pop.hid[order], pop.home_lat[order]
    same = np.flatnonzero(np.diff(hid) == 0)
    np.testing.assert_array_equal(lat[same], lat[same + 1])


def test_household_sizes_realistic(pop):
    _ids, counts = np.unique(pop.hid, return_counts=True)
    assert counts.max() <= len(HOUSEHOLD_SIZE_PROBS)
    mean = counts.mean()
    assert 1.8 < mean < 3.2  # US mean household ~2.5


def test_counties_are_valid(pop):
    region = get_region("VA")
    assert set(np.unique(pop.county) // 1000) == {region.fips}


def test_county_sizes_heavy_tailed(pop):
    sizes = np.asarray(sorted(pop.county_sizes().values(), reverse=True))
    # Top decile of counties should hold a disproportionate share.
    top = max(1, sizes.size // 10)
    assert sizes[:top].sum() > 0.25 * sizes.sum()


def test_deterministic_in_seed():
    a = generate_population("VT", scale=1e-3, seed=5)
    b = generate_population("VT", scale=1e-3, seed=5)
    np.testing.assert_array_equal(a.age, b.age)
    np.testing.assert_array_equal(a.county, b.county)


def test_different_seeds_differ():
    a = generate_population("VT", scale=1e-3, seed=5)
    b = generate_population("VT", scale=1e-3, seed=6)
    assert not np.array_equal(a.age, b.age)


def test_population_validates_column_lengths():
    good = generate_population("VT", scale=1e-3, seed=5)
    with pytest.raises(ValueError, match="length mismatch"):
        Population(
            region_code="VT",
            pid=good.pid,
            hid=good.hid[:-1],
            age=good.age,
            age_group=good.age_group,
            gender=good.gender,
            county=good.county,
            home_lat=good.home_lat,
            home_lon=good.home_lon,
        )


def test_household_members_lookup(pop):
    members = pop.household_members(0)
    assert members.size >= 1
    assert (pop.hid[members] == 0).all()
