"""CSV round-trip tests for the paper's input formats."""

import numpy as np

from repro.synthpop.contacts import build_region_network
from repro.synthpop.io import (
    read_network_csv,
    read_persons_csv,
    write_network_csv,
    write_persons_csv,
)


def test_persons_roundtrip(tmp_path):
    pop, _net = build_region_network("VT", scale=1e-3, seed=9)
    path = tmp_path / "persons.csv"
    n = write_persons_csv(pop, path)
    assert n == pop.size
    back = read_persons_csv(path, "VT")
    np.testing.assert_array_equal(back.pid, pop.pid)
    np.testing.assert_array_equal(back.hid, pop.hid)
    np.testing.assert_array_equal(back.age, pop.age)
    np.testing.assert_array_equal(back.age_group, pop.age_group)
    np.testing.assert_array_equal(back.gender, pop.gender)
    np.testing.assert_array_equal(back.county, pop.county)
    np.testing.assert_allclose(back.home_lat, pop.home_lat, atol=1e-5)


def test_network_roundtrip(tmp_path):
    pop, net = build_region_network("VT", scale=1e-3, seed=9)
    path = tmp_path / "edges.csv"
    m = write_network_csv(net, path)
    assert m == net.n_edges
    back = read_network_csv(path, pop.size, "VT")
    np.testing.assert_array_equal(back.source, net.source)
    np.testing.assert_array_equal(back.target, net.target)
    np.testing.assert_array_equal(back.duration, net.duration)
    np.testing.assert_array_equal(back.source_activity, net.source_activity)
    np.testing.assert_array_equal(back.target_activity, net.target_activity)


def test_persons_header_matches_paper_traits(tmp_path):
    pop, _ = build_region_network("VT", scale=1e-3, seed=9)
    path = tmp_path / "persons.csv"
    write_persons_csv(pop, path)
    header = path.read_text().splitlines()[0].split(",")
    # Section III: household ID, age and age group, gender, county code,
    # latitude and longitude of home locations.
    for col in ("hid", "age", "age_group", "gender", "county",
                "home_lat", "home_lon"):
        assert col in header


def test_network_header_matches_paper_fields(tmp_path):
    pop, net = build_region_network("VT", scale=1e-3, seed=9)
    path = tmp_path / "edges.csv"
    write_network_csv(net, path)
    header = path.read_text().splitlines()[0].split(",")
    # Section III: two person ids, start time, duration, both contexts.
    for col in ("source", "target", "start", "duration",
                "source_activity", "target_activity"):
        assert col in header
