"""Unit and property tests for iterative proportional fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthpop.ipf import IPFError, ipf_fit, sample_joint


def test_fits_simple_2d_table():
    seed = np.ones((3, 2))
    fit = ipf_fit(seed, [np.array([10.0, 20.0, 30.0]),
                         np.array([24.0, 36.0])])
    assert fit.converged
    np.testing.assert_allclose(fit.table.sum(axis=1), [10, 20, 30],
                               atol=1e-6)
    np.testing.assert_allclose(fit.table.sum(axis=0), [24, 36], atol=1e-6)


def test_preserves_structural_zeros():
    seed = np.array([[1.0, 0.0], [1.0, 1.0]])
    fit = ipf_fit(seed, [np.array([5.0, 5.0]), np.array([6.0, 4.0])])
    assert fit.table[0, 1] == 0.0
    assert fit.converged


def test_3d_table_converges():
    rng = np.random.default_rng(0)
    seed = rng.random((4, 3, 2)) + 0.1
    targets = [np.array([10., 20., 30., 40.]),
               np.array([30., 30., 40.]),
               np.array([55., 45.])]
    fit = ipf_fit(seed, targets)
    assert fit.converged
    for axis, t in enumerate(targets):
        axes = tuple(a for a in range(3) if a != axis)
        np.testing.assert_allclose(fit.table.sum(axis=axes), t, atol=1e-6)


def test_rejects_mismatched_marginal_count():
    with pytest.raises(IPFError, match="axes"):
        ipf_fit(np.ones((2, 2)), [np.array([1.0, 1.0])])


def test_rejects_wrong_marginal_length():
    with pytest.raises(IPFError, match="shape"):
        ipf_fit(np.ones((2, 2)), [np.array([1.0, 1.0, 1.0]),
                                  np.array([1.0, 1.0])])


def test_rejects_negative_seed():
    with pytest.raises(IPFError, match="non-negative"):
        ipf_fit(np.array([[1.0, -1.0]]), [np.array([1.0]),
                                          np.array([0.5, 0.5])])


def test_rejects_inconsistent_totals():
    with pytest.raises(IPFError, match="totals"):
        ipf_fit(np.ones((2, 2)), [np.array([1.0, 1.0]),
                                  np.array([5.0, 5.0])])


def test_rejects_unreachable_target():
    seed = np.array([[0.0, 0.0], [1.0, 1.0]])
    with pytest.raises(IPFError, match="structurally zero"):
        ipf_fit(seed, [np.array([5.0, 5.0]), np.array([5.0, 5.0])])


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(2, 6),
    cols=st.integers(2, 6),
    data=st.data(),
)
def test_property_marginals_always_match(rows, cols, data):
    """For any positive seed and consistent marginals, IPF converges and
    the fitted table reproduces every marginal."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    seed = rng.random((rows, cols)) + 0.05
    row_t = rng.random(rows) + 0.1
    col_t = rng.random(cols) + 0.1
    col_t *= row_t.sum() / col_t.sum()
    fit = ipf_fit(seed, [row_t, col_t], tol=1e-8, max_iter=500)
    assert fit.converged
    np.testing.assert_allclose(fit.table.sum(axis=1), row_t, atol=1e-6)
    np.testing.assert_allclose(fit.table.sum(axis=0), col_t, atol=1e-6)
    assert (fit.table >= 0).all()


def test_sample_joint_distribution():
    table = np.array([[8.0, 0.0], [0.0, 2.0]])
    rng = np.random.default_rng(1)
    draws = sample_joint(table, 5000, rng)
    assert draws.shape == (5000, 2)
    # Only the two diagonal cells may be drawn.
    assert set(map(tuple, draws.tolist())) <= {(0, 0), (1, 1)}
    frac = (draws[:, 0] == 0).mean()
    assert 0.75 < frac < 0.85


def test_sample_joint_rejects_zero_table():
    with pytest.raises(IPFError):
        sample_joint(np.zeros((2, 2)), 10, np.random.default_rng(0))
