"""Region metadata invariants."""

import pytest

from repro.synthpop.regions import (
    ALL_CODES,
    BY_POPULATION,
    REGIONS,
    county_fips,
    get_region,
    total_counties,
    total_population,
)


def test_has_51_regions():
    assert len(REGIONS) == 51  # 50 states + DC (Section I)


def test_total_counties_is_3140():
    assert total_counties() == 3140  # "3140 counties across the USA"


def test_total_population_near_us_2019():
    assert 320_000_000 < total_population() < 340_000_000


def test_population_order_endpoints():
    # Figure 6 x-axis: WY smallest ... CA largest; the exact interior order
    # can differ slightly from the paper's synthetic node counts, so only
    # the endpoints and the extreme groups are pinned.
    assert BY_POPULATION[0] == "WY"
    assert BY_POPULATION[-1] == "CA"
    assert set(BY_POPULATION[:4]) == {"WY", "DC", "VT", "AK"}
    assert set(BY_POPULATION[-4:]) == {"FL", "NY", "TX", "CA"}


def test_all_codes_sorted():
    assert list(ALL_CODES) == sorted(ALL_CODES)
    assert len(ALL_CODES) == 51


def test_get_region_case_insensitive():
    assert get_region("va").code == "VA"
    assert get_region("Va").name == "Virginia"


def test_get_region_unknown_raises():
    with pytest.raises(KeyError, match="ZZ"):
        get_region("ZZ")


def test_county_fips_are_state_prefixed_odd():
    va = get_region("VA")
    fips = county_fips(va)
    assert len(fips) == va.counties == 133
    assert all(f // 1000 == va.fips for f in fips)
    assert all(f % 2 == 1 for f in fips)
    assert len(set(fips)) == len(fips)


def test_scaled_population_floor():
    wy = get_region("WY")
    assert wy.scaled_population(1e-9) == 50  # floor for tiny scales
    assert wy.scaled_population(1e-3) == round(wy.population * 1e-3)


def test_fips_unique():
    fips = [r.fips for r in REGIONS.values()]
    assert len(set(fips)) == len(fips)
