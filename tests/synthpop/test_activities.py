"""Activity-sequence assignment tests."""

import numpy as np
import pytest

from repro.synthpop.activities import (
    ACTIVITY_TYPES,
    COLLEGE,
    HOME,
    SCHOOL,
    WORK,
    assign_activities,
)
from repro.synthpop.persons import generate_population


@pytest.fixture(scope="module")
def pop_acts():
    pop = generate_population("VA", scale=1e-3, seed=2)
    rng = np.random.default_rng(2)
    return pop, assign_activities(pop, rng)


def test_everyone_has_home_anchor(pop_acts):
    pop, acts = pop_acts
    home_persons = np.unique(acts.person[acts.kind == HOME])
    assert home_persons.size == pop.size


def test_school_only_for_school_age(pop_acts):
    pop, acts = pop_acts
    school_persons = acts.person[acts.kind == SCHOOL]
    ages = pop.age[school_persons]
    assert ages.min() >= 5 and ages.max() <= 17


def test_all_school_age_attend(pop_acts):
    pop, acts = pop_acts
    school_age = ((pop.age >= 5) & (pop.age <= 17)).sum()
    assert np.unique(acts.person[acts.kind == SCHOOL]).size == school_age


def test_college_age_bounds(pop_acts):
    pop, acts = pop_acts
    students = acts.person[acts.kind == COLLEGE]
    if students.size:
        ages = pop.age[students]
        assert ages.min() >= 18 and ages.max() <= 22


def test_workers_are_working_age_and_not_students(pop_acts):
    pop, acts = pop_acts
    workers = acts.person[acts.kind == WORK]
    ages = pop.age[workers]
    assert ages.min() >= 18 and ages.max() <= 64
    students = set(acts.person[acts.kind == COLLEGE].tolist())
    assert not (set(workers.tolist()) & students)


def test_employment_rate_plausible(pop_acts):
    pop, acts = pop_acts
    working_age = ((pop.age >= 18) & (pop.age <= 64)).sum()
    workers = np.unique(acts.person[acts.kind == WORK]).size
    assert 0.55 < workers / working_age < 0.85


def test_times_within_day(pop_acts):
    _pop, acts = pop_acts
    assert acts.start.min() >= 0
    assert acts.start.max() < 24 * 60
    assert acts.duration.min() > 0


def test_sorted_by_person(pop_acts):
    _pop, acts = pop_acts
    assert (np.diff(acts.person) >= 0).all()


def test_kind_counts_cover_all_types(pop_acts):
    _pop, acts = pop_acts
    counts = acts.kind_counts()
    assert set(counts) == set(ACTIVITY_TYPES)
    assert counts["home"] == np.unique(acts.person).size


def test_for_person_returns_own_rows(pop_acts):
    _pop, acts = pop_acts
    rows = acts.for_person(0)
    assert (acts.person[rows] == 0).all()
    assert rows.size >= 1
