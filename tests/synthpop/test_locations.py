"""Location-assignment tests."""

import numpy as np
import pytest

from repro.synthpop.activities import HOME, SCHOOL, WORK, assign_activities
from repro.synthpop.locations import (
    OUT_COMMUTE_RATE,
    assign_locations,
    location_kind_counts,
)
from repro.synthpop.persons import generate_population


@pytest.fixture(scope="module")
def setup():
    pop = generate_population("VA", scale=1e-3, seed=3)
    rng = np.random.default_rng(3)
    acts = assign_activities(pop, rng)
    visits = assign_locations(pop, acts, rng)
    return pop, acts, visits


def test_every_activity_assigned(setup):
    _pop, acts, visits = setup
    assert visits.size == acts.size
    assert (visits.location >= 0).all()
    assert visits.location.max() < visits.n_locations


def test_home_maps_to_household_residence(setup):
    pop, _acts, visits = setup
    rows = visits.kind == HOME
    np.testing.assert_array_equal(
        visits.location[rows], pop.hid[visits.person[rows]])


def test_residences_precede_activity_locations(setup):
    pop, _acts, visits = setup
    n_res = int(pop.hid.max()) + 1
    non_home = visits.kind != HOME
    assert visits.location[non_home].min() >= n_res


def test_out_commute_fraction(setup):
    """Some but not most workers commute out of their home county."""
    pop, _acts, visits = setup
    rows = np.flatnonzero(visits.kind == WORK)
    # Recover each work location's county from its co-workers' modal county.
    workers = visits.person[rows]
    home_counties = pop.county[workers]
    locs = visits.location[rows]
    loc_county: dict[int, int] = {}
    for loc in np.unique(locs):
        members = home_counties[locs == loc]
        vals, counts = np.unique(members, return_counts=True)
        loc_county[int(loc)] = int(vals[np.argmax(counts)])
    dest = np.asarray([loc_county[int(l)] for l in locs])
    out_frac = (dest != home_counties).mean()
    assert out_frac < OUT_COMMUTE_RATE * 2.5


def test_school_is_county_local(setup):
    pop, _acts, visits = setup
    rows = np.flatnonzero(visits.kind == SCHOOL)
    locs = visits.location[rows]
    counties = pop.county[visits.person[rows]]
    for loc in np.unique(locs):
        assert np.unique(counties[locs == loc]).size == 1


def test_location_kind_counts(setup):
    _pop, _acts, visits = setup
    counts = location_kind_counts(visits)
    assert counts["home"] > 0
    assert counts["work"] > 0
    assert counts["school"] > 0
    # Schools are bigger than shops: fewer school locations per person.
    assert counts["school"] < counts["shopping"] or counts["shopping"] == 0


def test_visitors_of(setup):
    _pop, _acts, visits = setup
    loc = int(visits.location[0])
    vs = visits.visitors_of(loc)
    assert visits.person[0] in vs
