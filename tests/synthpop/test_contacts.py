"""Contact-network derivation tests."""

import numpy as np
import pytest

from repro.synthpop.activities import HOME
from repro.synthpop.contacts import (
    ContactNetwork,
    MIN_OVERLAP_MIN,
    build_region_network,
)


@pytest.fixture(scope="module")
def net_pop():
    pop, net = build_region_network("VA", scale=1e-3, seed=4)
    return pop, net


def test_edges_canonical(net_pop):
    _pop, net = net_pop
    assert (net.source < net.target).all()


def test_no_duplicate_edges_per_context(net_pop):
    _pop, net = net_pop
    key = ((net.source.astype(np.int64) * net.n_nodes + net.target) * 8
           + net.source_activity)
    assert np.unique(key).size == key.size


def test_endpoints_in_range(net_pop):
    pop, net = net_pop
    assert net.n_nodes == pop.size
    assert net.target.max() < pop.size
    assert net.source.min() >= 0


def test_household_members_connected(net_pop):
    """Cohabitants always meet at home: households form cliques."""
    pop, net = net_pop
    hh = pop.household_members(0)
    if hh.size >= 2:
        a, b = int(hh[0]), int(hh[1])
        mask = (net.source == min(a, b)) & (net.target == max(a, b))
        assert mask.any()


def test_home_edges_exist_and_tagged(net_pop):
    _pop, net = net_pop
    home_mask = (net.source_activity == HOME) & (net.target_activity == HOME)
    assert home_mask.any()


def test_durations_meet_minimum(net_pop):
    _pop, net = net_pop
    assert net.duration.min() >= MIN_OVERLAP_MIN


def test_degrees_sum_to_twice_edges(net_pop):
    _pop, net = net_pop
    assert net.degrees().sum() == 2 * net.n_edges


def test_mean_degree_realistic(net_pop):
    _pop, net = net_pop
    assert 2.0 < net.mean_degree() < 40.0


def test_neighbors_symmetric(net_pop):
    _pop, net = net_pop
    a = int(net.source[0])
    b = int(net.target[0])
    assert b in net.neighbors(a)
    assert a in net.neighbors(b)


def test_subset_filters_edges(net_pop):
    _pop, net = net_pop
    mask = net.duration >= np.median(net.duration)
    sub = net.subset(mask)
    assert sub.n_edges == int(mask.sum())
    assert sub.n_nodes == net.n_nodes


def test_network_validates_canonical_order(net_pop):
    _pop, net = net_pop
    with pytest.raises(ValueError, match="canonical"):
        ContactNetwork(
            region_code="VA",
            n_nodes=net.n_nodes,
            source=net.target[:10],  # swapped: target > source
            target=net.source[:10],
            start=net.start[:10],
            duration=net.duration[:10],
            source_activity=net.source_activity[:10],
            target_activity=net.target_activity[:10],
            weight=net.weight[:10],
        )


def test_network_size_scales_with_population():
    _p1, small = build_region_network("VT", scale=1e-3, seed=4)
    _p2, large = build_region_network("VA", scale=1e-3, seed=4)
    assert large.n_edges > 5 * small.n_edges


def test_deterministic(net_pop):
    _pop, net = net_pop
    _pop2, net2 = build_region_network("VA", scale=1e-3, seed=4)
    np.testing.assert_array_equal(net.source, net2.source)
    np.testing.assert_array_equal(net.duration, net2.duration)
