"""Binary network format and partition chunk tests."""

import numpy as np
import pytest

from repro.epihiper.partition import partition_threshold
from repro.synthpop.binfmt import (
    EDGE_DTYPE,
    read_network_binary,
    read_partition_chunks,
    write_network_binary,
    write_partition_chunks,
)
from repro.synthpop.contacts import build_region_network


@pytest.fixture(scope="module")
def net():
    _pop, net = build_region_network("VT", scale=1e-3, seed=11)
    return net


def test_roundtrip(tmp_path, net):
    path = tmp_path / "vt.ephn"
    n = write_network_binary(net, path)
    assert n == path.stat().st_size
    back = read_network_binary(path, "VT")
    np.testing.assert_array_equal(back.source, net.source)
    np.testing.assert_array_equal(back.target, net.target)
    np.testing.assert_array_equal(back.duration, net.duration)
    np.testing.assert_array_equal(back.source_activity, net.source_activity)
    np.testing.assert_allclose(back.weight, net.weight)
    np.testing.assert_array_equal(back.active, net.active)
    assert back.n_nodes == net.n_nodes


def test_binary_smaller_than_csv(tmp_path, net):
    from repro.synthpop.io import write_network_csv

    bin_path = tmp_path / "net.ephn"
    csv_path = tmp_path / "net.csv"
    write_network_binary(net, bin_path)
    write_network_csv(net, csv_path)
    assert bin_path.stat().st_size < csv_path.stat().st_size


def test_rejects_bad_magic(tmp_path):
    path = tmp_path / "junk.ephn"
    path.write_bytes(b"NOPE" + b"\x00" * 100)
    with pytest.raises(ValueError, match="EPHN"):
        read_network_binary(path, "VT")


def test_rejects_truncation(tmp_path, net):
    path = tmp_path / "trunc.ephn"
    write_network_binary(net, path)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(ValueError, match="truncated"):
        read_network_binary(path, "VT")


def test_rejects_short_file(tmp_path):
    path = tmp_path / "short.ephn"
    path.write_bytes(b"EP")
    with pytest.raises(ValueError, match="too short"):
        read_network_binary(path, "VT")


def test_partition_chunks_roundtrip(tmp_path, net):
    part = partition_threshold(net, 4)
    paths = write_partition_chunks(net, part, tmp_path)
    assert len(paths) == 4
    back = read_partition_chunks(paths, net.n_nodes, "VT")
    assert back.n_edges == net.n_edges
    # Chunks hold exactly the rank-owned edges.
    chunk0 = read_network_binary(paths[0], "VT")
    assert chunk0.n_edges == int(part.edge_counts()[0])
    # Reassembly covers the same edge multiset.
    key = lambda n: np.sort(n.source * net.n_nodes + n.target)
    np.testing.assert_array_equal(key(back), key(net))


def test_partition_chunks_validation(tmp_path, net):
    from repro.synthpop.contacts import build_region_network

    _pop2, other = build_region_network("VA", scale=1e-3, seed=11)
    part = partition_threshold(other, 4)
    with pytest.raises(ValueError, match="match"):
        write_partition_chunks(net, part, tmp_path)
    with pytest.raises(ValueError, match="chunk"):
        read_partition_chunks([], 10, "VT")


def test_edge_record_size():
    # The packed record stays compact (the format's reason to exist).
    assert EDGE_DTYPE.itemsize <= 40
