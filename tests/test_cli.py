"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "VT", "--days", "10"])
    assert args.region == "VT"
    assert args.days == 10


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "51" in out
    assert "bridges" in out


def test_synth_writes_csvs(tmp_path, capsys):
    assert main(["synth", "VT", "--scale", "1e-3",
                 "-o", str(tmp_path)]) == 0
    assert (tmp_path / "vt_persons.csv").exists()
    assert (tmp_path / "vt_network.csv").exists()
    out = capsys.readouterr().out
    assert "persons" in out


def test_simulate(tmp_path, capsys):
    csv = tmp_path / "series.csv"
    assert main(["simulate", "VT", "--days", "30", "--tau", "0.3",
                 "--csv", str(csv)]) == 0
    out = capsys.readouterr().out
    assert "attack" in out
    lines = csv.read_text().splitlines()
    assert lines[0] == "day,confirmed_cumulative,deaths_cumulative"
    assert len(lines) == 32  # header + 31 days


def test_simulate_with_interventions(capsys):
    assert main(["simulate", "VT", "--days", "20",
                 "--sh-compliance", "0.8", "--vhi-compliance", "0.5"]) == 0


def test_night(capsys):
    assert main(["night", "prediction"]) == 0
    out = capsys.readouterr().out
    assert "fits: True" in out


def test_calibrate_small(capsys):
    assert main(["calibrate", "VT", "--cells", "10", "--days", "40",
                 "--samples", "100", "--burn-in", "100"]) == 0
    out = capsys.readouterr().out
    assert "TAU" in out and "corr" in out
