"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "VT", "--days", "10"])
    assert args.region == "VT"
    assert args.days == 10


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "51" in out
    assert "bridges" in out


def test_synth_writes_csvs(tmp_path, capsys):
    assert main(["synth", "VT", "--scale", "1e-3",
                 "-o", str(tmp_path)]) == 0
    assert (tmp_path / "vt_persons.csv").exists()
    assert (tmp_path / "vt_network.csv").exists()
    out = capsys.readouterr().out
    assert "persons" in out


def test_simulate(tmp_path, capsys):
    csv = tmp_path / "series.csv"
    assert main(["simulate", "VT", "--days", "30", "--tau", "0.3",
                 "--csv", str(csv)]) == 0
    out = capsys.readouterr().out
    assert "attack" in out
    lines = csv.read_text().splitlines()
    assert lines[0] == "day,confirmed_cumulative,deaths_cumulative"
    assert len(lines) == 32  # header + 31 days


def test_simulate_with_interventions(capsys):
    assert main(["simulate", "VT", "--days", "20",
                 "--sh-compliance", "0.8", "--vhi-compliance", "0.5"]) == 0


def test_night(capsys):
    assert main(["night", "prediction"]) == 0
    out = capsys.readouterr().out
    assert "fits: True" in out


def test_calibrate_small(capsys):
    assert main(["calibrate", "VT", "--cells", "10", "--days", "40",
                 "--samples", "100", "--burn-in", "100"]) == 0
    out = capsys.readouterr().out
    assert "TAU" in out and "corr" in out


def test_simulate_store_hit(tmp_path, capsys):
    flags = ["simulate", "VT", "--days", "20",
             "--store-dir", str(tmp_path / "store")]
    assert main(flags) == 0
    cold = capsys.readouterr().out
    assert "[store hit]" not in cold
    assert main(flags) == 0
    warm = capsys.readouterr().out
    assert "[store hit]" in warm
    # Identical numbers either way.
    assert warm.replace(" [store hit]", "") == cold


def test_simulate_no_cache_never_hits(tmp_path, capsys):
    flags = ["simulate", "VT", "--days", "20", "--no-cache",
             "--store-dir", str(tmp_path / "store")]
    assert main(flags) == 0
    assert main(flags) == 0
    assert "[store hit]" not in capsys.readouterr().out
    assert not (tmp_path / "store").exists()


def test_simulate_csv_from_cache_identical(tmp_path, capsys):
    store = str(tmp_path / "store")
    a, b = tmp_path / "a.csv", tmp_path / "b.csv"
    assert main(["simulate", "VT", "--days", "15", "--store-dir", store,
                 "--csv", str(a)]) == 0
    assert main(["simulate", "VT", "--days", "15", "--store-dir", store,
                 "--csv", str(b)]) == 0
    assert a.read_text() == b.read_text()


def test_simulate_ledger_journal(tmp_path, capsys):
    ledger = tmp_path / "run.jsonl"
    flags = ["simulate", "VT", "--days", "15",
             "--store-dir", str(tmp_path / "store"),
             "--ledger", str(ledger)]
    assert main(flags) == 0
    assert main(flags) == 0
    from repro.store import replay_ledger
    replay = replay_ledger(ledger)
    assert replay.count("instance_completed") == 1
    assert replay.count("cache_hit") == 1


def test_resume_with_no_cache_rejected():
    with pytest.raises(SystemExit):
        main(["simulate", "VT", "--days", "10",
              "--no-cache", "--resume"])


def test_calibrate_reports_store_stats(tmp_path, capsys):
    flags = ["calibrate", "VT", "--cells", "6", "--days", "40",
             "--samples", "100", "--burn-in", "100",
             "--store-dir", str(tmp_path / "store")]
    assert main(flags) == 0
    cold = capsys.readouterr().out
    assert "6 misses" in cold
    assert main(flags) == 0
    warm = capsys.readouterr().out
    assert "6 hits" in warm and "100% served" in warm


def test_night_resume_roundtrip(tmp_path, capsys):
    ledger = str(tmp_path / "night.jsonl")
    assert main(["night", "prediction", "--ledger", ledger]) == 0
    capsys.readouterr()
    assert main(["night", "prediction", "--ledger", ledger,
                 "--resume"]) == 0
    out = capsys.readouterr().out
    assert "0 re-executed" in out
    assert "makespan: 0.00h" in out


def test_night_resume_requires_ledger(capsys):
    assert main(["night", "prediction", "--resume"]) == 2
    assert "needs --ledger" in capsys.readouterr().err


def test_store_stats_gc_clear(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(["simulate", "VT", "--days", "15",
                 "--store-dir", store]) == 0
    capsys.readouterr()
    assert main(["store", "stats", "--dir", store]) == 0
    assert "1 blobs" in capsys.readouterr().out
    assert main(["store", "gc", "--dir", store, "--max-bytes", "0"]) == 0
    assert "evicted 1 blobs" in capsys.readouterr().out
    assert main(["store", "clear", "--dir", store]) == 0
    assert "removed 0 blobs" in capsys.readouterr().out


def test_simulate_quarantine_exit_code(capsys):
    # A persistent worker fault exhausts the single attempt: exit 4.
    assert main(["simulate", "VT", "--days", "5", "--no-trace",
                 "--no-cache", "--inject",
                 "worker.exception:times=3"]) == 4
    assert "quarantined" in capsys.readouterr().err


def test_simulate_retry_recovers(capsys):
    # A one-shot fault with a retry budget recovers to a clean exit.
    assert main(["simulate", "VT", "--days", "5", "--no-trace",
                 "--no-cache", "--inject", "worker.exception:times=1",
                 "--retries", "3"]) == 0
    assert "attack" in capsys.readouterr().out


def test_night_transfer_exhaustion_exit_code(capsys):
    assert main(["night", "prediction", "--no-trace", "--no-cache",
                 "--inject", "transfer.fail:times=99"]) == 4
    assert "gave up after retries" in capsys.readouterr().err


def test_chaos_quarantine_exit_code(capsys):
    # Every attempt faults: the drill reports quarantines via exit 4.
    assert main(["chaos", "run", "VT", "--instances", "2", "--days", "5",
                 "--serial", "--max-attempts", "2",
                 "--inject", "worker.exception:times=99"]) == 4
    assert "quarantined" in capsys.readouterr().out


def test_chaos_recovered_run_exits_clean(capsys):
    assert main(["chaos", "run", "VT", "--instances", "2", "--days", "5",
                 "--serial", "--max-attempts", "3",
                 "--inject", "worker.exception:times=1"]) == 0
    assert "equivalence: OK" in capsys.readouterr().out
