"""COVID-19 model (Figure 12, Tables III and IV) validation."""

import numpy as np
import pytest

from repro.epihiper.covid import (
    ASYMPT,
    ATTD,
    ATTD_D,
    ATTD_H,
    DEATH,
    EXPOSED,
    HOSP,
    PRESYMPT,
    RECOVERED,
    RX_FAILURE,
    SUSCEPTIBLE,
    SYMPT,
    TRANSMISSIBILITY,
    VENT,
    build_covid_model,
    build_covid_model_with_symp_fraction,
    covid_progressions,
)


@pytest.fixture(scope="module")
def model():
    return build_covid_model()


def test_fifteen_states(model):
    assert model.n_states == 15


def test_table_iv_transmissibility(model):
    assert model.transmissibility == TRANSMISSIBILITY == 0.18


def test_table_iv_infectivities(model):
    assert model.infectivity[model.code(PRESYMPT)] == 0.8
    assert model.infectivity[model.code(SYMPT)] == 1.0
    assert model.infectivity[model.code(ASYMPT)] == 1.0


def test_table_iv_susceptibilities(model):
    assert model.susceptibility[model.code(SUSCEPTIBLE)] == 1.0
    assert model.susceptibility[model.code(RX_FAILURE)] == 1.0


def test_table_iii_symptomatic_branch_rows_sum_to_one():
    """The legible age-stratified Table III rows sum to exactly 1."""
    rows = {p.dst: np.asarray(p.prob) for p in covid_progressions()
            if p.src == SYMPT}
    total = rows[ATTD] + rows[ATTD_D] + rows[ATTD_H]
    np.testing.assert_allclose(total, 1.0, atol=1e-12)


def test_table_iii_attd_probabilities():
    rows = {p.dst: p.prob for p in covid_progressions() if p.src == SYMPT}
    assert rows[ATTD] == (0.9594, 0.9894, 0.9594, 0.912, 0.788)
    assert rows[ATTD_D] == (0.0006, 0.0006, 0.0006, 0.003, 0.017)
    assert rows[ATTD_H] == (0.04, 0.01, 0.04, 0.085, 0.195)


def test_hospital_severity_increases_with_age():
    rows = {p.dst: p.prob for p in covid_progressions() if p.src == HOSP}
    vent = rows[VENT]
    assert vent == (0.06, 0.06, 0.06, 0.15, 0.225)
    assert list(vent) == sorted(vent)  # non-decreasing in age


def test_exposed_split(model):
    rows = {p.dst: p.prob for p in covid_progressions() if p.src == EXPOSED}
    assert rows[ASYMPT] == (0.35,) * 5
    assert rows[PRESYMPT] == (0.65,) * 5


def test_terminal_states(model):
    terms = set(model.terminal_states())
    assert RECOVERED in terms and DEATH in terms
    assert SUSCEPTIBLE in terms and RX_FAILURE in terms
    assert SYMPT not in terms


def test_death_reachable_only_via_d_track(model):
    """Death's predecessors are exactly the (D)-annotated states."""
    preds = {p.src for p in covid_progressions() if p.dst == DEATH}
    assert preds == {"Attended_D", "Hospitalized_D", "Ventilated_D"}


def test_flags(model):
    assert model.is_hospitalized[model.code(HOSP)]
    assert model.is_ventilated[model.code(VENT)]
    assert model.is_deceased[model.code(DEATH)]
    assert not model.is_deceased[model.code(RECOVERED)]
    assert model.is_symptomatic[model.code(SYMPT)]
    assert not model.is_symptomatic[model.code(PRESYMPT)]


def test_symp_fraction_variant():
    m = build_covid_model_with_symp_fraction(0.3, 0.8)
    assert m.transmissibility == 0.3
    rows = {p.dst: p.prob for p in m.progressions if p.src == EXPOSED}
    assert rows[PRESYMPT] == (0.8,) * 5
    assert rows[ASYMPT] == pytest.approx((0.2,) * 5)


def test_symp_fraction_validation():
    with pytest.raises(ValueError):
        build_covid_model_with_symp_fraction(0.2, 1.5)


def test_expected_course_duration(model):
    """Exposed to absorption takes days-to-weeks, not hours or months."""
    lengths = model.expected_path_lengths()
    assert 8.0 < lengths[EXPOSED] < 30.0


def test_infection_fatality_rate_plausible(model):
    """IFR implied by the branch products should be well under 2% for the
    young and a few percent for 65+."""
    probs = {(p.src, p.dst): np.asarray(p.prob)
             for p in covid_progressions()}
    symp = 0.65
    # P(death | infection) via the Attd(D) chain.
    p_attd_d = probs[(SYMPT, ATTD_D)]
    # All Attd(D) entrants die eventually (0.05 directly, 0.95 via chain).
    ifr_d_track = symp * p_attd_d
    assert ifr_d_track[0] < 0.001
    assert 0.005 < ifr_d_track[-1] < 0.02
