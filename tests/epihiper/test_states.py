"""Dwell-time distribution and health-state tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.epihiper.states import (
    DiscreteDwell,
    FixedDwell,
    HealthState,
    NormalDwell,
)


def test_health_state_flags():
    s = HealthState("Symptomatic", infectivity=1.0, symptomatic=True)
    assert s.infectious and not s.susceptible
    sus = HealthState("Susceptible", susceptibility=1.0)
    assert sus.susceptible and not sus.infectious


def test_fixed_dwell_sample_and_mean():
    d = FixedDwell(3)
    rng = np.random.default_rng(0)
    out = d.sample(100, rng)
    assert (out == 3).all()
    assert d.mean() == 3.0


def test_fixed_dwell_rejects_zero():
    with pytest.raises(ValueError):
        FixedDwell(0)


@settings(max_examples=25, deadline=None)
@given(mu=st.floats(0.5, 20.0), sd=st.floats(0.0, 5.0),
       seed=st.integers(0, 2**31))
def test_normal_dwell_always_at_least_one(mu, sd, seed):
    d = NormalDwell(mu, sd)
    out = d.sample(200, np.random.default_rng(seed))
    assert out.dtype == np.int32
    assert out.min() >= 1


def test_normal_dwell_mean_close():
    d = NormalDwell(5.0, 1.0)
    out = d.sample(20_000, np.random.default_rng(1))
    assert abs(out.mean() - 5.0) < 0.1


def test_normal_dwell_rejects_negative_sd():
    with pytest.raises(ValueError):
        NormalDwell(5.0, -1.0)


def test_discrete_dwell_distribution():
    d = DiscreteDwell(days=(1, 2, 3), probs=(0.5, 0.3, 0.2))
    out = d.sample(30_000, np.random.default_rng(2))
    assert set(np.unique(out)) <= {1, 2, 3}
    assert abs((out == 1).mean() - 0.5) < 0.02
    assert abs(d.mean() - 1.7) < 1e-9


def test_discrete_dwell_validation():
    with pytest.raises(ValueError, match="sum to 1"):
        DiscreteDwell(days=(1, 2), probs=(0.5, 0.6))
    with pytest.raises(ValueError, match=">= 1"):
        DiscreteDwell(days=(0, 1), probs=(0.5, 0.5))
    with pytest.raises(ValueError, match="equal-length"):
        DiscreteDwell(days=(1, 2), probs=(1.0,))


def test_table_iii_sympt_attd_distribution():
    """The Table III dt-discrete row for Symptomatic -> Attended."""
    from repro.epihiper.covid import _SYMPT_ATTD_DWELL as d
    assert d.days == tuple(range(1, 11))
    assert abs(sum(d.probs) - 1.0) < 1e-12
    assert d.probs[0] == d.probs[1] == 0.175
