"""Dwell-time distribution and health-state tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.epihiper.states import (
    DiscreteDwell,
    FixedDwell,
    HealthState,
    NormalDwell,
    inverse_normal_cdf,
    inverse_normal_cdf_scalar,
)

ALL_DWELLS = (
    FixedDwell(3),
    NormalDwell(4.5, 1.5),
    NormalDwell(2.0, 0.0),
    DiscreteDwell((1, 3, 7), (0.2, 0.5, 0.3)),
)


def test_health_state_flags():
    s = HealthState("Symptomatic", infectivity=1.0, symptomatic=True)
    assert s.infectious and not s.susceptible
    sus = HealthState("Susceptible", susceptibility=1.0)
    assert sus.susceptible and not sus.infectious


def test_fixed_dwell_sample_and_mean():
    d = FixedDwell(3)
    rng = np.random.default_rng(0)
    out = d.sample(100, rng)
    assert (out == 3).all()
    assert d.mean() == 3.0


def test_fixed_dwell_rejects_zero():
    with pytest.raises(ValueError):
        FixedDwell(0)


@settings(max_examples=25, deadline=None)
@given(mu=st.floats(0.5, 20.0), sd=st.floats(0.0, 5.0),
       seed=st.integers(0, 2**31))
def test_normal_dwell_always_at_least_one(mu, sd, seed):
    d = NormalDwell(mu, sd)
    out = d.sample(200, np.random.default_rng(seed))
    assert out.dtype == np.int32
    assert out.min() >= 1


def test_normal_dwell_mean_close():
    d = NormalDwell(5.0, 1.0)
    out = d.sample(20_000, np.random.default_rng(1))
    assert abs(out.mean() - 5.0) < 0.1


def test_normal_dwell_rejects_negative_sd():
    with pytest.raises(ValueError):
        NormalDwell(5.0, -1.0)


def test_discrete_dwell_distribution():
    d = DiscreteDwell(days=(1, 2, 3), probs=(0.5, 0.3, 0.2))
    out = d.sample(30_000, np.random.default_rng(2))
    assert set(np.unique(out)) <= {1, 2, 3}
    assert abs((out == 1).mean() - 0.5) < 0.02
    assert abs(d.mean() - 1.7) < 1e-9


def test_discrete_dwell_validation():
    with pytest.raises(ValueError, match="sum to 1"):
        DiscreteDwell(days=(1, 2), probs=(0.5, 0.6))
    with pytest.raises(ValueError, match=">= 1"):
        DiscreteDwell(days=(0, 1), probs=(0.5, 0.5))
    with pytest.raises(ValueError, match="equal-length"):
        DiscreteDwell(days=(1, 2), probs=(1.0,))


def test_table_iii_sympt_attd_distribution():
    """The Table III dt-discrete row for Symptomatic -> Attended."""
    from repro.epihiper.covid import _SYMPT_ATTD_DWELL as d
    assert d.days == tuple(range(1, 11))
    assert abs(sum(d.probs) - 1.0) < 1e-12
    assert d.probs[0] == d.probs[1] == 0.175


# ---- one-uniform-per-draw stream contract ----------------------------------
#
# The batched multi-replicate driver pre-draws one uniform block per lane
# and evaluates every dwell family over cross-lane concatenations.  That is
# only bit-identical to solo runs if (a) every family consumes exactly one
# uniform per draw, (b) the value map is elementwise (position- and
# size-independent), and (c) the scalar fast paths are exact twins of the
# array paths.  These tests pin all three.


def test_inverse_normal_cdf_scalar_matches_array_bitwise():
    rng = np.random.default_rng(31)
    u = np.concatenate([
        rng.random(2000),
        np.array([0.0, 1e-320, 1e-300, 1e-12, 0.074, 0.075, 0.076,
                  0.425, 0.5, 0.575, 0.924, 0.925, 0.926,
                  1.0 - 1e-12, 1.0 - 1e-16]),
    ])
    vec = inverse_normal_cdf(u)
    scal = np.array([inverse_normal_cdf_scalar(v) for v in u.tolist()])
    np.testing.assert_array_equal(vec, scal)  # bitwise, not approx
    assert np.isfinite(vec).all()  # u == 0 clamps instead of -inf


def test_inverse_normal_cdf_is_the_normal_quantile():
    from math import erf, sqrt

    u = np.linspace(0.001, 0.999, 199)
    x = inverse_normal_cdf(u)
    cdf = 0.5 * (1.0 + np.array([erf(v / sqrt(2.0)) for v in x]))
    np.testing.assert_allclose(cdf, u, atol=1e-12)


@pytest.mark.parametrize("dwell", ALL_DWELLS, ids=lambda d: d.kind)
def test_one_uniform_per_draw(dwell):
    """``sample(n)`` leaves the generator exactly where ``random(n)`` does."""
    for n in (1, 5, 24, 25, 200):
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        dwell.sample(n, a)
        b.random(n)
        assert a.bit_generator.state == b.bit_generator.state, n


@pytest.mark.parametrize("dwell", ALL_DWELLS, ids=lambda d: d.kind)
def test_values_from_uniforms_is_elementwise(dwell):
    """Concatenation invariance: the property batch scheduling relies on."""
    rng = np.random.default_rng(13)
    blocks = [rng.random(n) for n in (3, 24, 25, 111)]
    per_block = np.concatenate(
        [dwell.values_from_uniforms(b) for b in blocks])
    at_once = dwell.values_from_uniforms(np.concatenate(blocks))
    np.testing.assert_array_equal(per_block, at_once)
    assert at_once.dtype == np.int32 and (at_once >= 1).all()


@pytest.mark.parametrize("dwell", ALL_DWELLS, ids=lambda d: d.kind)
def test_sample_one_matches_sample_of_one(dwell):
    """Same value AND same stream bytes as the size-1 array draw."""
    for seed in range(20):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        one = dwell.sample_one(a)
        arr = dwell.sample(1, b)
        assert isinstance(one, int)
        assert one == int(arr[0])
        assert a.bit_generator.state == b.bit_generator.state


def test_sample_equals_values_from_uniforms():
    """``sample`` is exactly ``values_from_uniforms(rng.random(n))``."""
    for dwell in ALL_DWELLS:
        a = np.random.default_rng(99)
        b = np.random.default_rng(99)
        np.testing.assert_array_equal(
            dwell.sample(50, a), dwell.values_from_uniforms(b.random(50)))
