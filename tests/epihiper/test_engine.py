"""Simulation-engine tests: conservation, determinism, result shapes."""

import numpy as np
import pytest

from repro.epihiper import Simulation, build_covid_model, uniform_seeds


def make_sim(va_assets, covid_model, seed=11):
    pop, net = va_assets
    return Simulation(covid_model, pop, net, seed=seed)


def test_initial_state_all_susceptible(va_assets, covid_model):
    sim = make_sim(va_assets, covid_model)
    counts = sim.current_state_counts()
    assert counts[covid_model.code("Susceptible")] == va_assets[0].size


def test_seeding_moves_to_exposed(va_assets, covid_model):
    sim = make_sim(va_assets, covid_model)
    seeds = uniform_seeds(va_assets[0], 10, sim.rng)
    sim.seed_infections(seeds)
    counts = sim.current_state_counts()
    assert counts[covid_model.code("Exposed")] == 10


def test_population_conserved_every_tick(va_run, covid_model):
    pop, _net, result = va_run
    totals = result.state_counts.sum(axis=1)
    assert (totals == pop.size).all()


def test_state_counts_shape(va_run, covid_model):
    _pop, _net, result = va_run
    assert result.state_counts.shape == (91, covid_model.n_states)
    assert result.n_days == 90


def test_epidemic_progresses(va_run, covid_model):
    _pop, _net, result = va_run
    assert result.attack_rate(covid_model) > 0.02
    recovered = result.state_counts[:, covid_model.code("Recovered")]
    assert (np.diff(recovered) >= 0).all()  # Recovered is absorbing


def test_deaths_monotone(va_run, covid_model):
    _pop, _net, result = va_run
    deaths = result.state_counts[:, covid_model.code("Death")]
    assert (np.diff(deaths) >= 0).all()


def test_log_ticks_in_range(va_run):
    _pop, _net, result = va_run
    assert result.log.tick.min() >= 0
    assert result.log.tick.max() <= 90


def test_deterministic_given_seed(va_assets, covid_model):
    results = []
    for _ in range(2):
        sim = make_sim(va_assets, covid_model, seed=99)
        sim.seed_infections(uniform_seeds(va_assets[0], 15, sim.rng))
        results.append(sim.run(40))
    a, b = results
    np.testing.assert_array_equal(a.state_counts, b.state_counts)
    np.testing.assert_array_equal(a.log.pid, b.log.pid)


def test_different_seeds_diverge(va_assets, covid_model):
    outs = []
    for seed in (1, 2):
        sim = make_sim(va_assets, covid_model, seed=seed)
        sim.seed_infections(uniform_seeds(va_assets[0], 15, sim.rng))
        outs.append(sim.run(40).state_counts)
    assert not np.array_equal(*outs)


def test_counters_populated(va_run):
    _pop, _net, result = va_run
    c = result.counters
    assert c["contacts_evaluated"] > 0
    assert c["transitions"] >= c["transmissions"] > 0


def test_memory_series_monotone_nondecreasing(va_run):
    _pop, _net, result = va_run
    assert result.memory_series.shape == (91,)
    assert (np.diff(result.memory_series) >= 0).all()


def test_network_population_mismatch_rejected(va_assets, vt_assets,
                                              covid_model):
    va_pop, _ = va_assets
    _, vt_net = vt_assets
    with pytest.raises(ValueError, match="disagree"):
        Simulation(covid_model, va_pop, vt_net)


def test_negative_days_rejected(va_assets, covid_model):
    sim = make_sim(va_assets, covid_model)
    with pytest.raises(ValueError):
        sim.run(-1)


def test_zero_day_run(va_assets, covid_model):
    sim = make_sim(va_assets, covid_model)
    sim.seed_infections(uniform_seeds(va_assets[0], 5, sim.rng))
    result = sim.run(0)
    assert result.n_days == 0
    assert result.state_counts.shape[0] == 1


def test_no_seeds_no_epidemic(va_assets, covid_model):
    sim = make_sim(va_assets, covid_model)
    result = sim.run(20)
    assert result.attack_rate(covid_model) == 0.0
    assert result.log.size == 0


def test_dendogram_seeds_have_no_infector(va_run, covid_model):
    _pop, _net, result = va_run
    exposed = covid_model.code("Exposed")
    tick0 = result.log.tick == 0
    seeds = (result.log.state == exposed) & tick0
    assert (result.log.infector[seeds] == -1).all()
