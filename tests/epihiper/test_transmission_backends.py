"""Frontier/dense kernel equivalence: bit-identical, not statistical.

The frontier kernel gathers only edges incident to the infectious set and
sorts them into dense enumeration order, so for the same RNG stream it must
reproduce the dense kernel's :class:`TransmissionEvents` exactly — pids,
exposed codes, infectors, and candidate counts, over any network, health
configuration, and intervention-suppressed edge mask.
"""

import numpy as np
import pytest

from repro.epihiper import Simulation, TransmissionBackend, uniform_seeds
from repro.epihiper.disease import (
    DiseaseModel,
    Progression,
    Transmission,
    uniform,
)
from repro.epihiper.interventions import IncidentEdges
from repro.epihiper.npi import make_sh, make_vhi
from repro.epihiper.states import FixedDwell, HealthState
from repro.epihiper.transmission import (
    FRONTIER_DENSE_CROSSOVER,
    frontier_workload,
    resolve_backend,
    transmission_step,
)

pytestmark = pytest.mark.fast


def make_model(tau=2.0):
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("I", infectivity=1.0),
        HealthState("R"),
    ]
    return DiseaseModel(
        "sir", states,
        [Progression("I", "R", uniform(1.0), FixedDwell(3))],
        [Transmission("S", "I", "I")],
        transmissibility=tau,
    )


def random_network(n_nodes, n_edges, rng):
    """Random canonical (source < target) edge list with durations/weights."""
    src = rng.integers(0, n_nodes - 1, size=n_edges, dtype=np.int64)
    tgt = rng.integers(1, n_nodes, size=n_edges, dtype=np.int64)
    lo = np.minimum(src, tgt)
    hi = np.maximum(src, tgt)
    bump = lo == hi  # avoid self-loops
    hi = np.where(bump, lo + 1, hi)
    dur = rng.integers(5, 1440, size=n_edges).astype(np.float64)
    w = rng.uniform(0.1, 2.0, size=n_edges)
    return lo, hi, dur, w


def random_health(n_nodes, prevalence, rng):
    health = np.zeros(n_nodes, dtype=np.int8)
    n_inf = int(round(prevalence * n_nodes))
    if n_inf:
        health[rng.choice(n_nodes, size=n_inf, replace=False)] = 1
    return health


def assert_events_identical(a, b):
    assert a.n_candidates == b.n_candidates
    for field in ("pids", "exposed_codes", "infectors"):
        x, y = getattr(a, field), getattr(b, field)
        assert x.dtype == y.dtype, field
        np.testing.assert_array_equal(x, y, err_msg=field)


def run_backend(backend, model, health, src, tgt, dur, w, active, inc,
                node_sus, node_inf, seed):
    return transmission_step(
        model, health, node_sus, node_inf, src, tgt, active, w, dur,
        np.random.default_rng(seed), backend=backend, incident=inc)


@pytest.mark.parametrize("n_nodes,n_edges", [(40, 120), (300, 1500),
                                             (1000, 8000)])
@pytest.mark.parametrize("prevalence", [0.0, 0.01, 0.1, 0.6])
@pytest.mark.parametrize("active_frac", [1.0, 0.7])
def test_frontier_matches_dense_bitwise(n_nodes, n_edges, prevalence,
                                        active_frac):
    for case_seed in (0, 1, 2):
        setup = np.random.default_rng((case_seed, n_nodes, int(100
                                                               * prevalence)))
        src, tgt, dur, w = random_network(n_nodes, n_edges, setup)
        health = random_health(n_nodes, prevalence, setup)
        active = setup.random(n_edges) < active_frac
        node_sus = setup.uniform(0.0, 1.5, n_nodes)
        node_inf = setup.uniform(0.0, 1.5, n_nodes)
        inc = IncidentEdges(src, tgt, n_nodes)
        model = make_model()

        args = (model, health, src, tgt, dur, w, active, inc,
                node_sus, node_inf, 7 + case_seed)
        dense = run_backend(TransmissionBackend.DENSE, *args)
        frontier = run_backend(TransmissionBackend.FRONTIER, *args)
        auto = run_backend(TransmissionBackend.AUTO, *args)
        assert_events_identical(dense, frontier)
        assert_events_identical(dense, auto)


def test_both_infectious_endpoints_edge_counted_once():
    # Edge (0, 1) with both endpoints infectious appears twice in the CSR
    # gather; the unique pass must not double-evaluate it.
    model = make_model(tau=50.0)
    src = np.array([0, 1], dtype=np.int64)
    tgt = np.array([1, 2], dtype=np.int64)
    dur = np.array([1440.0, 1440.0])
    w = np.ones(2)
    active = np.ones(2, bool)
    health = np.array([1, 1, 0], dtype=np.int8)
    inc = IncidentEdges(src, tgt, 3)
    ones = np.ones(3)
    dense = run_backend(TransmissionBackend.DENSE, model, health, src, tgt,
                        dur, w, active, inc, ones, ones, 5)
    frontier = run_backend(TransmissionBackend.FRONTIER, model, health, src,
                           tgt, dur, w, active, inc, ones, ones, 5)
    assert_events_identical(dense, frontier)
    assert dense.n_candidates == 1  # only 1 -> 2 is a candidate


def test_frontier_without_incident_raises():
    model = make_model()
    src = np.array([0], dtype=np.int64)
    tgt = np.array([1], dtype=np.int64)
    health = np.array([1, 0], dtype=np.int8)
    with pytest.raises(ValueError, match="IncidentEdges"):
        transmission_step(
            model, health, np.ones(2), np.ones(2), src, tgt,
            np.ones(1, bool), np.ones(1), np.array([60.0]),
            np.random.default_rng(0), backend="frontier")


def test_backend_coercion():
    assert TransmissionBackend.coerce("dense") is TransmissionBackend.DENSE
    assert TransmissionBackend.coerce("FRONTIER") is \
        TransmissionBackend.FRONTIER
    assert TransmissionBackend.coerce(
        TransmissionBackend.AUTO) is TransmissionBackend.AUTO
    with pytest.raises(ValueError, match="unknown transmission backend"):
        TransmissionBackend.coerce("sparse")


def test_auto_switches_backend_as_prevalence_grows():
    setup = np.random.default_rng(11)
    n_nodes, n_edges = 2000, 12000
    src, tgt, _dur, _w = random_network(n_nodes, n_edges, setup)
    inc = IncidentEdges(src, tgt, n_nodes)

    few = np.arange(5, dtype=np.int64)
    many = np.arange(n_nodes, dtype=np.int64)
    assert resolve_backend("auto", inc, few, n_edges) is \
        TransmissionBackend.FRONTIER
    assert resolve_backend("auto", inc, many, n_edges) is \
        TransmissionBackend.DENSE
    # The crossover sits exactly at the documented gathered-slot fraction.
    assert inc.degree_sum(few) <= FRONTIER_DENSE_CROSSOVER * n_edges
    assert inc.degree_sum(many) > FRONTIER_DENSE_CROSSOVER * n_edges
    # Fixed backends pass through; auto without a CSR degrades to dense.
    assert resolve_backend("frontier", inc, many, n_edges) is \
        TransmissionBackend.FRONTIER
    assert resolve_backend("auto", None, few, n_edges) is \
        TransmissionBackend.DENSE


def test_auto_workload_bound_is_conservative():
    """The popcount * max_degree shortcut never flips the auto decision.

    ``transmission_step`` resolves ``auto`` through an upper bound first —
    infectious count times the cached max degree — and only falls back to
    the exact degree-sum dot product past the crossover.  Whenever the
    bound clears the threshold the exact workload must too, so the
    shortcut always picks the backend the exact comparison would.
    """
    setup = np.random.default_rng(23)
    n_nodes, n_edges = 500, 3000
    src, tgt, _dur, _w = random_network(n_nodes, n_edges, setup)
    inc = IncidentEdges(src, tgt, n_nodes)
    assert inc.max_degree == float(inc.degrees.max())
    threshold = FRONTIER_DENSE_CROSSOVER * n_edges
    for prevalence in (0.0, 0.005, 0.05, 0.3, 0.8):
        mask = setup.random(n_nodes) < prevalence
        k = int(np.count_nonzero(mask))
        exact = float(inc.degree_sum(np.flatnonzero(mask)))
        # The dot-product estimator is exact, not approximate.
        assert exact == frontier_workload(mask, inc)
        if k * inc.max_degree <= threshold:
            assert exact <= threshold


def test_simulation_trajectories_identical_across_backends(vt_assets,
                                                           covid_model):
    """Whole-run equivalence on a real region, with suppressing NPIs."""
    pop, net = vt_assets
    results = {}
    for backend in ("dense", "frontier", "auto"):
        sim = Simulation(
            covid_model, pop, net, seed=99,
            interventions=[make_vhi(0.6), make_sh(0.5, start=5, end=25)],
            backend=backend)
        sim.seed_infections(uniform_seeds(pop, 10, sim.rng))
        results[backend] = sim.run(40)
    base = results["dense"]
    for backend in ("frontier", "auto"):
        other = results[backend]
        np.testing.assert_array_equal(base.state_counts, other.state_counts)
        np.testing.assert_array_equal(base.memory_series,
                                      other.memory_series)
        np.testing.assert_array_equal(base.log.pid, other.log.pid)
        np.testing.assert_array_equal(base.log.state, other.log.state)
        np.testing.assert_array_equal(base.log.infector, other.log.infector)
        assert base.counters["contacts_evaluated"] == \
            other.counters["contacts_evaluated"]
        assert base.counters["transmissions"] == \
            other.counters["transmissions"]


def test_incremental_accounting_matches_rescan(vt_assets, covid_model):
    """The O(1) memory-estimate terms equal a from-scratch recount."""
    pop, net = vt_assets
    sim = Simulation(covid_model, pop, net, seed=3,
                     interventions=[make_vhi(0.7)])
    sim.seed_infections(uniform_seeds(pop, 10, sim.rng))
    sim.run(30)
    assert sim.suppressor.n_suppressed == int(
        (sim.suppressor.count > 0).sum())
    assert sim.sched.n_pending == int((sim.sched.dwell > 0).sum())


def test_phase_timing_counters_populated(vt_assets, covid_model):
    pop, net = vt_assets
    sim = Simulation(covid_model, pop, net, seed=3)
    sim.seed_infections(uniform_seeds(pop, 10, sim.rng))
    result = sim.run(10)
    for key in ("interventions_s", "transmission_s", "progression_s"):
        assert result.counters[key] >= 0.0
    assert result.counters["transmission_s"] > 0.0
