"""Transmission-kernel (Eq. 1) tests."""

import numpy as np
import pytest

from repro.epihiper.disease import (
    DiseaseModel,
    Progression,
    Transmission,
    uniform,
)
from repro.epihiper.states import FixedDwell, HealthState
from repro.epihiper.transmission import transmission_step


def make_model(tau=1.0):
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("I", infectivity=1.0),
        HealthState("R"),
    ]
    return DiseaseModel(
        "sir", states,
        [Progression("I", "R", uniform(1.0), FixedDwell(3))],
        [Transmission("S", "I", "I")],
        transmissibility=tau,
    )


def star_network(n_leaves, duration_min=1440):
    """Node 0 is the hub; leaves 1..n."""
    src = np.zeros(n_leaves, dtype=np.int64)
    tgt = np.arange(1, n_leaves + 1, dtype=np.int64)
    return src, tgt, np.full(n_leaves, duration_min, np.float64)


def run_step(model, health, src, tgt, dur, seed=0, sus=None, inf=None,
             active=None, weight=None):
    n = health.shape[0]
    return transmission_step(
        model, health,
        sus if sus is not None else np.ones(n),
        inf if inf is not None else np.ones(n),
        src, tgt,
        active if active is not None else np.ones(src.shape[0], bool),
        weight if weight is not None else np.ones(src.shape[0]),
        dur,
        np.random.default_rng(seed),
    )


def test_no_infectious_no_events():
    model = make_model()
    src, tgt, dur = star_network(5)
    health = np.zeros(6, dtype=np.int8)  # everyone susceptible
    ev = run_step(model, health, src, tgt, dur)
    assert ev.pids.size == 0
    assert ev.n_candidates == 0


def test_hub_infects_leaves_with_full_contact():
    model = make_model(tau=50.0)  # overwhelming rate -> p ~ 1
    src, tgt, dur = star_network(50)
    health = np.zeros(51, dtype=np.int8)
    health[0] = 1  # hub infectious
    ev = run_step(model, health, src, tgt, dur)
    assert ev.pids.size == 50
    assert (ev.infectors == 0).all()
    assert (ev.exposed_codes == model.code("I")).all()


def test_zero_transmissibility_blocks_all():
    model = make_model(tau=0.0)
    src, tgt, dur = star_network(50)
    health = np.zeros(51, dtype=np.int8)
    health[0] = 1
    ev = run_step(model, health, src, tgt, dur)
    assert ev.pids.size == 0
    assert ev.n_candidates == 50


def test_inactive_edges_do_not_transmit():
    model = make_model(tau=50.0)
    src, tgt, dur = star_network(20)
    health = np.zeros(21, dtype=np.int8)
    health[0] = 1
    active = np.zeros(20, dtype=bool)
    active[:5] = True
    ev = run_step(model, health, src, tgt, dur, active=active)
    assert set(ev.pids.tolist()) <= set(range(1, 6))


def test_node_susceptibility_scaling():
    model = make_model(tau=50.0)
    src, tgt, dur = star_network(30)
    health = np.zeros(31, dtype=np.int8)
    health[0] = 1
    sus = np.ones(31)
    sus[1:16] = 0.0  # first 15 leaves immune via trait
    ev = run_step(model, health, src, tgt, dur, sus=sus)
    assert set(ev.pids.tolist()) <= set(range(16, 31))
    assert ev.pids.size == 15


def test_infection_probability_monotone_in_duration():
    model = make_model(tau=1.0)
    n = 2000
    rates = []
    for dur_min in (60.0, 720.0, 1440.0):
        src, tgt, dur = star_network(n, duration_min=dur_min)
        # Many independent hubs: pair i -> (2i, 2i+1) instead of a star so
        # each contact is independent.
        src = np.arange(0, 2 * n, 2, dtype=np.int64)
        tgt = np.arange(1, 2 * n, 2, dtype=np.int64)
        health = np.zeros(2 * n, dtype=np.int8)
        health[src] = 1
        ev = run_step(model, health, src, tgt,
                      np.full(n, dur_min, np.float64), seed=3)
        rates.append(ev.pids.size / n)
    assert rates[0] < rates[1] < rates[2]


def test_both_edge_directions_work():
    model = make_model(tau=50.0)
    # Edge (0, 1) with 1 infectious: transmission must flow 1 -> 0.
    src = np.array([0], dtype=np.int64)
    tgt = np.array([1], dtype=np.int64)
    health = np.zeros(2, dtype=np.int8)
    health[1] = 1
    ev = run_step(model, health, src, tgt, np.array([1440.0]))
    assert ev.pids.tolist() == [0]
    assert ev.infectors.tolist() == [1]


def test_duplicate_exposures_deduplicated():
    model = make_model(tau=50.0)
    # Node 2 touched by two infectious nodes 0 and 1.
    src = np.array([0, 1], dtype=np.int64)
    tgt = np.array([2, 2], dtype=np.int64)
    health = np.array([1, 1, 0], dtype=np.int8)
    ev = run_step(model, health, src, tgt, np.array([1440.0, 1440.0]))
    assert ev.pids.tolist() == [2]
    assert ev.infectors[0] in (0, 1)


def test_attribution_roughly_uniform():
    model = make_model(tau=50.0)
    src = np.array([0, 1], dtype=np.int64)
    tgt = np.array([2, 2], dtype=np.int64)
    health = np.array([1, 1, 0], dtype=np.int8)
    hits = []
    for seed in range(300):
        ev = run_step(model, health, src, tgt,
                      np.array([1440.0, 1440.0]), seed=seed)
        hits.append(int(ev.infectors[0]))
    frac0 = hits.count(0) / len(hits)
    assert 0.35 < frac0 < 0.65
