"""DiseaseModel structural validation tests."""

import numpy as np
import pytest

from repro.epihiper.disease import (
    DiseaseModel,
    DiseaseModelError,
    Progression,
    Transmission,
    uniform,
)
from repro.epihiper.states import FixedDwell, HealthState


def tiny_sir():
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("I", infectivity=1.0, symptomatic=True),
        HealthState("R"),
    ]
    progressions = [Progression("I", "R", uniform(1.0), FixedDwell(5))]
    transmissions = [Transmission("S", "I", "I")]
    return DiseaseModel("sir", states, progressions, transmissions, 0.3)


def test_valid_model_builds():
    m = tiny_sir()
    assert m.n_states == 3
    assert m.code("S") == 0
    assert m.terminal_states() == ["S", "R"]


def test_state_masks():
    m = tiny_sir()
    np.testing.assert_array_equal(m.is_susceptible, [True, False, False])
    np.testing.assert_array_equal(m.is_infectious, [False, True, False])
    np.testing.assert_array_equal(m.is_symptomatic, [False, True, False])


def test_exposure_map():
    m = tiny_sir()
    assert m.exposed_of[m.code("S")] == m.code("I")
    assert m.omega[m.code("S"), m.code("I")] == 1.0


def test_rejects_duplicate_states():
    states = [HealthState("S", susceptibility=1.0), HealthState("S")]
    with pytest.raises(DiseaseModelError, match="duplicate"):
        DiseaseModel("bad", states, [], [])


def test_rejects_unknown_state_in_progression():
    states = [HealthState("S", susceptibility=1.0)]
    bad = [Progression("S", "X", uniform(1.0), FixedDwell(1))]
    with pytest.raises(DiseaseModelError, match="unknown state"):
        DiseaseModel("bad", states, bad, [])


def test_rejects_probabilities_not_summing_to_one():
    states = [
        HealthState("A", susceptibility=1.0),
        HealthState("B"),
        HealthState("C"),
    ]
    bad = [
        Progression("A", "B", uniform(0.5), FixedDwell(1)),
        Progression("A", "C", uniform(0.4), FixedDwell(1)),
    ]
    with pytest.raises(DiseaseModelError, match="sum"):
        DiseaseModel("bad", states, bad, [])


def test_rejects_transmission_from_non_susceptible():
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("I", infectivity=1.0),
        HealthState("R"),
    ]
    with pytest.raises(DiseaseModelError, match="zero susceptibility"):
        DiseaseModel("bad", states, [], [Transmission("R", "I", "I")])


def test_rejects_transmission_from_non_infectious():
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("R"),
    ]
    with pytest.raises(DiseaseModelError, match="zero infectivity"):
        DiseaseModel("bad", states, [], [Transmission("S", "R", "R")])


def test_progression_needs_all_age_groups():
    with pytest.raises(ValueError, match="probabilities"):
        Progression("A", "B", (0.5, 0.5), FixedDwell(1))


def test_progression_rejects_out_of_range():
    with pytest.raises(ValueError, match="out of range"):
        Progression("A", "B", (1.5,) * 5, FixedDwell(1))


def test_expected_path_lengths():
    m = tiny_sir()
    lengths = m.expected_path_lengths()
    assert lengths["R"] == 0.0
    assert lengths["S"] == 0.0  # no outgoing progression from S
    assert lengths["I"] == pytest.approx(5.0)
