"""Simulated-MPI execution-profile tests (strong scaling shapes)."""

import numpy as np
import pytest

from repro.epihiper import (
    partition_threshold,
    simulate_rank_execution,
    strong_scaling_curve,
)
from repro.epihiper.ranks import optimal_rank_count


def test_serial_profile_has_no_comm(va_run):
    _pop, net, result = va_run
    prof = simulate_rank_execution(result, net, partition_threshold(net, 1))
    assert prof.comm_time == 0.0
    assert prof.cut_edges == 0
    assert prof.n_ranks == 1


def test_compute_time_decreases_with_ranks(va_run):
    _pop, net, result = va_run
    profs = strong_scaling_curve(result, net, [1, 2, 4, 8])
    computes = [p.compute_time for p in profs]
    assert computes == sorted(computes, reverse=True)


def test_comm_time_increases_with_ranks(va_run):
    _pop, net, result = va_run
    profs = strong_scaling_curve(result, net, [2, 4, 8, 16])
    comms = [p.comm_time for p in profs]
    assert comms == sorted(comms)


def test_speedup_then_slowdown(va_run):
    """The Figure 7 (middle) shape: improvement, then diminishing returns,
    eventually slower than some earlier point."""
    _pop, net, result = va_run
    profs = strong_scaling_curve(result, net, [1, 2, 4, 8, 16, 64, 256, 1024])
    base = profs[0]
    speedups = [p.speedup_over(base) for p in profs]
    assert speedups[1] > 1.2  # 2 ranks help
    assert max(speedups) > 3.0
    # Well past the optimum, adding ranks hurts.
    assert speedups[-1] < max(speedups) * 0.8


def test_larger_networks_turn_over_later(va_assets, vt_assets, covid_model):
    from repro.epihiper import Simulation, uniform_seeds

    opts = {}
    for name, assets in (("VT", vt_assets), ("VA", va_assets)):
        pop, net = assets
        sim = Simulation(covid_model, pop, net, seed=3)
        sim.seed_infections(uniform_seeds(pop, 10, sim.rng))
        result = sim.run(60)
        opts[name] = optimal_rank_count(result, net, max_ranks=512)
    assert opts["VA"] >= opts["VT"]


def test_halo_bytes_scale_with_cut(va_run):
    _pop, net, result = va_run
    p2 = simulate_rank_execution(result, net, partition_threshold(net, 2))
    p16 = simulate_rank_execution(result, net, partition_threshold(net, 16))
    assert p16.cut_edges >= p2.cut_edges
    assert p16.halo_bytes >= p2.halo_bytes


def test_efficiency_below_one(va_run):
    _pop, net, result = va_run
    base = simulate_rank_execution(result, net, partition_threshold(net, 1))
    p8 = simulate_rank_execution(result, net, partition_threshold(net, 8))
    assert 0.0 < p8.efficiency_over(base) <= 1.0


def test_partition_mismatch_rejected(va_run, vt_assets):
    _pop, net, result = va_run
    _vpop, vnet = vt_assets
    bad = partition_threshold(vnet, 4)
    with pytest.raises(ValueError, match="match"):
        simulate_rank_execution(result, net, bad)


def test_per_rank_edges_match_partition(va_run):
    _pop, net, result = va_run
    part = partition_threshold(net, 8)
    prof = simulate_rank_execution(result, net, part)
    np.testing.assert_array_equal(prof.per_rank_edges, part.edge_counts())
