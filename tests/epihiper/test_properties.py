"""Property-based tests of the simulation engine on random inputs.

Hypothesis generates small random populations and contact networks; the
engine's core invariants must hold for all of them: population
conservation, monotone absorbing states, dendograms partitioning the
infected set, and determinism in the seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.epihiper import Simulation, build_covid_model
from repro.epihiper.output import dendogram_sizes
from repro.synthpop.contacts import ContactNetwork
from repro.synthpop.persons import Population

MODEL = build_covid_model(transmissibility=0.5)


def random_population(n, rng) -> Population:
    ages = rng.integers(0, 95, n).astype(np.int16)
    groups = np.digitize(ages, [5, 18, 50, 65]).astype(np.int8)
    hid = np.sort(rng.integers(0, max(1, n // 3), n)).astype(np.int64)
    return Population(
        region_code="XX",
        pid=np.arange(n, dtype=np.int64),
        hid=hid,
        age=ages,
        age_group=groups,
        gender=rng.integers(0, 2, n).astype(np.int8),
        county=np.full(n, 1001, dtype=np.int32),
        home_lat=np.zeros(n, dtype=np.float32),
        home_lon=np.zeros(n, dtype=np.float32),
    )


def random_network(n, m, rng) -> ContactNetwork:
    src = rng.integers(0, n - 1, m)
    tgt = rng.integers(src + 1, n)
    return ContactNetwork(
        region_code="XX",
        n_nodes=n,
        source=src.astype(np.int64),
        target=tgt.astype(np.int64),
        start=np.zeros(m, np.int32),
        duration=rng.integers(30, 600, m).astype(np.int32),
        source_activity=rng.integers(0, 7, m).astype(np.int8),
        target_activity=rng.integers(0, 7, m).astype(np.int8),
        weight=np.ones(m, np.float32),
    )


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(5, 120),
    edge_factor=st.integers(1, 5),
    n_seeds=st.integers(1, 5),
    days=st.integers(1, 40),
    seed=st.integers(0, 2**31),
)
def test_property_engine_invariants(n, edge_factor, n_seeds, days, seed):
    rng = np.random.default_rng(seed)
    pop = random_population(n, rng)
    net = random_network(n, n * edge_factor, rng)
    sim = Simulation(MODEL, pop, net, seed=seed)
    seeds = rng.choice(n, size=min(n_seeds, n), replace=False)
    sim.seed_infections(seeds)
    result = sim.run(days)

    # 1. Conservation: the census sums to the population every tick.
    assert (result.state_counts.sum(axis=1) == n).all()

    # 2. Absorbing states never shrink.
    for name in ("Recovered", "Death"):
        series = result.state_counts[:, MODEL.code(name)]
        assert (np.diff(series) >= 0).all()

    # 3. Dendograms partition the ever-exposed set.
    exposed = MODEL.code("Exposed")
    sizes = dendogram_sizes(result.log, exposed)
    ever = np.unique(result.log.pid[result.log.state == exposed]).size
    assert sum(sizes.values()) == ever

    # 4. Every transmission's infector was infectious-capable (it appears
    # in the log before its victim, or is a seed).
    rows = result.log.transmissions()
    logged = set(result.log.pid.tolist())
    for infector in result.log.infector[rows]:
        assert int(infector) in logged

    # 5. Ticks are within range and non-negative.
    if result.log.size:
        assert result.log.tick.min() >= 0
        assert result.log.tick.max() <= days


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(10, 80),
    seed=st.integers(0, 2**31),
)
def test_property_determinism(n, seed):
    rng = np.random.default_rng(seed)
    pop = random_population(n, rng)
    net = random_network(n, n * 3, rng)
    outs = []
    for _ in range(2):
        sim = Simulation(MODEL, pop, net, seed=seed)
        sim.seed_infections(np.arange(min(3, n)))
        outs.append(sim.run(20))
    np.testing.assert_array_equal(outs[0].state_counts,
                                  outs[1].state_counts)
    np.testing.assert_array_equal(outs[0].log.pid, outs[1].log.pid)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_property_isolation_blocks_all_transmission(seed):
    """With every edge suppressed, seeds progress but nobody new is
    infected."""
    rng = np.random.default_rng(seed)
    pop = random_population(40, rng)
    net = random_network(40, 120, rng)
    sim = Simulation(MODEL, pop, net, seed=seed)
    sim.suppressor.suppress(np.arange(net.n_edges, dtype=np.int64))
    sim.seed_infections(np.array([0, 1]))
    result = sim.run(30)
    assert result.counters["transmissions"] == 0
    exposed_ever = np.unique(
        result.log.pid[result.log.state == MODEL.code("Exposed")])
    assert exposed_ever.size == 2
