"""Edge-partitioning tests (the paper's threshold algorithm + baselines)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.epihiper.partition import (
    partition_cached,
    partition_degree_greedy,
    partition_round_robin,
    partition_threshold,
)
from repro.synthpop.contacts import ContactNetwork


def random_network(n_nodes, n_edges, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_nodes - 1, n_edges)
    tgt = rng.integers(src + 1, n_nodes)
    return ContactNetwork(
        region_code="XX",
        n_nodes=n_nodes,
        source=src.astype(np.int64),
        target=tgt.astype(np.int64),
        start=np.zeros(n_edges, np.int32),
        duration=np.full(n_edges, 60, np.int32),
        source_activity=np.zeros(n_edges, np.int8),
        target_activity=np.zeros(n_edges, np.int8),
        weight=np.ones(n_edges, np.float32),
    )


def test_incoming_edge_invariant(va_assets):
    """All incoming edges of a node land on the node's owner rank."""
    _pop, net = va_assets
    part = partition_threshold(net, 8)
    np.testing.assert_array_equal(
        part.edge_owner, part.node_owner[net.target])


def test_single_partition(va_assets):
    _pop, net = va_assets
    part = partition_threshold(net, 1)
    assert (part.node_owner == 0).all()
    assert part.cut_edges(net) == 0
    assert part.imbalance() == 1.0


def test_balance_reasonable(va_assets):
    _pop, net = va_assets
    part = partition_threshold(net, 16)
    assert part.imbalance() < 1.5
    assert part.edge_counts().sum() == net.n_edges


def test_all_parts_used(va_assets):
    _pop, net = va_assets
    part = partition_threshold(net, 8)
    assert np.unique(part.node_owner).size == 8


def test_invalid_part_count(va_assets):
    _pop, net = va_assets
    with pytest.raises(ValueError):
        partition_threshold(net, 0)
    with pytest.raises(ValueError):
        partition_round_robin(net, -1)


def test_round_robin_node_balance(va_assets):
    _pop, net = va_assets
    part = partition_round_robin(net, 7)
    counts = np.bincount(part.node_owner)
    assert counts.max() - counts.min() <= 1


def test_degree_greedy_balances_better_than_round_robin():
    net = random_network(500, 5000, seed=3)
    rr = partition_round_robin(net, 8)
    greedy = partition_degree_greedy(net, 8)
    assert greedy.imbalance() <= rr.imbalance() + 0.05


def test_threshold_respects_epsilon(va_assets):
    """Larger epsilon lets partitions grow beyond the even share."""
    _pop, net = va_assets
    tight = partition_threshold(net, 8, epsilon=0.0)
    loose = partition_threshold(net, 8, epsilon=net.n_edges / 4)
    # The loose version front-loads early partitions.
    assert loose.edge_counts()[0] >= tight.edge_counts()[0]


@settings(max_examples=20, deadline=None)
@given(
    n_nodes=st.integers(10, 200),
    p=st.integers(1, 9),
    seed=st.integers(0, 2**31),
)
def test_property_partition_is_total_and_consistent(n_nodes, p, seed):
    net = random_network(n_nodes, n_nodes * 4, seed)
    part = partition_threshold(net, p)
    assert part.node_owner.shape == (n_nodes,)
    assert part.node_owner.min() >= 0
    assert part.node_owner.max() <= p - 1
    assert part.edge_counts().sum() == net.n_edges
    np.testing.assert_array_equal(
        part.edge_owner, part.node_owner[net.target])


def test_cache_roundtrip(tmp_path, va_assets):
    _pop, net = va_assets
    part1, hit1 = partition_cached(net, 8, tmp_path)
    assert not hit1
    part2, hit2 = partition_cached(net, 8, tmp_path)
    assert hit2
    np.testing.assert_array_equal(part1.node_owner, part2.node_owner)


def test_cache_distinguishes_part_counts(tmp_path, va_assets):
    _pop, net = va_assets
    _p8, _ = partition_cached(net, 8, tmp_path)
    p4, hit = partition_cached(net, 4, tmp_path)
    assert not hit
    assert p4.n_parts == 4
