"""Disease-model JSON round-trip tests."""

import numpy as np
import pytest

from repro.epihiper.covid import build_covid_model
from repro.epihiper.modelio import (
    model_from_dict,
    model_to_dict,
    read_model_json,
    write_model_json,
)
from repro.epihiper.states import DiscreteDwell, FixedDwell, NormalDwell


def test_covid_model_roundtrip(covid_model):
    back = model_from_dict(model_to_dict(covid_model))
    assert back.name == covid_model.name
    assert back.transmissibility == covid_model.transmissibility
    assert [s.name for s in back.states] == [
        s.name for s in covid_model.states]
    np.testing.assert_array_equal(back.infectivity,
                                  covid_model.infectivity)
    np.testing.assert_array_equal(back.omega, covid_model.omega)
    assert len(back.progressions) == len(covid_model.progressions)


def test_dwell_types_roundtrip(covid_model):
    back = model_from_dict(model_to_dict(covid_model))
    kinds_orig = [p.dwell.kind for p in covid_model.progressions]
    kinds_back = [p.dwell.kind for p in back.progressions]
    assert kinds_orig == kinds_back
    assert {"fixed", "normal", "discrete"} <= set(kinds_back)
    for p_orig, p_back in zip(covid_model.progressions, back.progressions):
        assert p_orig.dwell.mean() == pytest.approx(p_back.dwell.mean())


def test_file_roundtrip(tmp_path, covid_model):
    path = tmp_path / "covid.json"
    write_model_json(covid_model, path)
    back = read_model_json(path)
    assert back.n_states == covid_model.n_states
    # Simulation-relevant semantics survive: expected path lengths match.
    orig = covid_model.expected_path_lengths()
    got = back.expected_path_lengths()
    for name, val in orig.items():
        assert got[name] == pytest.approx(val)


def test_roundtrip_preserves_dynamics(va_assets, covid_model):
    """A simulation driven by the deserialised model is bit-identical."""
    from repro.epihiper import Simulation, uniform_seeds

    back = model_from_dict(model_to_dict(covid_model))
    results = []
    for model in (covid_model, back):
        pop, net = va_assets
        sim = Simulation(model, pop, net, seed=77)
        sim.seed_infections(uniform_seeds(pop, 10, sim.rng))
        results.append(sim.run(30))
    np.testing.assert_array_equal(results[0].state_counts,
                                  results[1].state_counts)


def test_rejects_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        model_from_dict({"schema": 999})


def test_rejects_unknown_dwell():
    from repro.epihiper.modelio import _dwell_from_json

    with pytest.raises(ValueError, match="dwell kind"):
        _dwell_from_json({"kind": "weibull"})


def test_deserialised_model_validates():
    """Corrupt probabilities are caught by the DiseaseModel validator."""
    data = model_to_dict(build_covid_model())
    data["progressions"][0]["probability"] = [0.9] * 5  # breaks sum-to-1
    with pytest.raises(Exception):
        model_from_dict(data)
