"""Named NPI behaviour tests (VHI, SC, SH, RO, TA, PS, D1CT/D2CT)."""

import numpy as np
import pytest

from repro.epihiper import Simulation, build_covid_model, uniform_seeds
from repro.epihiper.npi import (
    make_d1ct,
    make_d2ct,
    make_ps,
    make_ro,
    make_sc,
    make_sh,
    make_ta,
    make_vhi,
    scenario_interventions,
)
from repro.synthpop.activities import COLLEGE, SCHOOL


def run_sim(assets, model, interventions, days=60, seed=5, n_seeds=20):
    pop, net = assets
    sim = Simulation(model, pop, net, seed=seed,
                     interventions=interventions)
    sim.seed_infections(uniform_seeds(pop, n_seeds, sim.rng))
    return sim, sim.run(days)


def test_sc_disables_school_edges(va_assets, covid_model):
    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=1,
                     interventions=[make_sc(start=0)])
    sim.step()
    active = sim.active_edges()
    school = (np.isin(net.source_activity, (SCHOOL, COLLEGE))
              | np.isin(net.target_activity, (SCHOOL, COLLEGE)))
    assert not active[school].any()
    assert active[~school].all()


def test_sc_reopens_at_end(va_assets, covid_model):
    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=1,
                     interventions=[make_sc(start=0, end=3)])
    for _ in range(5):
        sim.step()
    assert sim.active_edges().all()


def test_sh_reduces_attack_rate(va_assets, covid_model):
    _sim, baseline = run_sim(va_assets, covid_model, [], days=80)
    _sim2, locked = run_sim(
        va_assets, covid_model, [make_sh(0.9, start=5)], days=80)
    assert locked.attack_rate(covid_model) < baseline.attack_rate(covid_model)


def test_sh_zero_compliance_is_noop(va_assets, covid_model):
    _s1, a = run_sim(va_assets, covid_model, [], days=40)
    _s2, b = run_sim(va_assets, covid_model, [make_sh(0.0, start=5)],
                     days=40)
    assert a.attack_rate(covid_model) == b.attack_rate(covid_model)


def test_sh_ends_and_releases(va_assets, covid_model):
    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=1,
                     interventions=[make_sh(1.0, start=0, end=3)])
    sim.step()
    assert not sim.active_edges().all()
    for _ in range(4):
        sim.step()
    assert sim.active_edges().all()


def test_vhi_isolates_symptomatic(va_assets, covid_model):
    sim, result = run_sim(va_assets, covid_model, [make_vhi(1.0)], days=60)
    # Some edges must have been suppressed at some point.
    assert sim.suppressor.total_operations > 0


def test_ro_validates_level():
    with pytest.raises(ValueError):
        make_ro(1.3, start=10)


def test_ro_keeps_fraction_closed(va_assets, covid_model):
    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=1,
                     interventions=[make_ro(0.5, start=0)])
    sim.step()
    active = sim.active_edges()
    closed_frac = 1.0 - active.mean()
    assert 0.1 < closed_frac < 0.6


def test_ps_pulses(va_assets, covid_model):
    pop, net = va_assets
    sim = Simulation(
        covid_model, pop, net, seed=1,
        interventions=[make_ps(1.0, start=0, days_on=2, days_off=2)])
    fractions = []
    for _ in range(8):
        sim.step()
        fractions.append(sim.active_edges().mean())
    arr = np.asarray(fractions)
    assert arr.min() < 0.9  # lockdown phases
    assert arr.max() == 1.0  # open phases


def test_contact_tracing_distance_validation():
    with pytest.raises(ValueError):
        from repro.epihiper.npi import make_contact_tracing
        make_contact_tracing(3, 0.5, 0.5)


def test_d2ct_touches_more_edges_than_d1ct(va_assets, covid_model):
    sim1, _ = run_sim(va_assets, covid_model, [make_d1ct(1.0, 1.0)],
                      days=50, n_seeds=30)
    sim2, _ = run_sim(va_assets, covid_model, [make_d2ct(1.0, 1.0)],
                      days=50, n_seeds=30)
    assert (sim2.counters["intervention_edge_ops"]
            > sim1.counters["intervention_edge_ops"])


def test_scenario_presets_exist(va_assets, covid_model):
    for name in ("base", "RO", "TA", "PS", "D1CT", "D2CT"):
        ivs = scenario_interventions(name)
        assert len(ivs) >= 3  # base stack always present
    with pytest.raises(KeyError):
        scenario_interventions("nope")


def test_combined_stack_runs(va_assets, covid_model):
    _sim, result = run_sim(
        va_assets, covid_model, scenario_interventions("D1CT"), days=60)
    totals = result.state_counts.sum(axis=1)
    assert (totals == va_assets[0].size).all()  # conservation under NPIs


def test_ta_isolates_asymptomatic(va_assets, covid_model):
    sim, _ = run_sim(va_assets, covid_model, [make_ta(1.0)], days=60,
                     n_seeds=40)
    assert sim.counters["intervention_edge_ops"] > 0


def test_vaccination_protects(va_assets, covid_model):
    from repro.epihiper.npi import make_vaccination

    _s1, baseline = run_sim(va_assets, covid_model, [], days=60, n_seeds=30)
    _s2, vaxed = run_sim(
        va_assets, covid_model,
        [make_vaccination(0.8, 0.9, day=0)], days=60, n_seeds=30)
    assert vaxed.attack_rate(covid_model) < baseline.attack_rate(covid_model)


def test_vaccination_failures_enter_rx_state(va_assets, covid_model):
    from repro.epihiper.npi import make_vaccination

    pop, net = va_assets
    from repro.epihiper import Simulation
    sim = Simulation(covid_model, pop, net, seed=2,
                     interventions=[make_vaccination(1.0, 0.7, day=0)])
    sim.step()
    counts = sim.current_state_counts()
    rx = counts[covid_model.code("RX_Failure")]
    # ~30% of the population lands in RX_Failure.
    assert 0.2 * pop.size < rx < 0.4 * pop.size
    # Successes have zero susceptibility.
    protected = (sim.node_susceptibility == 0).sum()
    assert 0.6 * pop.size < protected < 0.8 * pop.size
    assert sim.variables["vaccinated"] == pytest.approx(pop.size)


def test_vaccination_rx_failures_still_susceptible(va_assets, covid_model):
    from repro.epihiper.npi import make_vaccination

    # With 0% efficacy everyone fails into RX_Failure, which transmits
    # exactly like Susceptible (Table IV) - the epidemic still happens.
    _sim, result = run_sim(
        va_assets, covid_model,
        [make_vaccination(1.0, 0.0, day=0)], days=60, n_seeds=30)
    assert result.counters["transmissions"] > 0


def test_vaccination_age_targeting(va_assets, covid_model):
    from repro.epihiper import Simulation
    from repro.epihiper.npi import make_vaccination

    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=3,
                     interventions=[make_vaccination(1.0, 1.0, day=0,
                                                     min_age=65)])
    sim.step()
    protected = sim.node_susceptibility == 0
    assert protected[pop.age >= 65].all()
    assert not protected[pop.age < 65].any()


def test_vaccination_validates_efficacy():
    from repro.epihiper.npi import make_vaccination

    with pytest.raises(ValueError):
        make_vaccination(0.5, 1.5)


def test_masking_scales_weights(va_assets, covid_model):
    from repro.epihiper import Simulation
    from repro.epihiper.npi import make_masking

    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=4,
                     interventions=[make_masking(1.0, weight_factor=0.4,
                                                 start=0)])
    before = sim.edge_weight.copy()
    sim.step()
    home = sim.home_edge_mask()
    assert np.allclose(sim.edge_weight[~home], before[~home] * 0.4)
    assert np.allclose(sim.edge_weight[home], before[home])


def test_masking_restores_at_end(va_assets, covid_model):
    from repro.epihiper import Simulation
    from repro.epihiper.npi import make_masking

    pop, net = va_assets
    sim = Simulation(covid_model, pop, net, seed=4,
                     interventions=[make_masking(1.0, start=0, end=3)])
    before = sim.edge_weight.copy()
    for _ in range(5):
        sim.step()
    np.testing.assert_allclose(sim.edge_weight, before)


def test_masking_reduces_attack(va_assets, covid_model):
    from repro.epihiper.npi import make_masking

    _s1, base = run_sim(va_assets, covid_model, [], days=70, n_seeds=30)
    _s2, masked = run_sim(
        va_assets, covid_model,
        [make_masking(0.9, weight_factor=0.2, start=0)],
        days=70, n_seeds=30)
    assert masked.attack_rate(covid_model) < base.attack_rate(covid_model)


def test_masking_validates_factor():
    from repro.epihiper.npi import make_masking

    with pytest.raises(ValueError):
        make_masking(0.5, weight_factor=-0.1)
