"""Progression scheduling tests."""

import numpy as np
import pytest

from repro.epihiper.disease import (
    DiseaseModel,
    Progression,
    Transmission,
    uniform,
)
from repro.epihiper.progression import (
    ProgressionState,
    progression_step,
    schedule_entries,
)
from repro.epihiper.states import FixedDwell, HealthState


@pytest.fixture()
def chain_model():
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("A", infectivity=1.0),
        HealthState("B"),
        HealthState("C"),
    ]
    progressions = [
        Progression("A", "B", uniform(0.3), FixedDwell(2)),
        Progression("A", "C", uniform(0.7), FixedDwell(4)),
        Progression("B", "C", uniform(1.0), FixedDwell(1)),
    ]
    return DiseaseModel("chain", states, progressions,
                        [Transmission("S", "A", "A")])


def test_terminal_entry_clears_schedule(chain_model):
    sched = ProgressionState.empty(4)
    sched.dwell[:] = 5
    sched.next_state[:] = 1
    pids = np.array([0, 1])
    codes = np.full(2, chain_model.code("C"), dtype=np.int8)
    ages = np.zeros(4, dtype=np.int8)
    schedule_entries(chain_model, sched, pids, codes, ages,
                     np.random.default_rng(0))
    assert (sched.dwell[[0, 1]] == 0).all()
    assert (sched.next_state[[0, 1]] == -1).all()


def test_branching_respects_probabilities(chain_model):
    n = 30_000
    sched = ProgressionState.empty(n)
    pids = np.arange(n)
    codes = np.full(n, chain_model.code("A"), dtype=np.int8)
    ages = np.zeros(n, dtype=np.int8)
    schedule_entries(chain_model, sched, pids, codes, ages,
                     np.random.default_rng(1))
    to_b = (sched.next_state == chain_model.code("B")).mean()
    assert abs(to_b - 0.3) < 0.01
    # Dwell follows the chosen edge's distribution.
    b_mask = sched.next_state == chain_model.code("B")
    assert (sched.dwell[b_mask] == 2).all()
    assert (sched.dwell[~b_mask] == 4).all()


def test_progression_fires_after_dwell(chain_model):
    sched = ProgressionState.empty(3)
    pids = np.array([0])
    codes = np.full(1, chain_model.code("B"), dtype=np.int8)
    ages = np.zeros(3, dtype=np.int8)
    schedule_entries(chain_model, sched, pids, codes, ages,
                     np.random.default_rng(2))
    assert sched.dwell[0] == 1
    fired, dest = progression_step(sched)
    assert fired.tolist() == [0]
    assert dest.tolist() == [chain_model.code("C")]
    # Nothing left scheduled.
    fired2, _ = progression_step(sched)
    assert fired2.size == 0


def test_multi_tick_countdown(chain_model):
    sched = ProgressionState.empty(1)
    sched.dwell[0] = 3
    sched.next_state[0] = 2
    for _ in range(2):
        fired, _ = progression_step(sched)
        assert fired.size == 0
    fired, dest = progression_step(sched)
    assert fired.tolist() == [0]
    assert dest.tolist() == [2]


def test_empty_entries_noop(chain_model):
    sched = ProgressionState.empty(5)
    schedule_entries(chain_model, sched, np.empty(0, np.int64),
                     np.empty(0, np.int8), np.zeros(5, np.int8),
                     np.random.default_rng(0))
    assert (sched.dwell == 0).all()


def test_age_stratified_branching():
    """Different age groups can take different branches."""
    states = [
        HealthState("S", susceptibility=1.0),
        HealthState("I", infectivity=1.0),
        HealthState("Mild"),
        HealthState("Severe"),
    ]
    progressions = [
        Progression("I", "Mild", (1.0, 1.0, 1.0, 0.0, 0.0), FixedDwell(1)),
        Progression("I", "Severe", (0.0, 0.0, 0.0, 1.0, 1.0), FixedDwell(1)),
    ]
    model = DiseaseModel("aged", states, progressions,
                         [Transmission("S", "I", "I")])
    n = 100
    sched = ProgressionState.empty(n)
    ages = np.zeros(n, dtype=np.int8)
    ages[50:] = 4  # 65+
    schedule_entries(model, sched, np.arange(n),
                     np.full(n, model.code("I"), np.int8), ages,
                     np.random.default_rng(3))
    assert (sched.next_state[:50] == model.code("Mild")).all()
    assert (sched.next_state[50:] == model.code("Severe")).all()
