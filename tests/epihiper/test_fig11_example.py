"""Figure 11: the paper's worked 5-person propagation example.

"The small network represents daily contacts between five people in a
workplace or a school classroom ...  Infections start from A, which in one
scenario infects B and E, in another scenario infects B only ...  while C
decides to get vaccinated and avoids being infected."

We rebuild that 5-node network and verify the framework exhibits each of
the paper's three trajectory ingredients: stochastic spread variation
across seeds, isolation cutting a chain, and vaccination protecting a node.
"""

import numpy as np
import pytest

from repro.epihiper import Simulation, build_covid_model
from repro.epihiper.npi import make_vaccination
from repro.synthpop.contacts import ContactNetwork
from repro.synthpop.persons import Population

A, B, C, D, E = range(5)


def five_person_population() -> Population:
    n = 5
    return Population(
        region_code="XX",
        pid=np.arange(n, dtype=np.int64),
        hid=np.arange(n, dtype=np.int64),
        age=np.full(n, 30, dtype=np.int16),
        age_group=np.full(n, 2, dtype=np.int8),
        gender=np.zeros(n, dtype=np.int8),
        county=np.full(n, 1001, dtype=np.int32),
        home_lat=np.zeros(n, dtype=np.float32),
        home_lon=np.zeros(n, dtype=np.float32),
    )


def classroom_network() -> ContactNetwork:
    # The Figure 11 contact pattern: A-B, A-E, B-D, B-E, C-D.
    pairs = [(A, B), (A, E), (B, D), (B, E), (C, D)]
    src = np.asarray([p[0] for p in pairs], dtype=np.int64)
    tgt = np.asarray([p[1] for p in pairs], dtype=np.int64)
    m = len(pairs)
    return ContactNetwork(
        region_code="XX",
        n_nodes=5,
        source=src,
        target=tgt,
        start=np.full(m, 9 * 60, np.int32),
        duration=np.full(m, 8 * 60, np.int32),  # long contact: work day
        source_activity=np.ones(m, np.int8),  # work context
        target_activity=np.ones(m, np.int8),
        weight=np.ones(m, np.float32),
    )


@pytest.fixture()
def model():
    return build_covid_model(transmissibility=2.0)  # small-net dynamics


def run_from_a(model, interventions=None, seed=0, days=40):
    sim = Simulation(model, five_person_population(), classroom_network(),
                     seed=seed, interventions=interventions or [])
    sim.seed_infections(np.array([A]))
    return sim.run(days)


def infected_set(result, model):
    exposed = model.code("Exposed")
    return set(result.log.pid[result.log.state == exposed].tolist())


def test_trajectories_vary_across_seeds(model):
    """The three Figure 11 trajectories: different random seeds give
    different outbreak sets from the same initial condition."""
    outcomes = {frozenset(infected_set(run_from_a(model, seed=s), model))
                for s in range(12)}
    assert len(outcomes) >= 2  # genuinely stochastic
    # A is always infected; the full cascade happens for some seed.
    assert all(A in o for o in outcomes)
    assert any(len(o) >= 4 for o in outcomes)


def test_infection_spreads_only_along_edges(model):
    """C has no edge to A/B/E: if C is infected, D must be too (the only
    path to C runs through D)."""
    for s in range(12):
        infected = infected_set(run_from_a(model, seed=s), model)
        if C in infected:
            assert D in infected


def test_vaccination_protects_c(model):
    """'C decides to get vaccinated and avoids being infected.'"""
    sim = Simulation(model, five_person_population(), classroom_network(),
                     seed=3)
    sim.node_susceptibility[C] = 0.0  # C's vaccination
    sim.seed_infections(np.array([A]))
    result = sim.run(40)
    assert C not in infected_set(result, model)


def test_isolation_cuts_the_chain(model):
    """'D ... chooses to go home for isolation (so avoids transmitting the
    disease to C).'"""
    outcomes = []
    for s in range(20):
        sim = Simulation(model, five_person_population(),
                         classroom_network(), seed=s)
        # Isolate D from the start: suppress D's edges except home ones
        # (all edges here are work context, so all of D's edges go).
        d_edges = sim.incident.edges_of(np.array([D]))
        sim.suppressor.suppress(d_edges)
        sim.seed_infections(np.array([A]))
        result = sim.run(40)
        outcomes.append(infected_set(result, model))
    # D never gets infected (isolated), so C never does either.
    for infected in outcomes:
        assert D not in infected
        assert C not in infected
