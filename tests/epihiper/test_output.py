"""Transition-log and dendogram tests."""

import numpy as np
import pytest

from repro.epihiper.output import (
    TransitionRecorder,
    dendogram_roots,
    dendogram_sizes,
    max_generation,
    transmission_forest,
)
from repro.params import BYTES_PER_TRANSITION


def build_log(rows):
    """rows: list of (tick, pid, state, infector)."""
    rec = TransitionRecorder()
    for tick, pid, state, infector in rows:
        rec.record(tick, np.array([pid]), np.array([state], np.int8),
                   np.array([infector]))
    return rec.finalize()


def test_empty_log():
    log = TransitionRecorder().finalize()
    assert log.size == 0
    assert log.raw_bytes == 0
    assert log.transmissions().size == 0


def test_recorder_chunks_concatenate():
    rec = TransitionRecorder()
    rec.record(0, np.array([1, 2]), np.array([3, 3], np.int8))
    rec.record(1, np.array([4]), np.array([2], np.int8), np.array([1]))
    log = rec.finalize()
    assert log.size == 3
    assert log.tick.tolist() == [0, 0, 1]
    assert log.infector.tolist() == [-1, -1, 1]


def test_raw_bytes_accounting():
    rec = TransitionRecorder()
    rec.record(0, np.arange(10), np.zeros(10, np.int8))
    log = rec.finalize()
    assert log.raw_bytes == 10 * BYTES_PER_TRANSITION


def test_entering_filter():
    log = build_log([(0, 1, 2, -1), (1, 2, 3, -1), (2, 3, 2, -1)])
    rows = log.entering(2)
    assert log.pid[rows].tolist() == [1, 3]


def test_transmission_forest():
    # Seeds 1, 2 (exposed state = 5); 1 infects 3; 3 infects 4; 2 infects 5.
    log = build_log([
        (0, 1, 5, -1), (0, 2, 5, -1),
        (1, 3, 5, 1), (2, 4, 5, 3), (2, 5, 5, 2),
    ])
    parent = transmission_forest(log)
    assert parent == {3: 1, 4: 3, 5: 2}


def test_dendogram_roots():
    log = build_log([(0, 1, 5, -1), (0, 2, 5, -1), (1, 3, 5, 1)])
    roots = dendogram_roots(log, exposed_code=5)
    assert roots.tolist() == [1, 2]


def test_dendogram_sizes_sum_to_infected():
    log = build_log([
        (0, 1, 5, -1), (0, 2, 5, -1),
        (1, 3, 5, 1), (2, 4, 5, 3), (2, 5, 5, 2), (3, 6, 5, 4),
    ])
    sizes = dendogram_sizes(log, exposed_code=5)
    assert sizes == {1: 4, 2: 2}
    assert sum(sizes.values()) == 6


def test_max_generation():
    log = build_log([
        (0, 1, 5, -1), (1, 3, 5, 1), (2, 4, 5, 3), (3, 6, 5, 4),
    ])
    assert max_generation(log, exposed_code=5) == 3


def test_max_generation_seeds_only():
    log = build_log([(0, 1, 5, -1)])
    assert max_generation(log, exposed_code=5) == 0


def test_real_run_dendograms(va_run, covid_model):
    """On a real run: trees partition the ever-infected set."""
    pop, _net, result = va_run
    exposed = covid_model.code("Exposed")
    sizes = dendogram_sizes(result.log, exposed)
    ever_exposed = np.unique(
        result.log.pid[result.log.state == exposed]).size
    assert sum(sizes.values()) == ever_exposed
    roots = dendogram_roots(result.log, exposed)
    assert set(sizes) == set(roots.tolist())
    assert max_generation(result.log, exposed) >= 1
