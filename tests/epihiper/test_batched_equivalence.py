"""Batched-vs-serial equivalence: bit-identical, not statistical.

The batched kernel's contract is that a replicate advanced alongside K-1
others emits *exactly* the bytes it emits alone — same transition log, same
census trajectory, same work counters — because each lane keeps its own
Philox stream and every phase consumes it in solo order.  These tests pin
that contract across backends, batch widths, heterogeneous seeds and cell
parameters, and mid-run intervention triggers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.epihiper import Simulation, uniform_seeds
from repro.epihiper.batch import BatchIncompatible, BatchedSimulation
from repro.epihiper.covid import build_covid_model_with_symp_fraction
from repro.epihiper.npi import make_sc, make_sh, make_vhi
from repro.obs.registry import MetricsRegistry

pytestmark = pytest.mark.fast

N_DAYS = 30

#: Work counters that must match a solo run exactly (not just the output
#: rows): candidate enumeration, sampling, and phase bookkeeping agree.
EXACT_COUNTERS = ("contacts_evaluated", "transmissions", "transitions")


def make_lane(pop, net, *, seed, backend="auto", tau=0.35, symp=0.65,
              interventions=None, n_seeds=8):
    """One deterministic, seeded, not-yet-run replicate lane."""
    model = build_covid_model_with_symp_fraction(tau, symp)
    if interventions is None:
        interventions = [make_sc(start=5), make_vhi(0.6),
                         make_sh(0.5, start=8, end=20)]
    sim = Simulation(model, pop, net, seed=seed,
                     interventions=interventions, backend=backend)
    sim.seed_infections(uniform_seeds(pop, n_seeds, sim.rng))
    return sim, model


def assert_result_identical(solo, batched, label=""):
    np.testing.assert_array_equal(
        solo.state_counts, batched.state_counts,
        err_msg=f"{label} state census diverged")
    np.testing.assert_array_equal(
        solo.memory_series, batched.memory_series,
        err_msg=f"{label} memory series diverged")
    for field in ("tick", "pid", "state", "infector"):
        np.testing.assert_array_equal(
            getattr(solo.log, field), getattr(batched.log, field),
            err_msg=f"{label} log.{field} diverged")
    s_counters, b_counters = solo.counters, batched.counters
    for key in EXACT_COUNTERS:
        assert s_counters[key] == b_counters[key], (
            f"{label} counter {key}: solo {s_counters[key]} "
            f"!= batched {b_counters[key]}")


@pytest.mark.parametrize("backend", ["dense", "frontier", "auto"])
@pytest.mark.parametrize("k", [1, 2, 16])
def test_batched_matches_serial_bitwise(vt_assets, backend, k):
    """K lanes, heterogeneous seeds, one backend: every lane solo-exact."""
    pop, net = vt_assets
    seeds = [1000 + 7 * i for i in range(k)]

    solo_results = []
    for seed in seeds:
        sim, _ = make_lane(pop, net, seed=seed, backend=backend)
        solo_results.append(sim.run(N_DAYS))

    lanes = [make_lane(pop, net, seed=seed, backend=backend)[0]
             for seed in seeds]
    batch = BatchedSimulation(lanes, metrics=MetricsRegistry())
    batched_results = batch.run(N_DAYS)

    assert len(batched_results) == k
    for i, (solo, batched) in enumerate(zip(solo_results, batched_results)):
        assert_result_identical(solo, batched,
                                label=f"{backend} lane {i} seed {seeds[i]}")


def test_batched_heterogeneous_cells_and_backends(vt_assets):
    """Mixed TAU/SYMP cells and mixed backends in one batch stay exact.

    This is the calibration-sweep shape: lanes differ in model parameters
    (so the shared-propensity fast path must detach cleanly) and in
    backend choice (so per-lane frontier gathers coexist with the stacked
    dense scan in the same tick).
    """
    pop, net = vt_assets
    cells = [
        dict(seed=11, backend="dense", tau=0.30, symp=0.65),
        dict(seed=22, backend="frontier", tau=0.45, symp=0.65),
        dict(seed=33, backend="auto", tau=0.30, symp=0.80),
        dict(seed=44, backend="auto", tau=0.60, symp=0.50),
    ]
    solo_results = [make_lane(pop, net, **c)[0].run(N_DAYS) for c in cells]
    batch = BatchedSimulation([make_lane(pop, net, **c)[0] for c in cells])
    for i, (solo, batched) in enumerate(zip(solo_results,
                                            batch.run(N_DAYS))):
        assert_result_identical(solo, batched, label=f"cell {i}")


def test_batched_mid_run_intervention_triggers(vt_assets):
    """Interventions firing mid-run (SC/SH start, SH end, VHI) stay exact.

    The trigger days straddle the run so every lane crosses activation and
    expiry boundaries inside the batched tick loop; compliance draws and
    edge-suppression updates must consume each lane's stream in solo
    order.
    """
    pop, net = vt_assets
    # Interventions hold closure state (suppression handles), so each run
    # gets a freshly built stack.
    stacks = [
        lambda: [make_sc(start=3), make_sh(0.7, start=6, end=12)],
        lambda: [make_vhi(0.8)],
        lambda: [make_sc(start=10), make_vhi(0.4),
                 make_sh(0.3, start=12, end=25)],
    ]
    seeds = [5, 6, 7]
    solo_results = [
        make_lane(pop, net, seed=s, interventions=build())[0].run(N_DAYS)
        for s, build in zip(seeds, stacks)]
    batch = BatchedSimulation([
        make_lane(pop, net, seed=s, interventions=build())[0]
        for s, build in zip(seeds, stacks)])
    for i, (solo, batched) in enumerate(zip(solo_results,
                                            batch.run(N_DAYS))):
        assert_result_identical(solo, batched, label=f"stack {i}")


def test_batched_join_mid_run(vt_assets):
    """Lanes already advanced to the same tick can batch and stay exact."""
    pop, net = vt_assets
    seeds = [71, 72]
    solo_results = []
    for seed in seeds:
        sim, _ = make_lane(pop, net, seed=seed)
        solo_results.append(sim.run(N_DAYS))

    lanes = [make_lane(pop, net, seed=seed)[0] for seed in seeds]
    for sim in lanes:
        sim.run(10)  # advance solo first
    batch = BatchedSimulation(lanes)
    tail = batch.run(N_DAYS - 10)
    for i, (solo, batched) in enumerate(zip(solo_results, tail)):
        # Lane results carry the whole run history (solo prefix included),
        # so the batched-tail result must equal the all-solo run exactly.
        assert_result_identical(solo, batched, label=f"joined lane {i}")


def test_batched_rejects_incompatible_lanes(vt_assets, va_assets):
    pop, net = vt_assets
    va_pop, va_net = va_assets
    a, _ = make_lane(pop, net, seed=1)
    b, _ = make_lane(va_pop, va_net, seed=2)
    with pytest.raises(BatchIncompatible, match="share population"):
        BatchedSimulation([a, b])
    c, _ = make_lane(pop, net, seed=3)
    c.run(1)
    d, _ = make_lane(pop, net, seed=4)
    with pytest.raises(BatchIncompatible, match="same tick"):
        BatchedSimulation([c, d])
    with pytest.raises(BatchIncompatible, match="at least one lane"):
        BatchedSimulation([])


def test_batch_metrics_surface(vt_assets):
    """batch.size gauge and phase timers land in the registry."""
    pop, net = vt_assets
    reg = MetricsRegistry()
    lanes = [make_lane(pop, net, seed=s)[0] for s in (1, 2, 3)]
    BatchedSimulation(lanes, metrics=reg).run(5)
    dump = reg.snapshot()
    assert dump["batch.size"] == 3
    timer_keys = [k for k in dump if k.startswith("batch.")
                  and k.endswith("_s")]
    assert timer_keys, f"no batch phase timers in {sorted(dump)}"


def test_batch_apportions_engine_phase_timers(vt_assets):
    """Lanes keep a live Fig. 7 breakdown: each gets ``total / K`` of a
    batch phase clock, observed once per tick, so ``trace summarize``
    sees nonzero phases and honest tick counts after batched runs."""
    pop, net = vt_assets
    reg = MetricsRegistry()
    lanes = [make_lane(pop, net, seed=s)[0] for s in (1, 2, 3)]
    batch = BatchedSimulation(lanes, metrics=reg)
    results = batch.run(7)
    for phase in ("interventions_s", "transmission_s", "progression_s"):
        batch_total = reg.value(f"batch.{phase}")
        assert batch_total > 0.0
        lane_values = [r.metrics.value(f"engine.{phase}") for r in results]
        assert sum(lane_values) == pytest.approx(batch_total, rel=1e-9)
        for r in results:
            assert r.metrics.count(f"engine.{phase}") == 7
    # A second run on the same batch extends, never double-credits.
    more = batch.run(3)
    assert more[0].metrics.count("engine.transmission_s") == 10
    assert sum(r.metrics.value("engine.transmission_s")
               for r in more) == pytest.approx(
                   reg.value("batch.transmission_s"), rel=1e-9)
