"""Table V coverage: the system-state values EpiHiper exposes.

Table V lists the read/write surface of the intervention system: the
current time (r), node id / infectivity / susceptibility / healthState /
nodeTrait (rw), edge endpoints and activities (r), edge active / weight /
edgeTrait (rw), and user-defined named variables (rw).  These tests pin
that surface on our engine.
"""

import numpy as np
import pytest

from repro.epihiper import Intervention, Simulation


@pytest.fixture()
def sim(va_assets, covid_model):
    pop, net = va_assets
    return Simulation(covid_model, pop, net, seed=1)


def test_system_time_readable(sim):
    assert sim.tick == 0
    sim.step()
    assert sim.tick == 1


def test_node_id_readable(sim):
    np.testing.assert_array_equal(sim.pop.pid,
                                  np.arange(sim.pop.size))


def test_node_infectivity_rw(sim):
    sim.node_infectivity[5] = 0.3
    assert sim.node_infectivity[5] == 0.3


def test_node_susceptibility_rw(sim):
    sim.node_susceptibility[:10] = 0.0
    assert (sim.node_susceptibility[:10] == 0).all()


def test_node_health_state_rw(sim, covid_model):
    code = covid_model.code("Recovered")
    sim.enter_state(np.array([3]), np.array([code], dtype=np.int8))
    assert sim.health[3] == code


def test_node_trait_rw(sim):
    sim.node_traits["essential_worker"] = np.zeros(sim.pop.size, bool)
    sim.node_traits["essential_worker"][7] = True
    assert sim.node_traits["essential_worker"][7]


def test_edge_endpoints_and_activities_readable(sim):
    assert sim.net.source.shape == sim.net.target.shape
    assert sim.net.source_activity.shape[0] == sim.net.n_edges
    assert sim.net.target_activity.shape[0] == sim.net.n_edges


def test_edge_active_rw_via_suppressor(sim):
    handle = sim.suppressor.suppress(np.array([0, 1]))
    active = sim.active_edges()
    assert not active[0] and not active[1]
    sim.suppressor.release(handle)
    assert sim.active_edges()[0]


def test_edge_weight_rw(sim):
    sim.edge_weight[0] = 0.25
    assert sim.edge_weight[0] == 0.25
    # The network's original weights are untouched (engine copies).
    assert sim.net.weight[0] == 1.0


def test_edge_trait_rw(sim):
    sim.edge_traits["masked"] = np.zeros(sim.net.n_edges, bool)
    sim.edge_traits["masked"][2] = True
    assert sim.edge_traits["masked"][2]


def test_named_variables_rw(sim):
    sim.variables["alert_level"] = 2.0
    assert sim.variables["alert_level"] == 2.0


def test_variable_trigger_fires(sim):
    from repro.epihiper.interventions import when_variable_at_least

    fired = []
    sim.interventions.append(Intervention(
        "alarm",
        trigger=when_variable_at_least("alert_level", 3.0),
        action=lambda s: fired.append(s.tick),
        once=True,
    ))
    sim.step()
    assert not fired
    sim.variables["alert_level"] = 5.0
    sim.step()
    assert fired == [1]


def test_symptomatic_count_trigger(sim, covid_model):
    from repro.epihiper.interventions import (
        when_symptomatic_count_at_least,
    )

    trig = when_symptomatic_count_at_least(1)
    assert not trig(sim)
    code = covid_model.code("Symptomatic")
    sim.enter_state(np.array([0]), np.array([code], dtype=np.int8))
    assert trig(sim)
