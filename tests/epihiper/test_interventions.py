"""Intervention-framework tests: suppressor, incident edges, triggers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.epihiper.interventions import (
    EdgeSuppressor,
    IncidentEdges,
    Intervention,
    at_tick,
    between_ticks,
    from_tick,
    sample_subset,
)


class FakeSim:
    def __init__(self, tick):
        self.tick = tick
        self.variables = {}


def test_trigger_helpers():
    assert at_tick(5)(FakeSim(5))
    assert not at_tick(5)(FakeSim(6))
    assert between_ticks(2, 4)(FakeSim(3))
    assert not between_ticks(2, 4)(FakeSim(4))
    assert from_tick(10)(FakeSim(12))
    assert not from_tick(10)(FakeSim(9))


def test_intervention_once_semantics():
    calls = []
    iv = Intervention("x", trigger=lambda s: True,
                      action=lambda s: calls.append(s.tick), once=True)
    assert iv.maybe_apply(FakeSim(0))
    assert not iv.maybe_apply(FakeSim(1))
    assert calls == [0]


def test_intervention_repeated():
    calls = []
    iv = Intervention("x", trigger=lambda s: s.tick % 2 == 0,
                      action=lambda s: calls.append(s.tick))
    for t in range(4):
        iv.maybe_apply(FakeSim(t))
    assert calls == [0, 2]
    assert iv.fired == 2


def test_sample_subset_bounds():
    ids = np.arange(1000)
    rng = np.random.default_rng(0)
    assert sample_subset(ids, 0.0, rng).size == 0
    assert sample_subset(ids, 1.0, rng).size == 1000
    mid = sample_subset(ids, 0.5, rng)
    assert 400 < mid.size < 600
    with pytest.raises(ValueError):
        sample_subset(ids, 1.5, rng)


def test_suppressor_basic_cycle():
    sup = EdgeSuppressor(10)
    base = np.ones(10, dtype=bool)
    h = sup.suppress(np.array([1, 2, 3]))
    active = sup.active_mask(base)
    assert not active[[1, 2, 3]].any()
    assert active[[0, 4]].all()
    sup.release(h)
    assert sup.active_mask(base).all()


def test_suppressor_overlapping_counts():
    sup = EdgeSuppressor(5)
    base = np.ones(5, dtype=bool)
    h1 = sup.suppress(np.array([2, 3]))
    h2 = sup.suppress(np.array([3, 4]))
    sup.release(h1)
    active = sup.active_mask(base)
    assert active[2]
    assert not active[3]  # still held by h2
    assert not active[4]
    sup.release(h2)
    assert sup.active_mask(base).all()


def test_suppressor_double_release_idempotent():
    sup = EdgeSuppressor(3)
    h = sup.suppress(np.array([0]))
    sup.release(h)
    sup.release(h)  # no error, no double decrement
    assert (sup.count >= 0).all()


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_suppressor_refcount_invariant(data):
    """After any sequence of suppress/release pairs, released handles leave
    counts exactly as if they never happened."""
    n = data.draw(st.integers(1, 30))
    sup = EdgeSuppressor(n)
    handles = []
    for _ in range(data.draw(st.integers(0, 10))):
        rows = data.draw(st.lists(st.integers(0, n - 1), max_size=8))
        handles.append(sup.suppress(np.asarray(sorted(set(rows)),
                                               dtype=np.int64)))
    live = []
    for h in handles:
        if data.draw(st.booleans()):
            sup.release(h)
        else:
            live.append(h)
    expect = np.zeros(n, dtype=np.int16)
    for h in live:
        np.add.at(expect, h.edge_rows, 1)
    np.testing.assert_array_equal(sup.count, expect)


def test_incident_edges_lookup():
    # Edges: 0: (0,1), 1: (1,2), 2: (0,2)
    src = np.array([0, 1, 0], dtype=np.int64)
    tgt = np.array([1, 2, 2], dtype=np.int64)
    inc = IncidentEdges(src, tgt, 3)
    np.testing.assert_array_equal(inc.edges_of(np.array([0])), [0, 2])
    np.testing.assert_array_equal(inc.edges_of(np.array([1])), [0, 1])
    np.testing.assert_array_equal(inc.edges_of(np.array([0, 1])), [0, 1, 2])
    assert inc.edges_of(np.empty(0, np.int64)).size == 0


def test_incident_neighbors():
    src = np.array([0, 1, 0], dtype=np.int64)
    tgt = np.array([1, 2, 2], dtype=np.int64)
    inc = IncidentEdges(src, tgt, 3)
    np.testing.assert_array_equal(inc.neighbors_of(np.array([0])), [1, 2])
    np.testing.assert_array_equal(inc.neighbors_of(np.array([2])), [0, 1])
    # Self not included.
    assert 0 not in inc.neighbors_of(np.array([0])).tolist()


def test_incident_isolated_node():
    src = np.array([0], dtype=np.int64)
    tgt = np.array([1], dtype=np.int64)
    inc = IncidentEdges(src, tgt, 5)
    assert inc.edges_of(np.array([4])).size == 0
    assert inc.neighbors_of(np.array([4])).size == 0
