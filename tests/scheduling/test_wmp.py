"""WMP / DB-WMP instance tests."""

import pytest

from repro.scheduling.wmp import MappingTask, WMPInstance, make_nightly_instance


def task(region="A", cell=0, nodes=2, t=10.0):
    return MappingTask(region, cell, nodes, t)


def test_task_properties():
    t = task(nodes=4, t=100.0)
    assert t.area == 400.0
    assert t.task_id == "A-c0"


def test_instance_validation():
    with pytest.raises(ValueError, match="wider"):
        WMPInstance([task(nodes=10)], machine_width=5)
    with pytest.raises(ValueError, match="non-positive"):
        WMPInstance([task(t=0.0)], machine_width=5)


def test_lower_bound():
    inst = WMPInstance([task(nodes=2, t=10.0), task(cell=1, nodes=2, t=10.0)],
                       machine_width=2)
    # Area bound: 40 node-s / 2 nodes = 20s; tallest task 10s.
    assert inst.lower_bound() == 20.0
    wide = WMPInstance([task(nodes=1, t=50.0)], machine_width=100)
    assert wide.lower_bound() == 50.0  # tallest dominates


def test_region_tasks():
    inst = WMPInstance([task("A"), task("B", cell=1)], machine_width=4)
    assert len(inst.region_tasks("A")) == 1
    assert inst.region_tasks("A")[0].region_code == "A"


def test_nightly_instance_prediction_scale():
    inst = make_nightly_instance(cells_per_region=12, replicates=15, seed=0)
    assert len(inst.tasks) == 12 * 15 * 51 == 9180  # Table I prediction row
    assert inst.machine_width == 720 - 51  # DB node reservations
    assert set(inst.db_caps.values()) == {16}


def test_nightly_instance_calibration_scale():
    inst = make_nightly_instance(cells_per_region=300, replicates=1,
                                 regions=("VA", "MD"), seed=0)
    assert len(inst.tasks) == 600


def test_nightly_runtimes_vary():
    inst = make_nightly_instance(cells_per_region=5, replicates=2,
                                 regions=("VA",), seed=0)
    times = {t.est_time for t in inst.tasks}
    assert len(times) > 5


def test_nightly_width_override():
    inst = make_nightly_instance(cells_per_region=2, replicates=1,
                                 regions=("VA",), machine_width=24, seed=0)
    assert inst.machine_width == 24


def test_task_ids_unique():
    inst = make_nightly_instance(cells_per_region=3, replicates=4,
                                 regions=("VA", "MD"), seed=0)
    ids = [t.task_id for t in inst.tasks]
    assert len(set(ids)) == len(ids)
