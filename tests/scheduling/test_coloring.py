"""r-relaxed coloring tests."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.coloring import (
    clique_colors_needed,
    colors_to_waves,
    greedy_relaxed_coloring,
    region_conflict_graph,
    schedule_waves_makespan,
    validate_relaxed_coloring,
)


def test_r1_is_proper_coloring():
    g = nx.cycle_graph(5)
    colors = greedy_relaxed_coloring(g, r=1)
    assert validate_relaxed_coloring(g, colors, 1)
    for u, v in g.edges:
        assert colors[u] != colors[v]


def test_relaxation_uses_fewer_colors():
    g = nx.complete_graph(9)
    strict = greedy_relaxed_coloring(g, r=1)
    relaxed = greedy_relaxed_coloring(g, r=3)
    assert len(set(relaxed.values())) < len(set(strict.values()))
    assert validate_relaxed_coloring(g, relaxed, 3)


def test_clique_color_count_formula():
    assert clique_colors_needed(9, 3) == 3
    assert clique_colors_needed(10, 3) == 4
    assert clique_colors_needed(5, 1) == 5
    assert clique_colors_needed(0, 2) == 0
    with pytest.raises(ValueError):
        clique_colors_needed(3, 0)


def test_greedy_optimal_on_cliques():
    """On a clique (the paper's per-region conflict graph) greedy achieves
    the ceil(n/r) optimum."""
    g = nx.complete_graph(10)
    colors = greedy_relaxed_coloring(g, r=3)
    assert len(set(colors.values())) == clique_colors_needed(10, 3)
    assert validate_relaxed_coloring(g, colors, 3)


def test_validate_rejects_bad_coloring():
    g = nx.complete_graph(4)
    colors = {n: 0 for n in g.nodes}
    assert not validate_relaxed_coloring(g, colors, 2)
    assert validate_relaxed_coloring(g, colors, 4)


def test_region_conflict_graph_structure():
    g = region_conflict_graph({"VA": 3, "MD": 2})
    assert g.number_of_nodes() == 5
    # Cliques within regions, no edges across.
    assert g.has_edge(("VA", 0), ("VA", 1))
    assert not g.has_edge(("VA", 0), ("MD", 0))
    assert g.number_of_edges() == 3 + 1


def test_region_decomposition_coloring():
    g = region_conflict_graph({"VA": 6, "MD": 4})
    colors = greedy_relaxed_coloring(g, r=2)
    assert validate_relaxed_coloring(g, colors, 2)
    assert len(set(colors.values())) == clique_colors_needed(6, 2)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 25),
    p=st.floats(0.05, 0.9),
    r=st.integers(1, 4),
    seed=st.integers(0, 2**31),
)
def test_property_greedy_always_valid(n, p, r, seed):
    g = nx.gnp_random_graph(n, p, seed=seed)
    colors = greedy_relaxed_coloring(g, r)
    assert set(colors) == set(g.nodes)
    assert validate_relaxed_coloring(g, colors, r)


def test_waves_and_makespan():
    g = region_conflict_graph({"VA": 4})
    colors = greedy_relaxed_coloring(g, r=2)
    waves = colors_to_waves(colors)
    assert sum(len(w) for w in waves) == 4
    times = {node: 10.0 for node in g.nodes}
    nodes = {node: 2 for node in g.nodes}
    makespan = schedule_waves_makespan(
        waves, times, machine_width=8, task_nodes=nodes)
    assert makespan == pytest.approx(10.0 * len(waves))
