"""Utilization-experiment tests (the Figure 9 machinery)."""

import numpy as np
import pytest

from repro.scheduling.categories import (
    category_name,
    category_table,
    node_category,
)
from repro.scheduling.levels import pack_ffdt_dc, pack_nfdt_dc
from repro.scheduling.metrics import (
    execute_packing,
    jobs_from_packing,
    median_utilization,
    utilization_cdf,
    utilization_experiment,
)
from repro.scheduling.wmp import make_nightly_instance


def test_categories_cover_paper_sizes():
    assert node_category("WY") == 2
    assert node_category("CA") == 6
    assert node_category("NY") == 4
    table = category_table()
    assert sum(len(v) for v in table.values()) == 51
    assert len(table["small"]) > len(table["large"])
    assert category_name(4) == "medium"


def test_jobs_from_packing_preserves_tasks():
    inst = make_nightly_instance(cells_per_region=2, replicates=2,
                                 regions=("VA", "MD"), seed=0)
    packed = pack_ffdt_dc(inst)
    jobs = jobs_from_packing(packed)
    assert len(jobs) == len(inst.tasks)
    assert {j.job_id for j in jobs} == {t.task_id for t in inst.tasks}


def test_execute_packing_respects_caps():
    inst = make_nightly_instance(cells_per_region=4, replicates=3,
                                 regions=("VA", "MD", "CA"), db_cap=2,
                                 machine_width=40, seed=1)
    out = execute_packing(pack_ffdt_dc(inst))
    out.validate_no_overlap_violation(40, inst.db_caps)
    assert max(out.peak_region_concurrency.values()) <= 2


def test_ffdt_beats_nfdt_utilization():
    """The Figure 9 headline: FFDT-DC utilization far exceeds NFDT-DC."""
    samples = utilization_experiment(
        n_nights=2, cells_per_region=4, replicates=4, seed=0)
    ffdt = median_utilization(samples, "FFDT-DC")
    nfdt = median_utilization(samples, "NFDT-DC")
    assert ffdt > nfdt
    assert ffdt > 0.85


def test_va_only_high_utilization():
    """Figure 9 right: single-region nights on right-sized allocations
    still reach very high utilization."""
    samples = utilization_experiment(
        n_nights=2, regions=("VA",), cells_per_region=20, replicates=6,
        machine_width=16, db_cap=48, seed=1)
    assert median_utilization(samples, "FFDT-DC") > 0.9


def test_utilization_cdf():
    x, f = utilization_cdf([0.5, 0.9, 0.7])
    np.testing.assert_allclose(x, [0.5, 0.7, 0.9])
    np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])


def test_median_requires_samples():
    with pytest.raises(ValueError):
        median_utilization([], "FFDT-DC")


def test_each_night_same_tasks_different_draws():
    samples = utilization_experiment(
        n_nights=2, cells_per_region=2, replicates=2,
        regions=("VA",), machine_width=16, db_cap=8, seed=3)
    by_algo_night = {(s.algorithm, s.night): s for s in samples}
    assert (by_algo_night[("FFDT-DC", 0)].n_jobs
            == by_algo_night[("NFDT-DC", 0)].n_jobs)
    # Different nights draw different runtimes -> different makespans.
    assert (by_algo_night[("FFDT-DC", 0)].makespan_hours
            != by_algo_night[("FFDT-DC", 1)].makespan_hours)
