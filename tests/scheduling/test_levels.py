"""Level-oriented packing tests (NFDT-DC / FFDT-DC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.levels import (
    pack_ffdt_dc,
    pack_nfdt_dc,
    packing_quality,
)
from repro.scheduling.wmp import MappingTask, WMPInstance


def make_instance(specs, width=10, caps=None):
    """specs: list of (region, nodes, time)."""
    tasks = [MappingTask(r, i, n, t) for i, (r, n, t) in enumerate(specs)]
    return WMPInstance(tasks, width, caps or {})


def test_single_task():
    inst = make_instance([("A", 3, 10.0)])
    for packer in (pack_nfdt_dc, pack_ffdt_dc):
        p = packer(inst)
        assert p.n_levels == 1
        assert p.makespan_estimate == 10.0


def test_decreasing_time_order_within_packing():
    inst = make_instance([("A", 2, 5.0), ("B", 2, 20.0), ("C", 2, 10.0)],
                         width=2)
    p = pack_ffdt_dc(inst)
    ordered = [t.est_time for t, _lvl in p.ordered_tasks()]
    assert ordered == sorted(ordered, reverse=True)


def test_nfdt_closes_level_on_width():
    inst = make_instance([("A", 6, 10.0), ("B", 6, 9.0), ("C", 4, 8.0)],
                         width=10)
    p = pack_nfdt_dc(inst)
    # A(6) fits level 0; B(6) doesn't -> level 1; C(4) fits level 1.
    assert p.n_levels == 2
    assert p.makespan_estimate == 10.0 + 9.0


def test_ffdt_reuses_open_levels():
    inst = make_instance([("A", 6, 10.0), ("B", 6, 9.0), ("C", 4, 8.0)],
                         width=10)
    p = pack_ffdt_dc(inst)
    # C goes back onto level 0 next to A: first-fit advantage.
    level_of = {t.task_id: lvl for t, lvl in p.ordered_tasks()}
    assert level_of["C-c2"] == 0
    assert p.makespan_estimate == 10.0 + 9.0  # same heights here


def test_db_cap_forces_new_level():
    caps = {"A": 1}
    inst = make_instance([("A", 2, 10.0), ("A", 2, 9.0)], width=10,
                         caps=caps)
    for packer in (pack_nfdt_dc, pack_ffdt_dc):
        p = packer(inst)
        assert p.n_levels == 2  # same region cannot share a level


def test_validate_passes():
    inst = make_instance(
        [("A", 2, 10.0), ("B", 3, 8.0), ("A", 2, 6.0), ("C", 5, 4.0)],
        width=7, caps={"A": 1})
    for packer in (pack_nfdt_dc, pack_ffdt_dc):
        packer(inst).validate()  # raises on violation


def test_ffdt_never_worse_than_nfdt():
    rng = np.random.default_rng(0)
    for trial in range(20):
        specs = [(f"R{rng.integers(4)}", int(rng.integers(1, 5)),
                  float(rng.uniform(1, 50))) for _ in range(30)]
        inst = make_instance(specs, width=12,
                             caps={f"R{i}": 3 for i in range(4)})
        nf = pack_nfdt_dc(inst).makespan_estimate
        ff = pack_ffdt_dc(inst).makespan_estimate
        assert ff <= nf + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_packing_within_classical_bounds(data):
    """Without DB caps these are NFDH / FFDH: height <= 3x the
    strip-packing lower bound (2*OPT + hmax <= 3*LB)."""
    n = data.draw(st.integers(1, 40))
    width = data.draw(st.integers(4, 16))
    specs = []
    for i in range(n):
        specs.append((
            f"R{i}",  # distinct regions: no DB interference
            data.draw(st.integers(1, width)),
            data.draw(st.floats(0.5, 100.0)),
        ))
    inst = make_instance(specs, width=width)
    for packer in (pack_nfdt_dc, pack_ffdt_dc):
        p = packer(inst)
        p.validate()
        assert packing_quality(p) <= 3.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_db_caps_respected(data):
    n = data.draw(st.integers(1, 30))
    cap = data.draw(st.integers(1, 3))
    specs = [("A", data.draw(st.integers(1, 4)),
              data.draw(st.floats(1.0, 20.0))) for _ in range(n)]
    inst = make_instance(specs, width=12, caps={"A": cap})
    for packer in (pack_nfdt_dc, pack_ffdt_dc):
        p = packer(inst)
        p.validate()
        for lv in p.levels:
            assert lv.region_count("A") <= cap
