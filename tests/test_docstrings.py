"""Documentation-coverage gate: every public item carries a docstring.

Walks all repro subpackages and asserts that modules, public classes,
public functions, and public methods are documented — the deliverable
standard for the library's API surface.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_modules())


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_module_docstring(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", ALL_MODULES,
                         ids=[m.__name__ for m in ALL_MODULES])
def test_public_callables_documented(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isfunction(obj) and not obj.__doc__:
            missing.append(f"function {name}")
        elif inspect.isclass(obj):
            if not obj.__doc__:
                missing.append(f"class {name}")
            for m_name, member in vars(obj).items():
                if m_name.startswith("_"):
                    continue
                if inspect.isfunction(member) and not member.__doc__:
                    missing.append(f"method {name}.{m_name}")
    assert not missing, (
        f"{module.__name__} has undocumented public items: {missing}")
