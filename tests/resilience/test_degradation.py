"""Deadline-aware degradation: deterministic shedding, coverage floors."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience.degrade import (
    cell_of,
    degrade_to_window,
    replicate_of,
)
from repro.scheduling.levels import pack_ffdt_dc
from repro.scheduling.wmp import make_nightly_instance

pytestmark = pytest.mark.fast

REGIONS = ("VT", "RI")
REPLICATES = 3


def small_instance():
    return make_nightly_instance(
        cells_per_region=2, replicates=REPLICATES, regions=REGIONS, seed=0)


def groups(tasks):
    out = {}
    for t in tasks:
        out.setdefault(cell_of(t, REPLICATES), []).append(t)
    return out


def test_replicate_and_cell_decoding():
    inst = small_instance()
    reps = {replicate_of(t, REPLICATES) for t in inst.tasks}
    assert reps == {0, 1, 2}
    assert len(groups(inst.tasks)) == 4  # 2 cells x 2 regions


def test_fitting_window_sheds_nothing():
    res = degrade_to_window(small_instance(), window_s=1e9,
                            packer=pack_ffdt_dc, replicates=REPLICATES)
    assert not res.degraded and res.shed == [] and res.rounds == 1
    assert len(res.instance.tasks) == len(small_instance().tasks)


def test_impossible_window_sheds_to_coverage_floor():
    inst = small_instance()
    res = degrade_to_window(inst, window_s=1.0, packer=pack_ffdt_dc,
                            replicates=REPLICATES)
    assert res.degraded
    # Every <cell, region> group keeps exactly the floor of one replicate.
    kept = groups(res.instance.tasks)
    assert all(len(ts) == 1 for ts in kept.values())
    assert len(kept) == 4  # no design point lost entirely
    # Highest tiers go first.
    first_shed_tier = replicate_of(res.shed[0], REPLICATES)
    assert first_shed_tier == REPLICATES - 1
    assert len(res.shed) + len(res.instance.tasks) == len(inst.tasks)


def test_min_replicates_floor_respected():
    res = degrade_to_window(small_instance(), window_s=1.0,
                            packer=pack_ffdt_dc, replicates=REPLICATES,
                            min_replicates=2)
    kept = groups(res.instance.tasks)
    assert all(len(ts) == 2 for ts in kept.values())


def test_min_replicates_validated():
    with pytest.raises(ValueError):
        degrade_to_window(small_instance(), window_s=1.0,
                          packer=pack_ffdt_dc, replicates=REPLICATES,
                          min_replicates=0)


def test_shedding_is_deterministic():
    a = degrade_to_window(small_instance(), window_s=1.0,
                          packer=pack_ffdt_dc, replicates=REPLICATES)
    b = degrade_to_window(small_instance(), window_s=1.0,
                          packer=pack_ffdt_dc, replicates=REPLICATES)
    assert a.shed_task_ids == b.shed_task_ids
    assert [t.task_id for t in a.instance.tasks] == [
        t.task_id for t in b.instance.tasks]


def test_metrics_account_shedding():
    reg = MetricsRegistry()
    res = degrade_to_window(small_instance(), window_s=1.0,
                            packer=pack_ffdt_dc, replicates=REPLICATES,
                            metrics=reg)
    assert reg.value("degrade.shed_instances") == len(res.shed)
    assert reg.value("degrade.rounds") == res.rounds
    # The projection rounds' slurm.* accounting stays out of the sink.
    assert reg.value("slurm.jobs", 0) == 0
