"""FaultPlan determinism, rule parsing and site validation."""

import pickle

import pytest

from repro.resilience import FAULT_SITES, FaultPlan, FaultRule, hash_uniform

pytestmark = pytest.mark.fast


def test_sites_cover_all_layers():
    assert set(FAULT_SITES) == {
        "worker.crash", "worker.exception", "worker.slow",
        "worker.crash_mid_run",
        "cas.corrupt", "transfer.fail", "ledger.torn",
    }


def test_rule_parse_roundtrip():
    r = FaultRule.parse("worker.crash:times=1,match=VA,p=0.5")
    assert r.site == "worker.crash"
    assert r.times == 1 and r.match == "VA" and r.probability == 0.5


def test_rule_parse_delay():
    r = FaultRule.parse("worker.slow:delay=0.2")
    assert r.delay_s == 0.2


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultRule.parse("worker.meltdown")


def test_bad_option_rejected():
    with pytest.raises(ValueError):
        FaultRule.parse("worker.crash:oops=1")
    with pytest.raises(ValueError):
        FaultRule.parse("worker.crash:times")


def test_validation_bounds():
    with pytest.raises(ValueError):
        FaultRule("worker.crash", probability=1.5)
    with pytest.raises(ValueError):
        FaultRule("worker.crash", times=0)
    with pytest.raises(ValueError):
        FaultRule("worker.slow", delay_s=-1.0)


def test_times_limits_attempts():
    plan = FaultPlan.parse(["worker.exception:times=2"], seed=0)
    assert plan.fires("worker.exception", "k", 0)
    assert plan.fires("worker.exception", "k", 1)
    assert not plan.fires("worker.exception", "k", 2)


def test_match_restricts_keys():
    plan = FaultPlan.parse(["worker.exception:match=VA"], seed=0)
    assert plan.fires("worker.exception", "VA:17")
    assert not plan.fires("worker.exception", "VT:17")


def test_empty_plan_never_fires():
    plan = FaultPlan()
    for site in FAULT_SITES:
        assert not plan.fires(site, "anything", 0)
        assert plan.delay(site, "anything", 0) == 0.0


def test_firing_is_deterministic_and_seed_dependent():
    plan_a = FaultPlan.parse(["worker.crash:p=0.5"], seed=1)
    plan_b = FaultPlan.parse(["worker.crash:p=0.5"], seed=2)
    keys = [f"k{i}" for i in range(200)]
    draws_a = [plan_a.fires("worker.crash", k) for k in keys]
    assert draws_a == [plan_a.fires("worker.crash", k) for k in keys]
    assert draws_a != [plan_b.fires("worker.crash", k) for k in keys]
    # p=0.5 over 200 keys should fire a plausible fraction of the time.
    assert 60 <= sum(draws_a) <= 140


def test_firing_independent_of_call_order():
    """Stateless by construction: no hidden stream to advance."""
    plan = FaultPlan.parse(["cas.corrupt:p=0.4"], seed=9)
    forward = [plan.fires("cas.corrupt", f"k{i}") for i in range(50)]
    backward = [plan.fires("cas.corrupt", f"k{i}")
                for i in reversed(range(50))]
    assert forward == list(reversed(backward))


def test_plan_pickles_to_workers():
    plan = FaultPlan.parse(["worker.crash:times=1", "worker.slow:delay=0.1"],
                           seed=3)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone == plan
    assert clone.fires("worker.crash", "x", 0) == plan.fires(
        "worker.crash", "x", 0)


def test_delay_sums_matching_slow_rules():
    plan = FaultPlan.parse(["worker.slow:delay=0.1",
                            "worker.slow:delay=0.2,match=VA"], seed=0)
    assert plan.delay("worker.slow", "VT:0") == pytest.approx(0.1)
    assert plan.delay("worker.slow", "VA:0") == pytest.approx(0.3)


def test_describe_mentions_every_rule():
    plan = FaultPlan.parse(["worker.crash:times=1", "cas.corrupt:p=0.5"],
                           seed=4)
    text = plan.describe()
    assert "worker.crash" in text and "cas.corrupt" in text
    assert "seed 4" in text
    assert FaultPlan().describe() == "no faults"


def test_hash_uniform_range_and_determinism():
    draws = [hash_uniform(0, "a", i) for i in range(100)]
    assert all(0.0 <= d < 1.0 for d in draws)
    assert draws == [hash_uniform(0, "a", i) for i in range(100)]
    assert hash_uniform(0, "a", 1) != hash_uniform(1, "a", 1)
