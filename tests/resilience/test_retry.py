"""RetryPolicy backoff math and transient-vs-permanent triage."""

import pytest

from concurrent.futures.process import BrokenProcessPool

from repro.resilience import (
    NO_RETRY_POLICY,
    PERMANENT,
    TRANSIENT,
    InjectedFault,
    PermanentError,
    RetryPolicy,
    TransientError,
    classify,
)

pytestmark = pytest.mark.fast


def test_transient_types_are_retried():
    for exc in (TransientError("x"), InjectedFault("worker.crash"),
                TimeoutError(), ConnectionError(), InterruptedError(),
                BrokenProcessPool("dead"), BrokenPipeError()):
        assert classify(exc) == TRANSIENT


def test_logic_errors_are_poison():
    for exc in (ValueError("bad param"), KeyError("region"),
                ZeroDivisionError(), PermanentError("poison")):
        assert classify(exc) == PERMANENT


def test_backoff_grows_exponentially_to_cap():
    p = RetryPolicy(base_delay_s=0.1, factor=2.0, max_delay_s=0.5,
                    jitter=0.0)
    delays = [p.backoff_s("k", i) for i in range(5)]
    assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])


def test_jitter_is_deterministic_and_bounded():
    p = RetryPolicy(base_delay_s=0.1, factor=1.0, jitter=0.25, seed=5)
    d1 = p.backoff_s("key-a", 0)
    assert d1 == p.backoff_s("key-a", 0)  # same key, same delay
    assert d1 != p.backoff_s("key-b", 0)  # keys decorrelate
    for key in ("a", "b", "c", "d"):
        assert 0.075 <= p.backoff_s(key, 0) <= 0.125


def test_no_retry_policy_is_single_attempt():
    assert NO_RETRY_POLICY.max_attempts == 1
    assert NO_RETRY_POLICY.backoff_s("k", 0) == 0.0


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_pool_rebuilds=-1)
