"""Store integrity: digest on write, verify on read, quarantine on corrupt."""

import numpy as np
import pytest

from repro.resilience import FaultPlan
from repro.store.cas import DIGEST_KEY, ContentStore, payload_digest

pytestmark = pytest.mark.fast

KEY = "ab" + "0" * 62


def payload():
    return {"confirmed": np.arange(10, dtype=np.float64),
            "attack_rate": np.asarray(0.25)}


def test_digest_is_stable_and_content_sensitive():
    d1 = payload_digest(payload())
    assert np.array_equal(d1, payload_digest(payload()))
    changed = payload()
    changed["confirmed"][3] += 1
    assert not np.array_equal(d1, payload_digest(changed))
    # Same bytes under a different name is a different payload.
    assert not np.array_equal(
        d1, payload_digest({"renamed": payload()["confirmed"],
                            "attack_rate": payload()["attack_rate"]}))
    # The embedded digest entry itself is excluded from the hash.
    with_digest = dict(payload(), **{DIGEST_KEY: d1})
    assert np.array_equal(d1, payload_digest(with_digest))


def test_roundtrip_verifies_clean(tmp_path):
    store = ContentStore(tmp_path)
    store.put(KEY, payload())
    got = store.get(KEY)
    assert got is not None and DIGEST_KEY not in got
    assert np.array_equal(got["confirmed"], payload()["confirmed"])
    assert store.stats.corrupt == 0


def test_injected_corruption_quarantined_as_miss(tmp_path):
    plan = FaultPlan.parse(["cas.corrupt:times=1"], seed=0)
    store = ContentStore(tmp_path, faults=plan)
    path = store.put(KEY, payload())
    assert store.metrics.value("faults.cas.corrupt") == 1
    assert store.get(KEY) is None  # digest mismatch detected
    assert not path.exists()  # moved out of the object tree...
    assert store.quarantined_keys() == [KEY]  # ...into quarantine
    assert store.stats.corrupt == 1 and store.stats.misses == 1


def test_requarantined_key_recovers_on_rewrite(tmp_path):
    plan = FaultPlan.parse(["cas.corrupt:times=1"], seed=0)
    store = ContentStore(tmp_path, faults=plan)
    store.put(KEY, payload())
    assert store.get(KEY) is None
    store.put(KEY, payload())  # second put: the times=1 rule is spent
    got = store.get(KEY)
    assert got is not None
    assert np.array_equal(got["confirmed"], payload()["confirmed"])


def test_tampered_blob_detected(tmp_path):
    """Corruption planted outside the fault plane is caught the same way."""
    store = ContentStore(tmp_path)
    path = store.put(KEY, payload())
    tampered = payload()
    tampered["confirmed"][0] = 999.0
    import os
    import tempfile

    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".npz")
    with os.fdopen(fd, "wb") as fh:
        np.savez_compressed(fh, **tampered,
                            **{DIGEST_KEY: payload_digest(payload())})
    os.replace(tmp_name, path)  # valid zip, arrays disagree with digest
    assert store.get(KEY) is None
    assert store.quarantined_keys() == [KEY]


def test_unreadable_blob_quarantined(tmp_path):
    store = ContentStore(tmp_path)
    path = store.put(KEY, payload())
    path.write_bytes(b"not a zip at all")
    assert store.get(KEY) is None
    assert store.stats.corrupt == 1
    assert store.quarantined_keys() == [KEY]


def test_legacy_digestless_blob_still_served(tmp_path):
    """Blobs written before the integrity digest existed must keep reading."""
    store = ContentStore(tmp_path)
    path = store.path_of(KEY)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload())  # no __digest__ entry
    got = store.get(KEY)
    assert got is not None
    assert np.array_equal(got["confirmed"], payload()["confirmed"])
    assert store.stats.hits == 1 and store.stats.corrupt == 0


def test_summary_counts_corruption(tmp_path):
    plan = FaultPlan.parse(["cas.corrupt:times=1"], seed=0)
    store = ContentStore(tmp_path, faults=plan)
    store.put(KEY, payload())
    store.get(KEY)
    assert "corrupt 1" in store.summary()
