"""supervise_map: retries, quarantine, pool rebuild, timeouts.

The pooled tests use tiny picklable work functions (not simulations) so
the supervisor's failure machinery is exercised in isolation and fast;
the instance-level integration lives in ``test_chaos_equivalence.py``.
"""

import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    RAISE,
    RetryPolicy,
    TransientError,
    supervise_map,
)
from repro.store.ledger import RunLedger, replay_ledger

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


def _double(item, attempt, faults):
    return item * 2


def _flaky(item, attempt, faults):
    if attempt == 0:
        raise TransientError(f"first attempt of {item}")
    return item * 2


def _poison_odd(item, attempt, faults):
    if item % 2:
        raise ValueError(f"poison {item}")
    return item * 2


def _always_fails(item, attempt, faults):
    raise TransientError(f"{item} never works")


def _crash_item_two(item, attempt, faults):
    if item == 2 and attempt == 0:
        os._exit(17)
    return item * 2


def _always_crashes(item, attempt, faults):
    os._exit(17)


def _slow_item_one(item, attempt, faults):
    if item == 1 and attempt == 0:
        time.sleep(30.0)
    return item * 2


def _make_pool():
    return ProcessPoolExecutor(max_workers=2)


# -- serial path ---------------------------------------------------------------


def test_all_success_preserves_order():
    res = supervise_map(_double, [3, 1, 2], registry=MetricsRegistry())
    assert res.results == [6, 2, 4]
    assert res.ok and res.attempts == 3 and res.retries == 0


def test_empty_batch():
    res = supervise_map(_double, [], registry=MetricsRegistry())
    assert res.results == [] and res.ok


def test_transient_failures_are_retried():
    reg = MetricsRegistry()
    res = supervise_map(_flaky, [1, 2], retry=FAST_RETRY, registry=reg)
    assert res.results == [2, 4]
    assert res.retries == 2 and res.attempts == 4
    assert reg.value("retry.retries") == 2
    assert reg.value("retry.failures") == 2


def test_permanent_failures_quarantine_immediately():
    reg = MetricsRegistry()
    res = supervise_map(_poison_odd, [0, 1, 2, 3], retry=FAST_RETRY,
                        registry=reg)
    assert res.results == [0, None, 4, None]
    assert res.retries == 0  # poison is never retried
    assert [q.key for q in res.quarantined] == ["1", "3"]
    assert all(q.kind == "permanent" for q in res.quarantined)
    assert res.completed() == [0, 4]
    assert reg.value("retry.quarantined") == 2


def test_exhausted_attempts_quarantine_as_transient():
    res = supervise_map(_always_fails, [7], retry=FAST_RETRY,
                        registry=MetricsRegistry())
    assert res.results == [None]
    (q,) = res.quarantined
    assert q.kind == "transient" and q.attempts == 3
    assert "never works" in q.error


def test_on_failure_raise_propagates():
    with pytest.raises(ValueError, match="poison 1"):
        supervise_map(_poison_odd, [0, 1], retry=FAST_RETRY,
                      on_failure=RAISE, registry=MetricsRegistry())


def test_invalid_on_failure_rejected():
    with pytest.raises(ValueError):
        supervise_map(_double, [1], on_failure="explode",
                      registry=MetricsRegistry())


def test_on_result_fires_incrementally():
    seen = []
    supervise_map(_poison_odd, [0, 1, 2], retry=FAST_RETRY,
                  on_result=lambda i, r: seen.append((i, r)),
                  registry=MetricsRegistry())
    assert seen == [(0, 0), (2, 4)]  # quarantined item never reported


def test_quarantine_journaled_to_ledger(tmp_path):
    ledger = RunLedger(tmp_path / "run.jsonl")
    supervise_map(_poison_odd, [1], keys=["spec-one"], retry=FAST_RETRY,
                  registry=MetricsRegistry(), ledger=ledger)
    (event,) = replay_ledger(ledger.path).events
    assert event["event"] == "instance_failed"
    assert event["key"] == "spec-one"
    assert event["quarantined"] is True
    assert event["kind"] == "permanent" and event["attempts"] == 1


def test_summary_reports_quarantine():
    res = supervise_map(_poison_odd, [0, 1], retry=FAST_RETRY,
                        registry=MetricsRegistry())
    text = res.summary()
    assert "1/2 completed" in text and "quarantined 1" in text


# -- pooled path ---------------------------------------------------------------


def test_pooled_success(tmp_path):
    res = supervise_map(_double, [1, 2, 3], make_pool=_make_pool,
                        registry=MetricsRegistry())
    assert res.results == [2, 4, 6]
    assert res.pool_rebuilds == 0


def test_pooled_submit_order_does_not_change_result_order():
    res = supervise_map(_double, [1, 2, 3, 4], make_pool=_make_pool,
                        submit_order=[3, 1, 0, 2],
                        registry=MetricsRegistry())
    assert res.results == [2, 4, 6, 8]


def test_broken_pool_rebuilds_and_salvages():
    reg = MetricsRegistry()
    res = supervise_map(_crash_item_two, [0, 1, 2, 3], make_pool=_make_pool,
                        retry=FAST_RETRY, registry=reg)
    assert res.results == [0, 2, 4, 6]  # crash survivor included
    assert res.pool_rebuilds >= 1
    assert reg.value("retry.pool_rebuilds") >= 1


def test_crash_loop_gives_up_bounded():
    retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0,
                        max_pool_rebuilds=1)
    res = supervise_map(_always_crashes, [0, 1], make_pool=_make_pool,
                        retry=retry, registry=MetricsRegistry())
    assert res.results == [None, None]
    assert res.pool_rebuilds == 1
    assert all(q.kind == "pool" for q in res.quarantined)


def test_timeout_abandons_stuck_attempt():
    retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0,
                        timeout_s=1.0)
    reg = MetricsRegistry()
    res = supervise_map(_slow_item_one, [0, 1], make_pool=_make_pool,
                        retry=retry, registry=reg)
    assert res.results == [0, 2]  # retried attempt (attempt=1) is fast
    assert reg.value("retry.failures") >= 1
