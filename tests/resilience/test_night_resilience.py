"""End-to-end nights: quarantined specs and degraded windows.

Two acceptance paths: (1) a batch with a poisoned spec returns partial
results plus a quarantine report journaled to the ledger; (2) a night
whose projection blows its window sheds deterministically, journals the
shed set, and reports ``degraded``.
"""

import numpy as np
import pytest

from repro.cluster.machines import AccessWindow
from repro.core.designs import Cell, ExperimentDesign
from repro.core.orchestrator import orchestrate_night
from repro.core.parallel import (
    InstanceSpec,
    run_instances,
    supervise_instances,
)
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy
from repro.store.ledger import RunLedger, replay_ledger

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)


def specs(n=3, days=8):
    return [
        InstanceSpec(region_code="VT", params={"TAU": 0.25, "SYMP": 0.65},
                     n_days=days, scale=1e-3, seed=100 + 17 * i,
                     label=f"VT-i{i}", asset_seed=0)
        for i in range(n)
    ]


def mini_design():
    return ExperimentDesign(
        name="mini",
        cells=(Cell(0, {"TAU": 0.2}), Cell(1, {"TAU": 0.3})),
        regions=("VT", "RI"),
        replicates=3,
    )


def test_quarantined_spec_yields_partial_results(tmp_path):
    """A spec that keeps failing is quarantined; the rest of the night
    completes with results bit-identical to a clean run."""
    plan = FaultPlan.parse(["worker.exception:match=i1"], seed=0)  # always
    ledger = RunLedger(tmp_path / "run.jsonl")
    reg = MetricsRegistry()
    res = supervise_instances(specs(), parallel=False, retry=FAST_RETRY,
                              faults=plan, registry=reg, ledger=ledger)

    assert not res.ok
    assert [r is None for r in res.results] == [False, True, False]
    (q,) = res.quarantined
    assert q.key == "VT-i1" and q.kind == "transient" and q.attempts == 2
    assert "1 pool rebuilds" not in res.summary()

    # Partial results match the clean run bit for bit.
    clean = run_instances(specs(), parallel=False,
                          registry=MetricsRegistry())
    for i in (0, 2):
        assert np.array_equal(clean[i].confirmed, res.results[i].confirmed)
        assert clean[i].attack_rate == res.results[i].attack_rate

    # The give-up is journaled and metered.
    (event,) = replay_ledger(ledger.path).events
    assert event["event"] == "instance_failed"
    assert event["key"] == "VT-i1" and event["quarantined"] is True
    assert reg.value("retry.quarantined") == 1
    assert reg.value("faults.worker.exception") == 2


def test_degraded_night_sheds_journals_and_reports(tmp_path):
    ledger = RunLedger(tmp_path / "night.jsonl")
    report = orchestrate_night(
        mini_design(),
        window=AccessWindow(start_hour=22.0, duration_hours=0.05),
        degrade=True,
        ledger=ledger,
    )
    design_points = 4  # 2 cells x 2 regions
    assert report.degraded
    assert report.n_shed == design_points * 2  # tiers 2 and 1 shed
    assert len(report.shed_task_ids) == report.n_shed
    # The night still ran: one replicate per design point survived.
    assert len(report.schedule.records) == design_points
    assert "degraded: shed 8" in report.summary()
    assert report.metrics.value("night.shed_instances") == report.n_shed
    assert report.metrics.value("night.degraded") == 1.0

    replay = replay_ledger(ledger.path)
    shed_events = [e for e in replay.events if e["event"] == "work_shed"]
    assert {e["key"] for e in shed_events} == set(report.shed_task_ids)
    (started,) = [e for e in replay.events if e["event"] == "run_started"]
    assert started["shed"] == report.n_shed


def test_degrade_flag_is_inert_when_night_fits():
    report = orchestrate_night(mini_design(), degrade=True)
    assert not report.degraded and report.n_shed == 0
    assert report.metrics.value("night.degraded") == 0.0
    assert report.fits_window


def test_degraded_night_is_deterministic(tmp_path):
    window = AccessWindow(start_hour=22.0, duration_hours=0.05)
    a = orchestrate_night(mini_design(), window=window, degrade=True)
    b = orchestrate_night(mini_design(), window=window, degrade=True)
    assert a.shed_task_ids == b.shed_task_ids
    assert a.schedule.makespan == b.schedule.makespan


def test_min_replicates_floor_threads_through(tmp_path):
    report = orchestrate_night(
        mini_design(),
        window=AccessWindow(start_hour=22.0, duration_hours=0.05),
        degrade=True,
        min_replicates=2,
    )
    assert report.n_shed == 4  # only the top tier is sheddable
    assert len(report.schedule.records) == 8


def test_night_transfer_faults_are_retried_transparently(tmp_path):
    plan = FaultPlan.parse(["transfer.fail:times=1"], seed=0)
    report = orchestrate_night(mini_design(), faults=plan,
                               retry=RetryPolicy(max_attempts=3))
    clean = orchestrate_night(mini_design())
    # Retries are invisible in the ledger of completed transfers...
    assert len(report.link.records) == len(clean.link.records)
    assert report.link.bytes_moved() == clean.link.bytes_moved()
    # ...and visible in the fault accounting.
    assert report.metrics.value("faults.transfer.fail") >= 1


def test_night_torn_ledger_still_replays(tmp_path):
    plan = FaultPlan.parse(["ledger.torn:times=2,match=instance_completed"],
                           seed=0)
    ledger = RunLedger(tmp_path / "torn.jsonl", faults=plan)
    report = orchestrate_night(mini_design(), ledger=ledger, faults=plan)
    assert ledger.torn_events == 2
    replay = replay_ledger(ledger.path)
    # Two instance_completed records were lost to torn lines; the file
    # still parses and the rest of the night's journal survives.
    n_completed = len(report.schedule.records)
    assert replay.count("instance_completed") == n_completed - 2
    assert replay.count("run_completed") == 1
