"""Chaos equivalence: a faulted run's survivors are bit-identical.

The acceptance property of the resilience plane: inject worker crashes,
worker exceptions and store corruption into a batch, and every instance
that completes must match the fault-free run bit for bit — retries
re-enter the same RNG streams because faults fire *before* the simulation
touches its stream.
"""

import numpy as np
import pytest

from repro.core.parallel import (
    InstanceSpec,
    run_instances,
    supervise_instances,
)
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy
from repro.store.cas import ContentStore
from repro.store.keys import instance_key
from repro.store.memo import outcome_from_payload, outcome_payload

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


def specs(n=3, days=8):
    return [
        InstanceSpec(region_code="VT", params={"TAU": 0.25, "SYMP": 0.65},
                     n_days=days, scale=1e-3, seed=100 + 17 * i,
                     label=f"VT-i{i}", asset_seed=0)
        for i in range(n)
    ]


def assert_outcomes_identical(clean, chaotic):
    assert clean.spec == chaotic.spec
    assert np.array_equal(clean.confirmed, chaotic.confirmed)
    assert clean.attack_rate == chaotic.attack_rate
    assert clean.transitions == chaotic.transitions


@pytest.fixture(scope="module")
def baseline():
    return run_instances(specs(), parallel=False,
                         registry=MetricsRegistry())


def test_serial_injected_exceptions_recover_bit_identical(baseline):
    plan = FaultPlan.parse(["worker.exception:times=1"], seed=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs(), parallel=False, retry=FAST_RETRY,
                              faults=plan, registry=reg)
    assert res.ok and res.retries == len(specs())
    for clean, chaotic in zip(baseline, res.results):
        assert_outcomes_identical(clean, chaotic)
    assert reg.value("faults.worker.exception") == len(specs())


def test_serial_crash_rule_raises_in_process(baseline):
    """worker.crash downgrades to a transient raise without a pool."""
    plan = FaultPlan.parse(["worker.crash:times=1,match=i1"], seed=0)
    res = supervise_instances(specs(), parallel=False, retry=FAST_RETRY,
                              faults=plan, registry=MetricsRegistry())
    assert res.ok
    for clean, chaotic in zip(baseline, res.results):
        assert_outcomes_identical(clean, chaotic)


def test_corrupt_store_roundtrip_recovers_bit_identical(baseline, tmp_path):
    plan = FaultPlan.parse(["cas.corrupt:times=1"], seed=0)
    store = ContentStore(tmp_path, faults=plan)
    keys = [instance_key(s) for s in specs()]
    for key, outcome in zip(keys, baseline):
        store.put(key, outcome_payload(outcome))  # every first put corrupt
    assert store.metrics.value("faults.cas.corrupt") == len(keys)
    for spec, key, clean in zip(specs(), keys, baseline):
        assert store.get(key) is None  # detected, quarantined, missed
        store.put(key, outcome_payload(clean))  # recompute-and-rewrite
        got = store.get(key)
        assert got is not None
        assert_outcomes_identical(clean, outcome_from_payload(spec, got))


def test_pooled_worker_crash_recovers_bit_identical(baseline):
    """A hard worker death (os._exit) rebuilds the pool and salvages."""
    plan = FaultPlan.parse(["worker.crash:times=1,match=i0"], seed=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs(), max_workers=2, parallel=True,
                              retry=FAST_RETRY, faults=plan, registry=reg)
    assert res.ok
    assert res.pool_rebuilds >= 1
    for clean, chaotic in zip(baseline, res.results):
        assert_outcomes_identical(clean, chaotic)


def test_slow_fault_changes_nothing_but_time(baseline):
    plan = FaultPlan.parse(["worker.slow:delay=0.01"], seed=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs(), parallel=False, retry=FAST_RETRY,
                              faults=plan, registry=reg)
    assert res.ok and res.retries == 0
    for clean, chaotic in zip(baseline, res.results):
        assert_outcomes_identical(clean, chaotic)
    assert reg.value("faults.worker.slow") == len(specs())


def test_run_instances_with_retry_keeps_historical_contract(baseline):
    """The wrapper still returns a plain list under faults + retries."""
    plan = FaultPlan.parse(["worker.exception:times=1,match=i2"], seed=0)
    out = run_instances(specs(), parallel=False, retry=FAST_RETRY,
                        faults=plan, registry=MetricsRegistry())
    assert isinstance(out, list) and len(out) == len(specs())
    for clean, chaotic in zip(baseline, out):
        assert_outcomes_identical(clean, chaotic)
