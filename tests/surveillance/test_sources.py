"""Multi-source distortion and merging tests."""

import numpy as np
import pytest

from repro.surveillance.sources import (
    DEFAULT_SOURCES,
    JHU,
    NYT,
    SourceSpec,
    merge_sources,
    multi_source_truth,
    observe_through_source,
)
from repro.surveillance.truth import generate_region_truth


@pytest.fixture(scope="module")
def truth():
    return generate_region_truth("VA", n_days=150, seed=2)


def test_source_view_preserves_shape(truth):
    rng = np.random.default_rng(0)
    view = observe_through_source(truth, NYT, rng)
    assert view.daily.shape == truth.daily.shape


def test_revision_lag_zeroes_tail(truth):
    rng = np.random.default_rng(0)
    view = observe_through_source(truth, JHU, rng)
    assert (view.daily[:, -JHU.revision_lag:] == 0).all()


def test_dropout_removes_counties(truth):
    rng = np.random.default_rng(1)
    spec = SourceSpec("lossy", revision_lag=0, dropout=0.5,
                      dump_probability=0.0)
    view = observe_through_source(truth, spec, rng)
    missing = (view.cumulative[:, -1] == 0) & (truth.cumulative[:, -1] > 0)
    assert missing.sum() > truth.n_counties * 0.25


def test_dump_conserves_totals(truth):
    rng = np.random.default_rng(2)
    spec = SourceSpec("dumpy", revision_lag=0, dropout=0.0,
                      dump_probability=0.3)
    view = observe_through_source(truth, spec, rng)
    np.testing.assert_allclose(
        view.cumulative[:, -1], truth.cumulative[:, -1])


def test_merge_at_least_each_source(truth):
    rng = np.random.default_rng(3)
    views = [observe_through_source(truth, s, rng) for s in DEFAULT_SOURCES]
    merged = merge_sources(views)
    for v in views:
        assert (merged.cumulative >= v.cumulative - 1e-9).all()


def test_merge_monotone(truth):
    rng = np.random.default_rng(4)
    merged = multi_source_truth(truth, rng)
    assert (np.diff(merged.cumulative, axis=1) >= -1e-9).all()


def test_merge_recovers_full_total(truth):
    """With at least one lossless-total source, the merge recovers the
    true final cumulative count."""
    rng = np.random.default_rng(5)
    merged = multi_source_truth(truth, rng)
    np.testing.assert_allclose(
        merged.state_cumulative()[-1], truth.state_cumulative()[-1])


def test_merge_rejects_empty():
    with pytest.raises(ValueError):
        merge_sources([])


def test_merge_rejects_mismatched(truth):
    other = generate_region_truth("MD", n_days=150, seed=2)
    with pytest.raises(ValueError, match="disagree"):
        merge_sources([truth, other])
