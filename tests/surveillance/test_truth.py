"""Synthetic surveillance generator tests (Figures 13-14 properties)."""

import numpy as np
import pytest

from repro.surveillance.truth import generate_region_truth
from repro.synthpop.regions import get_region


@pytest.fixture(scope="module")
def ca_truth():
    return generate_region_truth("CA", n_days=210, seed=1)


def test_shapes(ca_truth):
    region = get_region("CA")
    assert ca_truth.n_counties == region.counties
    assert ca_truth.n_days == 210
    assert ca_truth.daily.shape == (region.counties, 210)


def test_cumulative_monotone(ca_truth):
    assert (np.diff(ca_truth.cumulative, axis=1) >= 0).all()


def test_cumulative_matches_daily(ca_truth):
    np.testing.assert_allclose(
        ca_truth.cumulative, np.cumsum(ca_truth.daily, axis=1))


def test_state_sums_counties(ca_truth):
    np.testing.assert_allclose(
        ca_truth.state_cumulative(), ca_truth.cumulative.sum(axis=0))


def test_counts_nonnegative(ca_truth):
    assert (ca_truth.daily >= 0).all()


def test_epidemic_actually_happens(ca_truth):
    assert ca_truth.state_cumulative()[-1] > 1000
    assert ca_truth.counties_with_cases() > ca_truth.n_counties * 0.8


def test_early_days_quiet(ca_truth):
    """Cases start around day ~30+, not at day 0 (Figure 14 take-off)."""
    assert ca_truth.state_cumulative()[10] == 0


def test_counties_span_orders_of_magnitude(ca_truth):
    finals = ca_truth.cumulative[:, -1]
    positive = finals[finals > 0]
    assert positive.max() / max(positive.min(), 1) > 50


def test_latest_by_county(ca_truth):
    latest = ca_truth.latest_by_county()
    assert len(latest) == ca_truth.n_counties
    assert sum(latest.values()) == pytest.approx(
        float(ca_truth.state_cumulative()[-1]))


def test_window(ca_truth):
    w = ca_truth.window(100)
    assert w.n_days == 100
    np.testing.assert_allclose(w.cumulative, ca_truth.cumulative[:, :100])
    with pytest.raises(ValueError):
        ca_truth.window(0)
    with pytest.raises(ValueError):
        ca_truth.window(500)


def test_deterministic():
    a = generate_region_truth("VT", n_days=100, seed=7)
    b = generate_region_truth("VT", n_days=100, seed=7)
    np.testing.assert_array_equal(a.daily, b.daily)


def test_weekend_dip(ca_truth):
    """Weekday reporting effects: weekend days report fewer cases."""
    daily = ca_truth.state_daily()
    days = np.arange(daily.size)
    busy = daily[60:]  # after take-off
    dows = days[60:] % 7
    weekend = busy[np.isin(dows, (5, 6))].mean()
    weekday = busy[~np.isin(dows, (5, 6))].mean()
    assert weekend < weekday
