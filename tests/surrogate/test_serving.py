"""The serving gate and model registry: hits, fallbacks, staleness."""

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry
from repro.store.cas import ContentStore
from repro.surrogate import ModelRegistry, SurrogateGate, train_model

from .conftest import TAUS, make_spec

pytestmark = pytest.mark.fast


def make_gate(registry, **kw):
    kw.setdefault("rtol", 0.5)
    kw.setdefault("metrics", MetricsRegistry())
    return SurrogateGate(registry, **kw)


def test_no_model_is_a_miss(tmp_path):
    gate = make_gate(ModelRegistry(ContentStore(tmp_path / "empty")))
    assert gate.try_answer(make_spec(0.2)) is None
    assert gate.metrics.value("surrogate.miss") == 1


def test_in_distribution_request_is_served_with_bands(trained):
    _store, _corpus, _model, registry = trained
    gate = make_gate(registry)
    payload = gate.try_answer(make_spec(0.25, seed=1234))
    assert payload is not None
    assert str(payload["source"]) == "surrogate"
    assert (payload["confirmed_lo"] <= payload["confirmed"] + 1e-12).all()
    assert (payload["confirmed_hi"] >= payload["confirmed"] - 1e-12).all()
    assert (payload["confirmed_sd"] >= 0).all()
    assert gate.metrics.value("surrogate.hit") == 1


def test_out_of_hull_region_falls_back(trained):
    _store, _corpus, _model, registry = trained
    gate = make_gate(registry)
    assert gate.try_answer(make_spec(0.2, region="CA")) is None
    assert gate.metrics.value("surrogate.fallback") == 1


def test_wrong_horizon_falls_back(trained):
    _store, _corpus, _model, registry = trained
    gate = make_gate(registry)
    assert gate.try_answer(make_spec(0.2, n_days=60)) is None
    assert gate.metrics.value("surrogate.fallback") == 1


def test_tight_rtol_declines_uncertain_requests(trained):
    _store, _corpus, _model, registry = trained
    gate = make_gate(registry, rtol=1e-9)
    assert gate.try_answer(make_spec(0.25)) is None
    assert gate.metrics.value("surrogate.fallback") == 1


def test_gate_rejects_nonpositive_rtol(trained):
    _store, _corpus, _model, registry = trained
    with pytest.raises(ValueError, match="rtol"):
        SurrogateGate(registry, rtol=0.0)


def test_registry_roundtrips_latest_model(trained):
    _store, _corpus, model, registry = trained
    info = registry.latest_info()
    assert info["key"] == model.model_key()
    assert info["n_train"] == len(TAUS)
    loaded = registry.latest()
    assert loaded is not None
    assert loaded.model_key() == model.model_key()


def test_registry_refuses_version_mismatch(trained):
    _store, _corpus, _model, registry = trained
    # Under a different code salt the published model must read as absent.
    assert registry.latest(salt="other-kernel") is None
    assert registry.stale(0, salt="other-kernel")


def test_staleness_tracks_corpus_growth(trained):
    _store, corpus, _model, registry = trained
    assert not registry.stale(len(corpus))
    assert not registry.stale(len(corpus) + registry.retrain_after)
    assert registry.stale(len(corpus) + registry.retrain_after + 1)


def test_gate_picks_up_a_republished_model(trained):
    _store, corpus, model, registry = trained
    gate = make_gate(registry)
    assert gate.model() is not None  # warm the pointer-stat cache
    retrained = train_model(corpus, seed=1)
    registry.publish(retrained)
    fresh = gate.model()
    assert fresh is not None and fresh.seed == 1
    # Restore the session fixture's model for sibling tests.
    registry.publish(model)


def test_surrogate_payload_shape_matches_exact_results(trained):
    # Exact payloads carry no source marker; surrogate ones always do —
    # clients key off its presence.  The shared fields line up so a
    # caller can read confirmed/attack_rate without caring which tier
    # answered.
    store, _corpus, _model, registry = trained
    gate = make_gate(registry)
    payload = gate.try_answer(make_spec(0.25))
    exact = store.get(next(iter(store.keys())))
    assert "source" not in exact and str(payload["source"]) == "surrogate"
    assert {"confirmed", "attack_rate"} <= set(payload)
    assert float(np.asarray(payload["rtol"])) <= 0.5
