"""Shared surrogate fixtures: one small trained setup per session.

Eight tiny VT runs (10 days, 1e-3 scale) sweep TAU, land in a content
store through the memoized fan-out — which journals spec-carrying
completion events — and a model is trained and published once.  Every
test file reads from this shared flywheel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec
from repro.store.cas import ContentStore
from repro.store.ledger import RunLedger
from repro.store.memo import run_instances_memoized
from repro.surrogate import (
    ModelRegistry,
    build_corpus,
    corpus_ledger_path,
    train_model,
)

N_DAYS = 10
TAUS = tuple(float(t) for t in np.linspace(0.15, 0.35, 8))


def make_spec(tau=0.25, seed=0, region="VT", n_days=N_DAYS, scale=1e-3,
              **params):
    """One in-family instance spec (TAU is the swept axis)."""
    p = {"TAU": float(tau), "SYMP": 0.65}
    p.update(params)
    return InstanceSpec(region_code=region, params=p, n_days=n_days,
                        scale=scale, seed=seed, label=f"sur-{tau:.3f}",
                        asset_seed=0)


@pytest.fixture(scope="session")
def trained(tmp_path_factory):
    """(store, corpus, model, registry) over the 8-run TAU sweep."""
    root = tmp_path_factory.mktemp("surrogate-store")
    store = ContentStore(root)
    ledger = RunLedger(corpus_ledger_path(store))
    specs = [make_spec(tau) for tau in TAUS]
    run_instances_memoized(specs, store=store, ledger=ledger, parallel=False)
    corpus = build_corpus(store)
    model = train_model(corpus, seed=0)
    registry = ModelRegistry(store)
    registry.publish(model)
    return store, corpus, model, registry
