"""Surrogate fast-path tests: corpus, emulator, registry, serving."""
