"""Surrogate-in-the-service: fast answers, exact fallback, the flywheel."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.service.queue import DONE, ScenarioQueue
from repro.service.server import ScenarioService
from repro.store.cas import ContentStore
from repro.store.keys import instance_key
from repro.surrogate import (
    ModelRegistry,
    SurrogateGate,
    build_corpus,
    corpus_ledger_path,
)

from .conftest import make_spec

pytestmark = pytest.mark.fast


def make_service(store, registry, **kw):
    gate = SurrogateGate(ModelRegistry(registry.store), rtol=0.5)
    kw.setdefault("parallel", False)
    return ScenarioService(store=store, surrogate=gate, **kw)


def test_confident_request_completes_without_the_broker(trained):
    store, _corpus, _model, registry = trained
    service = make_service(store, registry)
    # The broker is never started: only the surrogate can answer.
    adm = service.submit(make_spec(0.25, seed=777))
    assert adm.admitted and adm.status == "done"
    view = service.status(adm.request_id)
    assert view["state"] == DONE
    assert view["result"]["source"] == "surrogate"
    assert "confirmed_lo" in view["result"]
    snap = service.metrics_snapshot()
    assert snap["surrogate.hit"] == 1
    assert snap["service.completed"] == 1


def test_out_of_distribution_request_enqueues_for_exact_run(trained):
    store, _corpus, _model, registry = trained
    service = make_service(store, registry)
    adm = service.submit(make_spec(0.2, region="CA"))
    assert adm.admitted and adm.status == "queued"
    assert service.metrics_snapshot()["surrogate.fallback"] == 1
    service.queue.cancel_pending()


def test_in_flight_scenario_coalesces_instead_of_emulating(trained):
    store, _corpus, _model, registry = trained
    service = make_service(store, registry)
    # Force an identical key into the queue first (gate disabled for it).
    spec = make_spec(0.25, seed=424)
    service.surrogate, gate = None, service.surrogate
    first = service.submit(spec)
    service.surrogate = gate
    assert first.status == "queued"
    joined = service.submit(make_spec(0.25, seed=424))
    # Joining the exact in-flight computation beats an emulated answer.
    assert joined.status == "coalesced"
    assert service.metrics_snapshot().get("surrogate.hit", 0) == 0
    service.queue.cancel_pending()


def test_surrogate_service_defaults_ledger_to_corpus_journal(tmp_path):
    store = ContentStore(tmp_path / "store")
    gate = SurrogateGate(ModelRegistry(store))
    service = ScenarioService(store=store, surrogate=gate, parallel=False)
    assert service.broker.ledger is not None
    assert service.broker.ledger.path == corpus_ledger_path(store)


def test_exact_completions_feed_the_next_retrain(tmp_path):
    # The active-learning loop: with no model yet, a request runs exactly
    # and its completion lands in the corpus journal for the next train.
    store = ContentStore(tmp_path / "store")
    gate = SurrogateGate(ModelRegistry(store), metrics=MetricsRegistry())
    service = ScenarioService(store=store, surrogate=gate, parallel=False)
    adm = service.submit(make_spec(0.3))
    assert adm.status == "queued"  # miss: no model published yet
    service.broker.run_once()
    assert service.queue.status(adm.request_id).state == DONE
    corpus = build_corpus(store)
    assert len(corpus) == 1
    assert service.metrics_snapshot()["surrogate.miss"] == 1


def test_admit_resolved_counts_and_finishes_immediately():
    q = ScenarioQueue(metrics=MetricsRegistry())
    spec = make_spec(0.2)
    adm = q.admit_resolved(spec, result={"answer": 42},
                           key=instance_key(spec))
    rec = q.wait(adm.request_id, timeout_s=0.1)
    assert rec is not None and rec.state == DONE
    assert rec.result == {"answer": 42}
    assert not q.in_flight(adm.key)
    assert q.metrics.value("service.completed") == 1
