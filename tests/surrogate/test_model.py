"""Emulator training, prediction, uncertainty and serialization."""

import numpy as np
import pytest

from repro.surrogate import featurize_spec, train_model
from repro.surrogate.model import FeatureSpace

from .conftest import TAUS, make_spec

pytestmark = pytest.mark.fast


def test_feature_space_tracks_active_dimensions(trained):
    _store, corpus, model, _registry = trained
    # Only TAU varies across the sweep; every other feature is pinned.
    assert model.space.d_active == 1
    names = list(corpus.names)
    assert bool(model.space.active[names.index("tau")])
    unit = model.space.to_unit(corpus.features)
    assert unit.shape == (len(corpus), 1)
    assert unit.min() == pytest.approx(0.0) and unit.max() == pytest.approx(1.0)


def test_feature_space_hull_rejects_moved_constant_dims(trained):
    _store, _corpus, model, _registry = trained
    inside = featurize_spec(make_spec(0.25))
    assert model.space.contains(inside, pad=0.1)
    # A new region flips one-hot dims the corpus never varied: OOD.
    other_region = featurize_spec(make_spec(0.25, region="CA"))
    assert not model.space.contains(other_region, pad=0.1)
    # Mild extrapolation on the active dim is allowed, far is not.
    near = featurize_spec(make_spec(max(TAUS) + 0.01))
    far = featurize_spec(make_spec(max(TAUS) + 0.2))
    assert model.space.contains(near, pad=0.1)
    assert not model.space.contains(far, pad=0.1)


def test_prediction_tracks_truth_at_training_points(trained):
    _store, corpus, model, _registry = trained
    for i in range(len(corpus)):
        pred = model.predict_features(corpus.features[i])
        truth = corpus.outputs[i]
        peak = max(float(np.max(truth)), 1e-9)
        rel_rmse = float(np.sqrt(np.mean((pred.mean - truth) ** 2))) / peak
        assert rel_rmse < 0.25
        assert pred.in_hull
        assert (pred.sd >= 0).all()
        assert 0.0 <= pred.attack_rate <= 1.0


def test_uncertainty_grows_toward_the_hull_edge(trained):
    _store, _corpus, model, _registry = trained
    mid = model.predict_features(featurize_spec(make_spec(0.25)))
    edge = model.predict_features(
        featurize_spec(make_spec(max(TAUS) + 0.01)))
    assert edge.rtol > mid.rtol


def test_bands_bracket_the_mean_and_clip_at_zero(trained):
    _store, _corpus, model, _registry = trained
    pred = model.predict_features(featurize_spec(make_spec(0.2)))
    lo, hi = pred.bands()
    assert (lo <= pred.mean + 1e-12).all()
    assert (hi >= pred.mean - 1e-12).all()
    assert (lo >= 0).all()


def test_payload_roundtrip_preserves_predictions(trained):
    _store, _corpus, model, _registry = trained
    back = type(model).from_payload(model.to_payload())
    x = featurize_spec(make_spec(0.23))
    a, b = model.predict_features(x), back.predict_features(x)
    np.testing.assert_allclose(a.mean, b.mean)
    np.testing.assert_allclose(a.sd, b.sd)
    assert a.attack_rate == pytest.approx(b.attack_rate)
    assert back.model_key() == model.model_key()
    assert back.names == model.names
    assert back.version == model.version


def test_training_is_seed_deterministic(trained):
    _store, corpus, model, _registry = trained
    again = train_model(corpus, seed=0)
    assert again.model_key() == model.model_key()
    for gp_a, gp_b in zip(again.gps, model.gps):
        np.testing.assert_array_equal(gp_a.rho, gp_b.rho)
        assert gp_a.lam == gp_b.lam
        assert gp_a.nugget == gp_b.nugget


def test_train_refuses_a_tiny_corpus(trained):
    _store, corpus, _model, _registry = trained
    with pytest.raises(ValueError, match="at least 3"):
        train_model(corpus.subset([0, 1]))


def test_feature_space_fit_validation():
    with pytest.raises(ValueError, match="no rows"):
        FeatureSpace.fit(np.empty((0, 3)))
