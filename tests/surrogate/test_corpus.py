"""Corpus extraction: featurization, ledger replay, stale-code filtering."""

import numpy as np
import pytest

from repro.store.keys import instance_key
from repro.surrogate import (
    build_corpus,
    feature_names,
    featurize_spec,
    spec_from_record,
    spec_record,
)
from repro.surrogate.corpus import corpus_version

from .conftest import N_DAYS, TAUS, make_spec

pytestmark = pytest.mark.fast


def test_featurize_is_deterministic():
    a = featurize_spec(make_spec(0.22))
    b = featurize_spec(make_spec(0.22))
    np.testing.assert_array_equal(a, b)
    assert a.shape == (len(feature_names()),)


def test_absent_param_featurizes_like_its_default():
    # The runner treats a missing knob as its default; features must too.
    explicit = make_spec(0.18, SH_COMPLIANCE=0.0)
    implicit = make_spec(0.18)
    np.testing.assert_array_equal(featurize_spec(explicit),
                                  featurize_spec(implicit))


def test_seed_is_excluded_from_features():
    # The emulator predicts the scenario, not one replicate's stream.
    np.testing.assert_array_equal(featurize_spec(make_spec(0.2, seed=0)),
                                  featurize_spec(make_spec(0.2, seed=99)))


def test_region_one_hot_distinguishes_regions():
    vt = featurize_spec(make_spec(0.2, region="VT"))
    va = featurize_spec(make_spec(0.2, region="VA"))
    assert not np.array_equal(vt, va)
    names = feature_names()
    assert vt[names.index("region:VT")] == 1.0
    assert vt[names.index("region:VA")] == 0.0


def test_spec_record_roundtrip_rekeys_identically():
    spec = make_spec(0.27, seed=3)
    back = spec_from_record(spec_record(spec))
    assert instance_key(back) == instance_key(spec)


def test_build_corpus_resolves_every_completed_run(trained):
    store, corpus, _model, _registry = trained
    assert len(corpus) == len(TAUS)
    assert corpus.n_days == N_DAYS
    assert corpus.outputs.shape == (len(TAUS), N_DAYS + 1)
    assert len(set(corpus.keys)) == len(TAUS)
    assert corpus.version == corpus_version()


def test_build_corpus_drops_stale_code_versions(trained):
    # Events were keyed under the current salt; a different salt means a
    # different kernel produced them — nothing is trainable.
    store, _corpus, _model, _registry = trained
    stale = build_corpus(store, salt="some-other-kernel")
    assert len(stale) == 0


def test_corpus_digest_is_order_independent(trained):
    _store, corpus, _model, _registry = trained
    shuffled = corpus.subset(np.random.default_rng(0).permutation(
        len(corpus)))
    assert shuffled.digest() == corpus.digest()
    assert corpus.subset([0, 1]).digest() != corpus.digest()
