"""The sharded service plane: cross-process coalescing, rolling drain.

These tests spawn real shard worker processes against one shared store
(CAS + lease table + terminal spool) and drive them over HTTP — the
multi-process contracts the single-process suite cannot cover:

- an identical scenario hitting two different shards executes once
  fleet-wide, and every caller gets the bit-identical payload;
- draining one shard mid-stream loses zero requests: its terminal
  records keep answering from the spool, and new submissions for its
  keys reroute to live siblings.
"""

import json
import threading

import pytest

from repro.core.parallel import InstanceSpec
from repro.obs.registry import MetricsRegistry
from repro.service import (
    Router,
    ServiceClient,
    ShardFleet,
    make_router_server,
    shard_of,
)
from repro.service.shard import (
    read_spool,
    rid_shard,
    spool_path,
)
from repro.store import ContentStore, LeaseTable, instance_key
from repro.store.memo import supervise_instances_memoized

SALT = "shard-tests"


def scenario(tau, *, days=6):
    return {"region": "VT", "params": {"TAU": tau}, "days": days,
            "scale": 1e-4, "seed": 3}


def spec_of(tau, *, days=6):
    return InstanceSpec(region_code="VT", params={"TAU": tau}, n_days=days,
                        scale=1e-4, seed=3, label="shard-test")


class TestAddressing:
    def test_shard_of_is_key_hash_mod_n(self):
        assert shard_of("0f", 4) == 15 % 4
        assert shard_of("10", 4) == 0

    def test_same_key_same_shard(self):
        key = instance_key(spec_of(0.2), salt=SALT)
        assert shard_of(key, 4) == shard_of(key, 4)

    def test_rid_shard_parses_the_prefix(self):
        assert rid_shard("s3-r000042") == 3
        assert rid_shard("s12-r000001") == 12
        assert rid_shard("r000042") is None
        assert rid_shard("sX-r000042") is None


class TestLeaseCoalescingInProcess:
    """The memo-level contract, with two lease handles over one store."""

    def test_concurrent_memoized_fanouts_execute_once(self, tmp_path):
        store_a = ContentStore(tmp_path / "store")
        store_b = ContentStore(tmp_path / "store")
        leases_a = LeaseTable(tmp_path / "store" / "leases", owner="a")
        leases_b = LeaseTable(tmp_path / "store" / "leases", owner="b")
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        spec = spec_of(0.31)
        barrier = threading.Barrier(2)
        results = {}

        def run(name, store, leases, reg):
            barrier.wait()
            res = supervise_instances_memoized(
                [spec], store=store, leases=leases, registry=reg,
                parallel=False, salt=SALT)
            results[name] = res.results[0]

        threads = [
            threading.Thread(target=run,
                             args=("a", store_a, leases_a, reg_a)),
            threading.Thread(target=run,
                             args=("b", store_b, leases_b, reg_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Exactly one execution fleet-wide; the loser either waited on
        # the winner's lease (remote hit) or read the published blob.
        misses = (reg_a.value("memo.misses") + reg_b.value("memo.misses"))
        assert misses == 1
        served = (reg_a.value("memo.hits") + reg_b.value("memo.hits")
                  + reg_a.value("memo.remote_hits")
                  + reg_b.value("memo.remote_hits"))
        assert served == 1
        a, b = results["a"], results["b"]
        assert (a.confirmed == b.confirmed).all()
        assert a.attack_rate == b.attack_rate

    def test_leases_released_after_the_batch(self, tmp_path):
        store = ContentStore(tmp_path / "store")
        leases = LeaseTable(tmp_path / "store" / "leases", owner="a")
        spec = spec_of(0.33)
        key = instance_key(spec, salt=SALT)
        supervise_instances_memoized([spec], store=store, leases=leases,
                                     parallel=False, salt=SALT)
        assert not leases.held(key)


@pytest.fixture()
def fleet(tmp_path):
    fleet = ShardFleet(tmp_path / "store", 2, batch_size=2,
                       parallel=False, salt=SALT)
    fleet.start()
    yield fleet
    fleet.stop()


def shard_client(fleet, index, timeout_s=60.0):
    host, port = fleet.shards[index].address
    return ServiceClient(f"http://{host}:{port}", timeout_s=timeout_s)


class TestCrossProcessCoalescing:
    def test_same_key_on_two_shards_executes_once(self, fleet):
        """Submit the identical scenario directly to BOTH shard workers
        (bypassing key routing — the degraded-routing case the lease
        table exists for): one execution, bit-identical payloads."""
        clients = [shard_client(fleet, 0), shard_client(fleet, 1)]
        adms = [c.submit(scenario(0.27)) for c in clients]
        assert {rid_shard(adm["id"]) for adm in adms} == {0, 1}
        assert adms[0]["key"] == adms[1]["key"]

        views = [c.wait(adm["id"], timeout_s=120.0)
                 for c, adm in zip(clients, adms)]
        assert [v["state"] for v in views] == ["done", "done"]
        # Bit-identical across processes: both JSON payloads are the
        # exact float64 series of the one execution's CAS blob.
        assert views[0]["result"] == views[1]["result"]

        misses = sum(c.metrics().get("memo.misses", 0) for c in clients)
        assert misses == 1


class TestRollingDrain:
    def test_drain_loses_zero_requests(self, fleet, tmp_path):
        router = Router.for_fleet(fleet)
        server = make_router_server(router)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}",
                timeout_s=60.0)
            taus = [0.21, 0.24, 0.27, 0.3, 0.33, 0.36]
            adms = [client.submit(scenario(tau)) for tau in taus]
            owners = {rid_shard(adm["id"]) for adm in adms}
            assert owners == {0, 1}  # both shards own some of the burst

            # Rolling restart step: SIGTERM shard 0 mid-burst.  It stops
            # admitting, finishes everything it accepted, spools each
            # terminal record, and exits.
            assert fleet.drain_shard(0, timeout_s=120.0)
            assert not fleet.shards[0].alive()

            # Zero lost requests: every admitted id still reaches a
            # terminal answer through the router — live shards directly,
            # the drained shard via its spool + the shared CAS.
            views = {adm["id"]: client.wait(adm["id"], timeout_s=120.0)
                     for adm in adms}
            assert all(v["state"] == "done" for v in views.values())
            for adm in adms:
                assert views[adm["id"]]["result"]["confirmed"]

            # The drained shard's answers really came from its spool.
            spool = read_spool(spool_path(fleet.store_root, 0))
            drained = [adm["id"] for adm in adms
                       if rid_shard(adm["id"]) == 0]
            assert drained
            for rid in drained:
                assert spool[rid]["state"] == "done"
            assert router.registry.value("router.spool_hits") >= 1

            # New submissions for keys owned by the dead shard reroute
            # to the live sibling and still complete.
            from repro.service.api import spec_from_request

            rerouted = None
            for tau in (0.41, 0.44, 0.47, 0.5):
                # Compute the key exactly the way the router does, so we
                # pick a tau whose owner really is the drained shard.
                spec, _ = spec_from_request(scenario(tau))
                key = instance_key(spec, salt=SALT)
                if shard_of(key, 2) == 0:
                    rerouted = client.submit(scenario(tau))
                    break
            assert rerouted is not None
            assert rid_shard(rerouted["id"]) == 1
            assert router.registry.value("router.rerouted_submits") >= 1
            view = client.wait(rerouted["id"], timeout_s=120.0)
            assert view["state"] == "done"

            # Health reflects the degraded fleet.
            health = client.health()
            assert health["status"] == "degraded"
            states = {s["shard"]: s["status"] for s in health["shards"]}
            assert states[0] == "down" and states[1] == "ok"
        finally:
            server.shutdown()
            server.server_close()

    def test_spool_survives_torn_trailing_line(self, tmp_path):
        path = tmp_path / "spool" / "shard0.jsonl"
        path.parent.mkdir(parents=True)
        good = json.dumps({"event": "request_terminal", "id": "s0-r000001",
                           "key": "ab" * 32, "state": "done"})
        path.write_text(good + "\n" + good[: len(good) // 2])
        records = read_spool(path)
        assert set(records) == {"s0-r000001"}
