"""The versioned /v1 surface: routing table, envelope, legacy aliases.

Contract tests for :mod:`repro.service.api`: every endpoint lives under
``/v1``, every non-2xx body is the uniform error envelope with a code
from the documented enum, legacy unversioned paths still answer (with
``Deprecation`` headers), and the client raises typed exceptions off the
envelope's ``code`` — not off message prose.
"""

import http.client
import json
import threading

import pytest

from repro.service import ScenarioService, make_server
from repro.service.api import (
    ERROR_CODES,
    STATUS_OF_CODE,
    ApiError,
    BadRequest,
    deprecation_headers,
    error_envelope,
    resolve,
)
from repro.service.client import (
    DrainingError,
    NotFoundError,
    QueueFullError,
    ServiceClient,
    ServiceError,
    error_from_payload,
)

pytestmark = pytest.mark.fast


class TestRoutingTable:
    def test_versioned_paths_resolve(self):
        for method, path, name in [
                ("GET", "/v1/healthz", "healthz"),
                ("GET", "/v1/metrics", "metrics"),
                ("GET", "/v1/scenarios", "list_scenarios"),
                ("GET", "/v1/scenarios/r000001", "get_scenario"),
                ("POST", "/v1/scenarios", "submit_scenario")]:
            res = resolve(method, path)
            assert res is not None and res.route.name == name
            assert not res.deprecated

    def test_path_args_are_captured(self):
        res = resolve("GET", "/v1/scenarios/s2-r000042")
        assert res.args == {"request_id": "s2-r000042"}

    def test_query_is_parsed(self):
        res = resolve("GET", "/v1/scenarios?state=done&limit=5")
        assert res.query == {"state": "done", "limit": "5"}

    def test_legacy_paths_resolve_as_deprecated_aliases(self):
        for path, name in [("/healthz", "healthz"),
                           ("/metrics", "metrics"),
                           ("/scenarios", "list_scenarios"),
                           ("/scenarios/r000001", "get_scenario")]:
            res = resolve("GET", path)
            assert res is not None and res.route.name == name
            assert res.deprecated
            assert res.canonical_path == "/v1" + path

    def test_unknown_path_resolves_to_none(self):
        assert resolve("GET", "/v1/nope") is None
        assert resolve("DELETE", "/v1/scenarios") is None

    def test_trailing_slash_is_tolerated(self):
        assert resolve("GET", "/v1/healthz/").route.name == "healthz"

    def test_deprecation_headers_point_at_the_successor(self):
        headers = deprecation_headers("/v1/healthz")
        assert headers["Deprecation"] == "true"
        assert "successor-version" in headers["Link"]
        assert "/v1/healthz" in headers["Link"]


class TestEnvelope:
    def test_error_envelope_shape(self):
        body = error_envelope("queue_full", "full", retry_after_s=2.0)
        assert body == {"error": {"code": "queue_full", "message": "full",
                                  "retry_after_s": 2.0}}

    def test_retry_after_omitted_when_unset(self):
        assert "retry_after_s" not in error_envelope("not_found", "x")["error"]

    def test_api_error_maps_codes_to_statuses(self):
        for code in ERROR_CODES:
            assert ApiError(code, "m").status == STATUS_OF_CODE[code]

    def test_api_error_rejects_unknown_codes(self):
        with pytest.raises(ValueError):
            ApiError("made_up", "m")

    def test_bad_request_is_a_value_error(self):
        # Pre-envelope callers caught ValueError; that contract holds.
        with pytest.raises(ValueError):
            raise BadRequest("nope")
        assert BadRequest("nope").status == 400

    def test_retry_after_header(self):
        err = ApiError("queue_full", "m", retry_after_s=1.5)
        assert err.headers() == {"Retry-After": "1.500"}
        assert ApiError("not_found", "m").headers() == {}


class TestClientTyping:
    def test_codes_map_to_typed_exceptions(self):
        cases = [
            ("queue_full", 429, QueueFullError),
            ("draining", 503, DrainingError),
            ("not_found", 404, NotFoundError),
            ("quarantined", 500, ServiceError),
            ("bad_request", 400, ServiceError),
        ]
        for code, status, exc_type in cases:
            exc = error_from_payload(status, error_envelope(code, "m"))
            assert isinstance(exc, exc_type)
            assert exc.code == code
            assert exc.status == status

    def test_queue_full_carries_retry_after(self):
        exc = error_from_payload(
            429, error_envelope("queue_full", "m", retry_after_s=3.5))
        assert isinstance(exc, QueueFullError)
        assert exc.retry_after_s == 3.5

    def test_legacy_flat_error_body_still_works(self):
        exc = error_from_payload(429, {"error": "full", "retry_after_s": 2.0})
        assert isinstance(exc, QueueFullError)
        assert exc.retry_after_s == 2.0


@pytest.fixture()
def service(tmp_path):
    # Broker deliberately NOT started: submissions stay queued, so
    # admission-control behavior is deterministic.
    from repro.store.cas import ContentStore

    return ScenarioService(store=ContentStore(tmp_path / "store"),
                           capacity=3)


@pytest.fixture()
def server(service):
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def raw_request(server, method, path, body=None):
    """One HTTP round-trip returning (status, headers, json payload)."""
    conn = http.client.HTTPConnection(*server.server_address, timeout=10)
    try:
        payload = None if body is None else json.dumps(body).encode()
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), json.loads(resp.read())
    finally:
        conn.close()


def submission(tau, priority=0):
    return {"region": "VT", "params": {"TAU": tau}, "days": 5,
            "scale": 1e-4, "priority": priority}


class TestHttpSurface:
    def test_unknown_route_is_an_enveloped_404(self, server):
        status, _, payload = raw_request(server, "GET", "/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_unknown_id_is_an_enveloped_404(self, server):
        status, _, payload = raw_request(server, "GET",
                                         "/v1/scenarios/r999999")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_bad_submission_is_an_enveloped_400(self, server):
        status, _, payload = raw_request(
            server, "POST", "/v1/scenarios",
            {"region": "NOWHERE", "params": {}})
        assert status == 400
        assert payload["error"]["code"] == "bad_request"
        assert "NOWHERE" in payload["error"]["message"]

    def test_queue_full_envelope_and_retry_after_header(self, server):
        for i in range(3):
            status, _, _ = raw_request(server, "POST", "/v1/scenarios",
                                       submission(0.1 + i / 100))
            assert status == 202
        status, headers, payload = raw_request(
            server, "POST", "/v1/scenarios", submission(0.99))
        assert status == 429
        assert payload["error"]["code"] == "queue_full"
        assert payload["error"]["retry_after_s"] > 0
        assert float(headers["Retry-After"]) > 0

    def test_draining_envelope(self, service, server):
        service.queue.close()
        status, _, payload = raw_request(server, "POST", "/v1/scenarios",
                                         submission(0.5))
        assert status == 503
        assert payload["error"]["code"] == "draining"

    def test_legacy_alias_answers_with_deprecation_headers(self, server):
        status, headers, payload = raw_request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert headers["Deprecation"] == "true"
        assert 'rel="successor-version"' in headers["Link"]
        assert "/v1/healthz" in headers["Link"]

    def test_versioned_path_has_no_deprecation_headers(self, server):
        _, headers, _ = raw_request(server, "GET", "/v1/healthz")
        assert "Deprecation" not in headers

    def test_legacy_submit_alias_works(self, server):
        status, headers, payload = raw_request(server, "POST", "/scenarios",
                                               submission(0.2))
        assert status == 202
        assert payload["id"]
        assert headers["Deprecation"] == "true"

    def test_client_raises_not_found(self, server):
        client = ServiceClient(
            "http://%s:%d" % server.server_address, timeout_s=10)
        with pytest.raises(NotFoundError):
            client.status("r999999")


class TestListing:
    def test_pagination_walks_the_registry_in_id_order(self, server):
        client = ServiceClient(
            "http://%s:%d" % server.server_address, timeout_s=10)
        ids = [client.submit(submission(0.1 + i / 100))["id"]
               for i in range(3)]
        page1 = client.list(limit=2)
        assert [v["id"] for v in page1["scenarios"]] == ids[:2]
        assert page1["next_cursor"] == ids[1]
        page2 = client.list(limit=2, cursor=page1["next_cursor"])
        assert [v["id"] for v in page2["scenarios"]] == ids[2:]
        assert page2["next_cursor"] is None

    def test_state_filter(self, server):
        client = ServiceClient(
            "http://%s:%d" % server.server_address, timeout_s=10)
        client.submit(submission(0.3))
        assert client.list(state="queued")["count"] == 1
        assert client.list(state="done")["count"] == 0

    def test_bad_state_is_an_enveloped_400(self, server):
        status, _, payload = raw_request(server, "GET",
                                         "/v1/scenarios?state=bogus")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_listing_views_omit_result_payloads(self, service, server):
        client = ServiceClient(
            "http://%s:%d" % server.server_address, timeout_s=10)
        adm = client.submit(submission(0.4))
        rec = service.queue.status(adm["id"])
        service.queue.complete(rec.key, {"confirmed": __import__(
            "numpy").zeros(3)})
        views = client.list(state="done")["scenarios"]
        assert views and "result" not in views[0]
        # ...but the individual poll carries it.
        assert "result" in client.status(adm["id"])
