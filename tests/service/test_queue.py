"""Admission queue: priority, deterministic aging, coalescing, backpressure."""

import pytest

from repro.core.parallel import InstanceSpec
from repro.service.queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    ScenarioQueue,
)

pytestmark = pytest.mark.fast


def make_spec(i=0, tau=0.25):
    return InstanceSpec(region_code="VT", params={"TAU": tau},
                        n_days=10, scale=1e-3, seed=100 + i,
                        label=f"q{i}")


def test_submit_admits_and_tracks():
    q = ScenarioQueue()
    adm = q.submit(make_spec(0))
    assert adm.admitted and adm.status == "queued"
    assert adm.request_id == "r000001"
    assert q.depth() == 1
    rec = q.status(adm.request_id)
    assert rec.state == QUEUED and rec.key == adm.key
    assert q.metrics.value("service.admitted") == 1
    assert q.metrics.value("service.queue_depth") == 1


def test_unknown_request_is_none():
    q = ScenarioQueue()
    assert q.status("r999999") is None
    assert q.wait("r999999") is None


def test_backpressure_rejects_with_retry_hint():
    q = ScenarioQueue(capacity=2, retry_after_hint_s=0.5)
    q.submit(make_spec(0))
    q.submit(make_spec(1))
    adm = q.submit(make_spec(2))
    assert not adm.admitted
    assert adm.status == "rejected" and adm.reason == "full"
    assert adm.retry_after_s == pytest.approx(0.5)
    assert adm.request_id is None
    assert q.metrics.value("service.rejected") == 1
    # Coalescing joins are always admitted: they add no load.
    joined = q.submit(make_spec(0))
    assert joined.admitted and joined.status == "coalesced"


def test_draining_queue_rejects_everything():
    q = ScenarioQueue()
    q.close()
    adm = q.submit(make_spec(0))
    assert not adm.admitted and adm.reason == "draining"


def test_coalescing_same_key_one_entry():
    q = ScenarioQueue()
    a = q.submit(make_spec(0))
    b = q.submit(make_spec(0))
    assert b.status == "coalesced" and b.key == a.key
    assert q.depth() == 1
    assert q.metrics.value("service.coalesced") == 1
    claims = q.claim(4)
    assert len(claims) == 1
    assert claims[0].request_ids == (a.request_id, b.request_id)


def test_claim_order_is_priority_then_fifo():
    q = ScenarioQueue()
    low = q.submit(make_spec(0), priority=0)
    high = q.submit(make_spec(1), priority=5)
    low2 = q.submit(make_spec(2), priority=0)
    keys = [c.key for c in q.claim(3)]
    assert keys == [high.key, low.key, low2.key]


def test_deterministic_aging_prevents_starvation():
    # One background entry vs a steady urgent flood that would win on raw
    # priority forever.  Each admission that passes over the waiting entry
    # ages it, so it must be served within a bounded number of rounds.
    q = ScenarioQueue(aging_every=2)
    old = q.submit(make_spec(0), priority=0)
    served = []
    for i in range(1, 10):
        q.submit(make_spec(i), priority=2)
        served.append(q.claim(1)[0].key)
        if old.key in served:
            break
    # effective = 0 + admissions_since // 2 catches a priority-2 flood
    # after a handful of rounds (deterministically: round 3 here).
    assert old.key in served
    assert len(served) == 3


def test_coalescing_join_reprioritizes_queued_entry():
    q = ScenarioQueue()
    a = q.submit(make_spec(0), priority=0)
    b = q.submit(make_spec(1), priority=3)
    # Urgent duplicate of the first scenario promotes the queued entry.
    j = q.submit(make_spec(0), priority=9)
    assert j.status == "coalesced"
    assert q.metrics.value("service.reprioritized") == 1
    assert q.claim(1)[0].key == a.key
    assert q.status(a.request_id).priority == 9
    assert b.key != a.key


def test_running_entry_is_not_preempted():
    q = ScenarioQueue()
    a = q.submit(make_spec(0), priority=0)
    (claim,) = q.claim(1)
    assert claim.key == a.key
    # A late urgent join coalesces onto the running entry but cannot
    # re-order it (its RNG streams are already committed) ...
    j = q.submit(make_spec(0), priority=9)
    assert j.status == "coalesced"
    assert q.metrics.value("service.reprioritized") == 0
    assert not q.reprioritize(a.request_id, 99)
    # ... and still receives the one result.
    q.complete(claim.key, {"x": 1})
    assert q.status(j.request_id).state == DONE
    assert q.status(j.request_id).result == {"x": 1}


def test_complete_resolves_every_joined_request():
    q = ScenarioQueue()
    a = q.submit(make_spec(0))
    b = q.submit(make_spec(0))
    (claim,) = q.claim(1)
    assert q.status(a.request_id).state == RUNNING
    n = q.complete(claim.key, {"payload": 42})
    assert n == 2
    for adm in (a, b):
        rec = q.status(adm.request_id)
        assert rec.state == DONE
        assert rec.result == {"payload": 42}
        assert rec.total_s is not None
    assert q.metrics.value("service.completed") == 2
    assert q.depth() == 0


def test_fail_is_terminal_with_triage():
    q = ScenarioQueue()
    a = q.submit(make_spec(0))
    (claim,) = q.claim(1)
    q.fail(claim.key, error="worker died", kind="transient")
    rec = q.status(a.request_id)
    assert rec.state == FAILED
    assert rec.error == "worker died" and rec.kind == "transient"
    assert q.metrics.value("service.failed") == 1
    # wait() returns immediately on a terminal record.
    assert q.wait(a.request_id, timeout_s=0.1).state == FAILED


def test_cancel_pending_terminalizes_queued_only():
    q = ScenarioQueue()
    running = q.submit(make_spec(0))
    q.claim(1)
    queued = q.submit(make_spec(1))
    n = q.cancel_pending()
    assert n == 1
    assert q.status(queued.request_id).state == CANCELLED
    assert q.status(running.request_id).state == RUNNING
    assert q.metrics.value("service.cancelled") == 1


def test_finished_records_are_bounded():
    q = ScenarioQueue(max_finished=2)
    admitted = [q.submit(make_spec(i)) for i in range(4)]
    for claim in q.claim(4):
        q.complete(claim.key, {})
    # Only the two newest finished records survive.
    assert q.status(admitted[0].request_id) is None
    assert q.status(admitted[1].request_id) is None
    assert q.status(admitted[3].request_id).state == DONE


def test_wait_for_work_sees_queued_and_closed():
    q = ScenarioQueue()
    assert not q.wait_for_work(timeout_s=0.01)
    q.submit(make_spec(0))
    assert q.wait_for_work(timeout_s=0.01)
    q.claim(1)
    assert not q.wait_for_work(timeout_s=0.01)
    q.close()
    assert q.wait_for_work(timeout_s=0.01)


def test_validation():
    with pytest.raises(ValueError):
        ScenarioQueue(capacity=0)
    with pytest.raises(ValueError):
        ScenarioQueue(aging_every=0)
