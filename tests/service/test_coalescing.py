"""Request coalescing under concurrent submitters.

The satellite contract: N threads submit the identical scenario, exactly
one simulation executes, and every submitter receives a bit-identical
payload.
"""

import threading

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec
from repro.obs.registry import MetricsRegistry
from repro.service.broker import Broker
from repro.service.queue import DONE, ScenarioQueue
from repro.store.cas import ContentStore

pytestmark = pytest.mark.fast

N_SUBMITTERS = 8


def make_spec():
    # Every submitter builds its own (equal) spec object: coalescing must
    # key on the canonical cache key, not object identity.
    return InstanceSpec(region_code="VT", params={"TAU": 0.3},
                       n_days=10, scale=1e-3, seed=77, label="co")


def submit_all(queue, n=N_SUBMITTERS):
    """n threads race through a barrier into queue.submit."""
    barrier = threading.Barrier(n)
    admissions = [None] * n

    def worker(slot):
        barrier.wait()
        admissions[slot] = queue.submit(make_spec())

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return admissions


def test_concurrent_identical_submits_execute_once(tmp_path):
    # Broker idle until all submitters are in: deterministic counters.
    reg = MetricsRegistry()
    queue = ScenarioQueue(metrics=reg)
    store = ContentStore(tmp_path / "store")
    broker = Broker(queue, store=store, registry=reg, parallel=False)

    admissions = submit_all(queue)
    assert all(adm.admitted for adm in admissions)
    assert len({adm.key for adm in admissions}) == 1
    assert queue.depth() == 1  # one entry, N-1 joins
    assert reg.value("service.admitted") == 1
    assert reg.value("service.coalesced") == N_SUBMITTERS - 1

    broker.run_once()

    # Exactly one simulation executed for the whole stampede.
    assert reg.value("runner.instances") == 1
    assert store.stats.puts == 1
    assert reg.value("memo.misses") == 1
    assert reg.value("service.completed") == N_SUBMITTERS

    payloads = [queue.status(adm.request_id).result for adm in admissions]
    reference = payloads[0]
    for payload in payloads:
        assert queue.status(admissions[0].request_id).state == DONE
        for name in reference:
            np.testing.assert_array_equal(payload[name], reference[name])
            assert payload[name].dtype == reference[name].dtype


def test_concurrent_submits_against_live_broker(tmp_path):
    # The racy variant: the broker may claim the entry mid-stampede, so a
    # late submitter can open a second entry — but the store guarantees
    # at most one *execution* and bit-identical results throughout.
    reg = MetricsRegistry()
    queue = ScenarioQueue(metrics=reg)
    store = ContentStore(tmp_path / "store")
    broker = Broker(queue, store=store, registry=reg, parallel=False,
                    idle_wait_s=0.01).start()
    try:
        admissions = submit_all(queue)
        records = [queue.wait(adm.request_id, timeout_s=30.0)
                   for adm in admissions]
    finally:
        broker.stop(drain=True, timeout_s=10.0)

    assert all(rec.state == DONE for rec in records)
    assert reg.value("runner.instances") == 1
    assert store.stats.puts == 1
    reference = records[0].result
    for rec in records:
        for name in reference:
            np.testing.assert_array_equal(rec.result[name],
                                          reference[name])
