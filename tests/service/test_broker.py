"""Broker loop: memoized batches, terminal-state mapping, fault handling."""

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.resilience import FaultPlan, RetryPolicy
from repro.service.broker import Broker
from repro.service.queue import DONE, FAILED, ScenarioQueue
from repro.store.cas import ContentStore

pytestmark = pytest.mark.fast


def make_spec(i=0, tau=0.25):
    return InstanceSpec(region_code="VT", params={"TAU": tau},
                        n_days=10, scale=1e-3, seed=300 + i,
                        label=f"b{i}")


@pytest.fixture()
def store(tmp_path):
    return ContentStore(tmp_path / "store")


def make_broker(store=None, **kw):
    reg = MetricsRegistry()
    q = ScenarioQueue(metrics=reg)
    kw.setdefault("parallel", False)
    return q, Broker(q, store=store, registry=reg, **kw)


def test_run_once_completes_requests(store):
    q, broker = make_broker(store)
    a = q.submit(make_spec(0))
    b = q.submit(make_spec(1))
    resolved = broker.run_once()
    assert resolved == 2
    for adm in (a, b):
        rec = q.status(adm.request_id)
        assert rec.state == DONE
        assert set(rec.result) == {"confirmed", "attack_rate",
                                   "transitions"}
    assert broker.registry.value("service.completed") == 2
    assert store.stats.puts == 2


def test_resubmit_serves_from_store_without_executing(store):
    q, broker = make_broker(store)
    first = q.submit(make_spec(0))
    broker.run_once()
    executed = broker.registry.value("runner.instances")
    again = q.submit(make_spec(0))
    assert again.status == "queued"  # first entry already resolved
    broker.run_once()
    # Store hit: no new engine execution, payload bit-identical.
    assert broker.registry.value("runner.instances") == executed
    assert broker.registry.value("memo.hits") == 1
    r1 = q.status(first.request_id).result
    r2 = q.status(again.request_id).result
    for name in r1:
        np.testing.assert_array_equal(r1[name], r2[name])


def test_faulted_batch_reaches_terminal_states(store):
    # One spec is targeted by a persistent fault; the other must still
    # complete and the failed one must report a terminal error state.
    q, broker = make_broker(
        store,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, seed=1),
        faults=FaultPlan.parse(["worker.exception:times=99,match=b0"],
                               seed=1))
    bad = q.submit(make_spec(0))
    good = q.submit(make_spec(1))
    resolved = broker.run_once()
    assert resolved == 2
    rec = q.status(bad.request_id)
    assert rec.state == FAILED
    assert rec.kind == "transient"
    assert "worker.exception" in rec.error
    assert q.status(good.request_id).state == DONE
    assert broker.registry.value("service.failed") == 1
    assert broker.registry.value("service.completed") == 1


def test_worker_crash_recovers_transient(store):
    # The acceptance drill: a pool worker dies hard once; the pool is
    # rebuilt and every request still completes.
    q, broker = make_broker(
        store, parallel=True, max_workers=2,
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, seed=1),
        faults=FaultPlan.parse(["worker.crash:times=1,match=b0"], seed=1))
    crashed = q.submit(make_spec(0))
    other = q.submit(make_spec(1))
    broker.run_once()
    assert q.status(crashed.request_id).state == DONE
    assert q.status(other.request_id).state == DONE
    assert broker.registry.value("retry.pool_rebuilds") >= 1


def test_worker_crash_persistent_never_hangs(store):
    # A spec that kills every pool it touches: the supervisor exhausts
    # its rebuild budget and gives up, but every request still reaches a
    # terminal state — the no-hang guarantee, not a partial-result one.
    q, broker = make_broker(
        store, parallel=True, max_workers=2,
        retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, seed=1),
        faults=FaultPlan.parse(["worker.crash:times=99,match=b0"],
                               seed=1))
    bad = q.submit(make_spec(0))
    good = q.submit(make_spec(1))
    resolved = broker.run_once()
    assert resolved == 2
    states = {q.status(a.request_id).state for a in (bad, good)}
    assert states <= {DONE, FAILED}
    rec = q.status(bad.request_id)
    assert rec.state == FAILED and rec.error


def test_batch_size_bounds_each_claim(store):
    q, broker = make_broker(store, batch_size=2)
    for i in range(3):
        q.submit(make_spec(i))
    assert broker.run_once() == 2
    assert q.depth() == 1
    assert broker.run_once() == 1


def test_background_loop_drains_and_stops(store):
    q, broker = make_broker(store, idle_wait_s=0.01)
    broker.start()
    assert broker.running
    adm = q.submit(make_spec(0))
    rec = q.wait(adm.request_id, timeout_s=30.0)
    assert rec.state == DONE
    broker.stop(drain=True, timeout_s=10.0)
    assert not broker.running


def test_non_drain_stop_cancels_pending(store):
    q, broker = make_broker(store)
    adm = q.submit(make_spec(0))
    broker.stop(drain=False, timeout_s=1.0)  # never started: just cancel
    rec = q.status(adm.request_id)
    assert rec.state == "cancelled"
    assert rec.error == "service stopped"


def test_broker_records_request_spans(store, tmp_path):
    tracer = Tracer(tmp_path / "trace.jsonl", run_id="svc-test")
    q, broker = make_broker(store, tracer=tracer)
    a = q.submit(make_spec(0))
    q.submit(make_spec(0))  # coalesced join shares the span batch
    with tracer:
        broker.run_once()
    body = (tmp_path / "trace.jsonl").read_text()
    assert f"request:{a.request_id}" in body
    assert "service:batch" in body


def test_metrics_view_merges_store_counters(store):
    q, broker = make_broker(store)
    q.submit(make_spec(0))
    broker.run_once()
    snap = broker.metrics_view().snapshot()
    assert snap["service.completed"] == 1
    assert snap["store.puts"] == 1
    assert snap["memo.misses"] == 1


def test_batch_size_validation():
    q = ScenarioQueue()
    with pytest.raises(ValueError):
        Broker(q, batch_size=0)
