"""HTTP API end-to-end: submit/poll/health/metrics over a real socket."""

import threading

import pytest

from repro.service import (
    QueueFullError,
    ScenarioService,
    ServiceClient,
    ServiceError,
    make_server,
)

pytestmark = pytest.mark.fast

SCENARIO = {"region": "VT", "params": {"TAU": 0.3}, "days": 10,
            "scale": 1e-3, "seed": 9}


@pytest.fixture()
def live(tmp_path):
    """A started service + bound server + client on an ephemeral port."""
    from repro.store.cas import ContentStore

    service = ScenarioService(store=ContentStore(tmp_path / "store"),
                              parallel=False)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout_s=30.0)
    yield service, server, client
    server.shutdown()
    server.server_close()
    service.stop(drain=True, timeout_s=10.0)
    thread.join(timeout=5.0)


def test_submit_poll_roundtrip(live):
    service, server, client = live
    adm = client.submit(SCENARIO)
    assert adm["status"] == "queued" and adm["id"].startswith("r")
    view = client.wait(adm["id"], timeout_s=60.0, poll_s=0.05)
    assert view["state"] == "done"
    result = view["result"]
    assert len(result["confirmed"]) == SCENARIO["days"] + 1
    assert 0.0 <= result["attack_rate"] <= 1.0


def test_repeat_submission_is_served_without_new_execution(live):
    service, server, client = live
    first = client.submit(SCENARIO)
    v1 = client.wait(first["id"], timeout_s=60.0, poll_s=0.05)
    executed = client.metrics().get("runner.instances", 0)
    again = client.submit(SCENARIO)
    v2 = client.wait(again["id"], timeout_s=60.0, poll_s=0.05)
    metrics = client.metrics()
    assert metrics.get("runner.instances", 0) == executed == 1
    assert metrics["memo.hits"] >= 1
    # JSON round-trips repr'd float64 exactly: payloads are identical.
    assert v1["result"] == v2["result"]


def test_health_and_metrics_endpoints(live):
    service, server, client = live
    health = client.health()
    assert health["status"] == "ok" and health["broker_running"]
    adm = client.submit(SCENARIO)
    client.wait(adm["id"], timeout_s=60.0, poll_s=0.05)
    metrics = client.metrics()
    assert metrics["service.admitted"] >= 1
    assert metrics["service.completed"] >= 1
    assert "service.queue_depth" in metrics


def test_unknown_request_404(live):
    service, server, client = live
    with pytest.raises(ServiceError) as exc:
        client.status("r999999")
    assert exc.value.status == 404


def test_bad_submissions_400(live):
    service, server, client = live
    for bad in (
        {"region": "XX"},
        {"region": "VT", "days": 0},
        {"region": "VT", "scale": 2.0},
        {"region": "VT", "params": {"TAU": [1, 2]}},
        {"region": "VT", "days": "many"},
    ):
        with pytest.raises(ServiceError) as exc:
            client.submit(bad)
        assert exc.value.status == 400


def test_backpressure_429_with_retry_after(tmp_path):
    # Broker never started: the one slot stays occupied.
    service = ScenarioService(capacity=1, parallel=False)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout_s=30.0)
    try:
        assert client.submit(SCENARIO)["status"] == "queued"
        other = dict(SCENARIO, seed=10)
        with pytest.raises(QueueFullError) as exc:
            client.submit(other)
        assert exc.value.retry_after_s > 0
        # The identical scenario still coalesces through a full queue.
        assert client.submit(SCENARIO)["status"] == "coalesced"
    finally:
        server.shutdown()
        server.server_close()
        service.queue.cancel_pending()
        thread.join(timeout=5.0)


def test_draining_service_returns_503(live):
    service, server, client = live
    service.queue.close()
    with pytest.raises(ServiceError) as exc:
        client.submit(SCENARIO)
    assert exc.value.status == 503
    assert client.health()["status"] == "draining"


def test_graceful_drain_finishes_accepted_work(tmp_path):
    service = ScenarioService(parallel=False).start()
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout_s=30.0)
    adm = client.submit(SCENARIO)
    server.shutdown()
    server.server_close()
    # Accepted-but-unfinished work completes during the drain.
    service.stop(drain=True, timeout_s=30.0)
    thread.join(timeout=5.0)
    rec = service.queue.status(adm["id"])
    assert rec.state == "done"
