"""Checkpointed resume is bit-identical — across backends and widths.

The acceptance matrix: for every transmission backend (dense / frontier /
auto) and batch width K ∈ {1, 4, 16}, kill the run at the start, middle
and last tick, resume from the newest checkpoint, and require the
surviving results to be **byte-identical** to an uninterrupted run's —
same payload bytes, same cache keys.  Plus the resume-plane accounting:
ticks-of-work-saved on the fan-out result, retry backoff that keeps
counting across resumes, and remaining-work-scaled attempt timeouts.
"""

import numpy as np
import pytest

from repro.checkpoint import CheckpointPlan
from repro.core.parallel import (
    InstanceSpec,
    run_instances,
    supervise_instances,
)
from repro.obs import MetricsRegistry
from repro.resilience import FaultPlan, RetryPolicy
from repro.store.keys import instance_key
from repro.store.memo import outcome_payload

DAYS = 8
EVERY = 3
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)

#: Crash positions: before the first checkpoint (resume degrades to a
#: tick-0 restart), mid-run, and the last tick before completion.
CRASH_TICKS = (1, 4, 7)


def specs(backend, k):
    return [
        InstanceSpec(
            region_code="VT",
            params={"TAU": 0.3, "SYMP": 0.65, "SH_COMPLIANCE": 0.6,
                    "backend": backend},
            n_days=DAYS, scale=1e-3, seed=100 + 13 * i,
            label=f"eq-{backend}-k{k}-i{i}", asset_seed=0)
        for i in range(k)
    ]


_clean_cache = {}


def clean_run(backend, k):
    if (backend, k) not in _clean_cache:
        _clean_cache[(backend, k)] = run_instances(
            specs(backend, k), parallel=False, registry=MetricsRegistry())
    return _clean_cache[(backend, k)]


def assert_payload_bytes_identical(clean, chaotic):
    """Byte-identical result payloads and identical CAS keys."""
    assert instance_key(clean.spec) == instance_key(chaotic.spec)
    a, b = outcome_payload(clean), outcome_payload(chaotic)
    assert sorted(a) == sorted(b)
    for name in a:
        assert a[name].dtype == b[name].dtype, name
        assert a[name].tobytes() == b[name].tobytes(), name


@pytest.mark.parametrize("backend", ["dense", "frontier", "auto"])
@pytest.mark.parametrize("k", [1, 4, 16])
@pytest.mark.parametrize("crash_tick", CRASH_TICKS)
def test_crash_resume_bit_identical(tmp_path, backend, k, crash_tick):
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=EVERY)
    faults = FaultPlan.parse(
        [f"worker.crash_mid_run:tick={crash_tick},times=1"], seed=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs(backend, k), parallel=False,
                              retry=FAST_RETRY, faults=faults,
                              registry=reg, checkpoint=plan)
    assert res.ok and res.retries == 1
    for clean, chaotic in zip(clean_run(backend, k), res.results):
        assert_payload_bytes_identical(clean, chaotic)
    # The resume point is the newest checkpoint at or below the crash
    # tick; every lane of the shared loop resumes from the common tick.
    resume_tick = (crash_tick // EVERY) * EVERY
    assert res.ticks_saved == k * resume_tick
    assert reg.value("checkpoint.resumed") == (k if resume_tick else 0)


def test_checkpointing_off_matches_plain_execution(tmp_path):
    """every=0 leaves the tick loop byte-identical to no plan at all."""
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs("auto", 4), parallel=False,
                              retry=FAST_RETRY, registry=reg,
                              checkpoint=plan)
    assert res.ok and res.ticks_saved == 0
    for clean, chaotic in zip(clean_run("auto", 4), res.results):
        assert_payload_bytes_identical(clean, chaotic)
    assert reg.value("checkpoint.written") == 0
    assert not (tmp_path / "ck").exists()


def test_fanout_summary_reports_ticks_saved(tmp_path):
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=EVERY)
    faults = FaultPlan.parse(["worker.crash_mid_run:tick=7,times=1"],
                             seed=0)
    res = supervise_instances(specs("auto", 1), parallel=False,
                              retry=FAST_RETRY, faults=faults,
                              registry=MetricsRegistry(), checkpoint=plan)
    assert res.ticks_saved == 6
    assert "checkpoint resume saved 6 ticks of work" in res.summary()


def test_backoff_counts_across_resumes(tmp_path):
    """satellite: a resumed attempt that fails again backs off from the
    attempt counter, not from zero — the deterministic sequence is
    base * factor^0, base * factor^1, pinned here by the backoff total.
    A reset policy would sleep base twice (0.02), not base + 2*base."""
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=EVERY)
    faults = FaultPlan.parse(["worker.crash_mid_run:tick=7,times=2"],
                             seed=0)
    retry = RetryPolicy(max_attempts=3, base_delay_s=0.01, factor=2.0,
                        jitter=0.0)
    reg = MetricsRegistry()
    res = supervise_instances(specs("auto", 1), parallel=False,
                              retry=retry, faults=faults, registry=reg,
                              checkpoint=plan)
    assert res.ok
    assert reg.value("retry.retries") == 2
    assert reg.value("retry.backoff_s") == pytest.approx(0.01 + 0.02)
    # Both resumes re-enter from tick 6 (the newest snapshot < 7), but
    # telemetry dies with a failed attempt: only the final, successful
    # attempt's counters are harvested, so one resume is visible.
    assert reg.value("checkpoint.resumed") == 1
    assert res.ticks_saved == 6
    for clean, chaotic in zip(clean_run("auto", 1), res.results):
        assert_payload_bytes_identical(clean, chaotic)


def test_repeated_crashes_exhaust_to_quarantine(tmp_path):
    """Resume does not mask a hard failure: a rule that outlives the
    retry budget still quarantines, with the chain left for post-mortem."""
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=EVERY)
    faults = FaultPlan.parse(["worker.crash_mid_run:tick=7,times=3"],
                             seed=0)
    res = supervise_instances(specs("auto", 1), parallel=False,
                              retry=FAST_RETRY, faults=faults,
                              registry=MetricsRegistry(), checkpoint=plan)
    assert not res.ok
    assert len(res.quarantined) == 1
    assert res.quarantined[0].attempts == 3


def test_scaled_timeout_tracks_remaining_work(tmp_path):
    """Per-attempt timeouts shrink with the checkpointed progress: an
    instance resumed at tick 6 of 8 gets 2/8 of the base budget."""
    from repro.core.parallel import _scaled_timeout_of

    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=EVERY)
    retry = RetryPolicy(max_attempts=3, timeout_s=80.0)
    timeout_of = _scaled_timeout_of(plan, retry)
    spec = specs("auto", 1)[0]
    assert timeout_of(spec, 0) == pytest.approx(80.0)
    manager = plan.manager(metrics=MetricsRegistry())
    manager.write(instance_key(spec, salt=plan.salt),
                  {"x": np.zeros(4)}, tick=6)
    assert timeout_of(spec, 1) == pytest.approx(80.0 * 2 / 8)
    assert timeout_of([spec], 1) == pytest.approx(80.0 * 2 / 8)
    assert _scaled_timeout_of(plan, RetryPolicy(max_attempts=3)) is None


def test_pooled_hard_crash_resumes_bit_identical(tmp_path):
    """The real failure mode end to end: a pool worker dies with
    ``os._exit`` mid-run, the pool is rebuilt, and the retry resumes
    from the snapshot the dead worker left behind."""
    plan = CheckpointPlan(store_root=str(tmp_path / "ck"), every=EVERY)
    faults = FaultPlan.parse(["worker.crash_mid_run:tick=7,times=1"],
                             seed=0)
    reg = MetricsRegistry()
    res = supervise_instances(specs("auto", 3), parallel=True,
                              max_workers=2, retry=FAST_RETRY,
                              faults=faults, registry=reg, checkpoint=plan)
    assert res.ok
    assert res.pool_rebuilds >= 1
    assert res.ticks_saved == 3 * 6
    for clean, chaotic in zip(clean_run("auto", 3), res.results):
        assert_payload_bytes_identical(clean, chaotic)
