"""CheckpointManager: durable chains, fallback, heartbeats, reclamation.

Snapshots ride the CAS as ``checkpoint/v1`` blobs keyed by (instance
key, tick) with an atomically replaced per-instance pointer file.  The
manager must fall back past missing/corrupt blobs (quarantining them),
heartbeat the instance's lease on every write, survive the store's LRU
gc while in flight, and reclaim the whole chain once the instance's
terminal result lands.
"""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointManager,
    CheckpointPlan,
    checkpoint_blob_key,
)
from repro.obs.registry import MetricsRegistry
from repro.store.cas import (
    CHECKPOINT_EXEMPT_TTL_S,
    CHECKPOINT_FAMILY,
    ContentStore,
    LeaseTable,
)
from repro.store.ledger import replay_ledger

KEY = "cd" * 32


def payload(tick):
    return {"state": np.arange(tick, tick + 8, dtype=np.int64),
            "rng": np.array([tick], dtype=np.uint64)}


@pytest.fixture()
def plan(tmp_path):
    return CheckpointPlan(store_root=str(tmp_path / "store"), every=5)


@pytest.fixture()
def manager(plan):
    return plan.manager(metrics=MetricsRegistry())


class TestPlan:
    def test_disabled_when_every_is_zero(self, tmp_path):
        assert not CheckpointPlan(store_root=str(tmp_path), every=0).enabled
        assert CheckpointPlan(store_root=str(tmp_path), every=5).enabled

    def test_blob_key_is_stable_and_distinct(self):
        assert checkpoint_blob_key(KEY, 5) == checkpoint_blob_key(KEY, 5)
        assert checkpoint_blob_key(KEY, 5) != checkpoint_blob_key(KEY, 6)
        assert checkpoint_blob_key(KEY, 5) != checkpoint_blob_key("ef" * 32, 5)


class TestChain:
    def test_write_records_pointer_and_counters(self, manager):
        manager.write(KEY, payload(5), tick=5)
        manager.write(KEY, payload(10), tick=10)
        assert manager.ticks(KEY) == [5, 10]
        assert manager.latest_tick(KEY) == 10
        assert manager.metrics.value("checkpoint.written") == 2
        assert manager.metrics.value("checkpoint.bytes") > 0

    def test_load_latest_returns_newest(self, manager):
        manager.write(KEY, payload(5), tick=5)
        manager.write(KEY, payload(10), tick=10)
        tick, loaded = manager.load_latest(KEY)
        assert tick == 10
        assert np.array_equal(loaded["state"], payload(10)["state"])

    def test_empty_chain_loads_none(self, manager):
        assert manager.load_latest(KEY) is None
        assert manager.ticks(KEY) == []

    def test_missing_blob_falls_back_to_older(self, manager):
        manager.write(KEY, payload(5), tick=5)
        manager.write(KEY, payload(10), tick=10)
        manager.store.path_of(checkpoint_blob_key(KEY, 10)).unlink()
        tick, _loaded = manager.load_latest(KEY)
        assert tick == 5
        assert manager.metrics.value("checkpoint.invalid") == 1
        assert manager.ticks(KEY) == [5]

    def test_corrupt_blob_quarantined_falls_back(self, manager):
        """A flipped byte fails the CAS digest: served as a miss, chain
        falls back to the next-older snapshot."""
        manager.write(KEY, payload(5), tick=5)
        manager.write(KEY, payload(10), tick=10)
        blob = manager.store.path_of(checkpoint_blob_key(KEY, 10))
        raw = bytearray(blob.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blob.write_bytes(bytes(raw))
        tick, _loaded = manager.load_latest(KEY)
        assert tick == 5
        assert manager.metrics.value("checkpoint.invalid") == 1

    def test_invalidate_removes_tick(self, manager):
        manager.write(KEY, payload(5), tick=5)
        manager.write(KEY, payload(10), tick=10)
        manager.invalidate(KEY, 10)
        assert manager.ticks(KEY) == [5]
        assert manager.metrics.value("checkpoint.invalid") == 1

    def test_resumed_accounts_ticks_saved(self, manager):
        manager.resumed(KEY, 40, attempt=2)
        assert manager.metrics.value("checkpoint.resumed") == 1
        assert manager.metrics.value("checkpoint.ticks_saved") == 40

    def test_discard_reclaims_the_chain(self, manager):
        manager.write(KEY, payload(5), tick=5)
        manager.write(KEY, payload(10), tick=10)
        reclaimed = manager.discard(KEY)
        assert reclaimed > 0
        assert manager.metrics.value("checkpoint.reclaimed_bytes") == reclaimed
        assert manager.ticks(KEY) == []
        assert manager.load_latest(KEY) is None
        assert not manager.pointer_path(KEY).exists()

    def test_discard_empty_chain_is_noop(self, manager):
        assert manager.discard(KEY) == 0


class TestLedgerEvents:
    def test_lifecycle_events_journal(self, tmp_path):
        plan = CheckpointPlan(store_root=str(tmp_path / "store"), every=5,
                              ledger_path=str(tmp_path / "run.jsonl"))
        manager = plan.manager(metrics=MetricsRegistry())
        manager.write(KEY, payload(5), tick=5)
        manager.resumed(KEY, 5, attempt=1)
        manager.invalidate(KEY, 5)
        manager.write(KEY, payload(10), tick=10)
        manager.discard(KEY)
        events = [json.loads(line)["event"]
                  for line in (tmp_path / "run.jsonl").read_text(
                      encoding="utf-8").splitlines()]
        assert events == ["checkpoint_written", "checkpoint_resumed",
                          "checkpoint_invalid", "checkpoint_written",
                          "checkpoint_discarded"]

    def test_replay_sees_checkpoint_events(self, tmp_path):
        plan = CheckpointPlan(store_root=str(tmp_path / "store"), every=5,
                              ledger_path=str(tmp_path / "run.jsonl"))
        manager = plan.manager(metrics=MetricsRegistry())
        manager.write(KEY, payload(5), tick=5)
        replayed = replay_ledger(tmp_path / "run.jsonl")
        assert replayed.count("checkpoint_written") == 1


class TestLeaseHeartbeat:
    def test_write_renews_anothers_lease(self, tmp_path):
        """The executing worker is generally not the lease owner (the
        broker's fan-out acquired it) — the heartbeat must re-stamp the
        *owner's* record, preserving its identity."""
        leases = LeaseTable(tmp_path / "leases", owner="broker")
        assert leases.acquire(KEY)
        stale_ts = leases.holder(KEY)["ts"] - 3600.0
        path = leases.path_of(KEY)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["ts"] = stale_ts
        path.write_text(json.dumps(record), encoding="utf-8")

        plan = CheckpointPlan(store_root=str(tmp_path / "store"), every=5,
                              lease_root=str(tmp_path / "leases"))
        plan.manager(metrics=MetricsRegistry()).write(KEY, payload(5),
                                                      tick=5)
        holder = leases.holder(KEY)
        assert holder["owner"] == "broker"
        assert holder["pid"] == os.getpid()
        assert holder["ts"] > stale_ts + 3000.0

    def test_write_without_lease_root_needs_no_table(self, tmp_path):
        plan = CheckpointPlan(store_root=str(tmp_path / "store"), every=5)
        plan.manager(metrics=MetricsRegistry()).write(KEY, payload(5),
                                                      tick=5)
        assert not (tmp_path / "leases").exists()


class TestGcExemption:
    def test_fresh_checkpoints_survive_gc(self, manager):
        """satellite: gc must not evict checkpoints of in-flight
        instances — losing one turns a cheap resume into a tick-0 rerun."""
        manager.write(KEY, payload(5), tick=5)
        store = ContentStore(manager.store.root)
        store.put("aa" * 32, {"x": np.zeros(4096)})
        old_blob = store.path_of("aa" * 32)
        past = old_blob.stat().st_mtime - 7200
        os.utime(old_blob, (past, past))
        evicted = store.gc(max_bytes=0)
        assert "aa" * 32 in evicted
        assert checkpoint_blob_key(KEY, 5) not in evicted
        assert manager.load_latest(KEY) is not None

    def test_abandoned_checkpoints_rejoin_the_lru(self, manager):
        """Older than the lease TTL = nobody is coming back for it."""
        manager.write(KEY, payload(5), tick=5)
        blob = manager.store.path_of(checkpoint_blob_key(KEY, 5))
        past = blob.stat().st_mtime - (CHECKPOINT_EXEMPT_TTL_S + 60)
        os.utime(blob, (past, past))
        store = ContentStore(manager.store.root)
        evicted = store.gc(max_bytes=0)
        assert checkpoint_blob_key(KEY, 5) in evicted

    def test_checkpoints_are_family_labelled(self, manager):
        manager.write(KEY, payload(5), tick=5)
        counts = ContentStore(manager.store.root).family_counts()
        assert counts.get(CHECKPOINT_FAMILY) == 1
