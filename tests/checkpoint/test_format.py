"""Snapshot/restore format: bit-identical resume, strict validation.

The format contract: snapshot at tick t, apply onto a *freshly prepared*
simulation of the same instance spec, run to T — every output byte
(transition log, census counts, RNG stream) equals an uninterrupted
run's.  Anything that cannot hold that contract (format bump, different
instance, changed intervention stack) must raise
:class:`~repro.checkpoint.CheckpointError`, never misapply.
"""

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    restore_simulation,
    snapshot_simulation,
)
from repro.checkpoint.format import FORMAT_VERSION, META_KEY
from repro.core.runner import load_region_assets, prepare_instance

#: Interventions with mutable closure state (SH suppression handles,
#: timed releases, VHI compliance arrays, D1CT trackers) — the hard part
#: of the snapshot.
PARAMS = {"TAU": 0.3, "SYMP": 0.65, "SH_COMPLIANCE": 0.6,
          "VHI_COMPLIANCE": 0.5, "tracing_compliance": 0.4,
          "lockdown_days": 4}
DAYS = 26
SNAP_TICK = 12


@pytest.fixture(scope="module")
def assets():
    return load_region_assets("VT", 1e-3, 0)


def fresh_sim(assets, params=PARAMS, seed=7):
    sim, _model = prepare_instance(assets, params, seed=seed)
    sim.begin()
    return sim


def run_to(sim, tick):
    while sim.tick < tick:
        sim.step()
    return sim


def result_fingerprint(sim):
    result = sim.finish()
    log = result.log
    return {
        "tick": log.tick.tobytes(),
        "pid": log.pid.tobytes(),
        "state": log.state.tobytes(),
        "infector": log.infector.tobytes(),
        "rng": repr(sim.rng.bit_generator.state),
    }


@pytest.fixture(scope="module")
def uninterrupted(assets):
    sim = run_to(fresh_sim(assets), DAYS)
    return result_fingerprint(sim)


@pytest.fixture(scope="module")
def snapshot(assets):
    sim = run_to(fresh_sim(assets), SNAP_TICK)
    return snapshot_simulation(sim)


class TestRoundTrip:
    def test_resume_is_bit_identical(self, assets, snapshot, uninterrupted):
        sim = fresh_sim(assets)
        tick = restore_simulation(sim, snapshot)
        assert tick == SNAP_TICK
        run_to(sim, DAYS)
        assert result_fingerprint(sim) == uninterrupted

    def test_payload_is_cas_shaped(self, snapshot):
        """Plain numeric ndarrays only: the CAS digest hashes raw bytes."""
        for name, arr in snapshot.items():
            assert isinstance(arr, np.ndarray), name
            assert arr.dtype != object, name

    def test_snapshot_is_a_frozen_copy(self, assets):
        """The simulation mutates in place; the payload must not follow."""
        sim = run_to(fresh_sim(assets), SNAP_TICK)
        snap = snapshot_simulation(sim)
        frozen = {k: v.copy() for k, v in snap.items()}
        run_to(sim, SNAP_TICK + 6)
        for name, arr in snap.items():
            assert np.array_equal(arr, frozen[name]), name

    def test_restore_twice_from_same_snapshot(self, assets, snapshot,
                                              uninterrupted):
        """A snapshot is reusable: every restore starts the same stream."""
        for _ in range(2):
            sim = fresh_sim(assets)
            restore_simulation(sim, snapshot)
            run_to(sim, DAYS)
            assert result_fingerprint(sim) == uninterrupted


class TestValidation:
    def tampered(self, snapshot, **meta_updates):
        import json

        payload = dict(snapshot)
        meta = json.loads(bytes(payload[META_KEY]))
        meta.update(meta_updates)
        blob = json.dumps(meta, sort_keys=True).encode("utf-8")
        payload[META_KEY] = np.frombuffer(blob, dtype=np.uint8).copy()
        return payload

    def test_version_bump_is_invalid(self, assets, snapshot):
        bad = self.tampered(snapshot, version=FORMAT_VERSION + 1)
        with pytest.raises(CheckpointError, match="format"):
            restore_simulation(fresh_sim(assets), bad)

    def test_missing_meta_is_invalid(self, assets, snapshot):
        payload = {k: v for k, v in snapshot.items() if k != META_KEY}
        with pytest.raises(CheckpointError, match="meta"):
            restore_simulation(fresh_sim(assets), payload)

    def test_other_instance_is_invalid(self, snapshot):
        other = load_region_assets("RI", 1e-3, 0)
        with pytest.raises(CheckpointError, match="another instance"):
            restore_simulation(fresh_sim(other), snapshot)

    def test_changed_intervention_stack_is_invalid(self, assets, snapshot):
        bare = fresh_sim(assets, params={"TAU": 0.3, "SYMP": 0.65})
        with pytest.raises(CheckpointError, match="intervention"):
            restore_simulation(bare, snapshot)

    def test_failed_validation_leaves_no_partial_state(self, assets,
                                                       snapshot,
                                                       uninterrupted):
        """Validation precedes mutation: a rejected apply is harmless —
        but executors still rebuild after a *mid-apply* failure, so this
        only pins the validation-first ordering for meta mismatches."""
        sim = fresh_sim(assets)
        with pytest.raises(CheckpointError):
            restore_simulation(
                sim, self.tampered(snapshot, version=FORMAT_VERSION + 1))
        restore_simulation(sim, snapshot)
        run_to(sim, DAYS)
        assert result_fingerprint(sim) == uninterrupted
