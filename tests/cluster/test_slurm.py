"""Slurm-simulator tests: capacity, DB caps, policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.machines import ClusterSpec
from repro.cluster.slurm import Job, SlurmSimulator


def tiny_cluster(n_nodes=10):
    return ClusterSpec("tiny", n_nodes, 2, 14, 128 * 10**9, "x", "y", "z")


def jobs_of(specs):
    """specs: list of (region, nodes, runtime, level)."""
    return [Job(f"j{i}", r, n, t, lvl)
            for i, (r, n, t, lvl) in enumerate(specs)]


def test_sequential_when_wide():
    sim = SlurmSimulator(tiny_cluster(4))
    jobs = jobs_of([("A", 4, 10.0, 0), ("A", 4, 10.0, 0)])
    out = sim.run(jobs, policy="fifo")
    assert out.makespan == 20.0
    assert out.utilization == pytest.approx(1.0)


def test_parallel_when_fits():
    sim = SlurmSimulator(tiny_cluster(8))
    jobs = jobs_of([("A", 4, 10.0, 0), ("B", 4, 10.0, 0)])
    out = sim.run(jobs, policy="fifo")
    assert out.makespan == 10.0


def test_db_cap_serialises_region():
    sim = SlurmSimulator(tiny_cluster(10), db_caps={"A": 1})
    jobs = jobs_of([("A", 2, 10.0, 0), ("A", 2, 10.0, 0)])
    out = sim.run(jobs, policy="backfill")
    assert out.makespan == 20.0
    assert out.peak_region_concurrency["A"] == 1


def test_backfill_skips_blocked_head():
    """FIFO blocks behind a too-wide head job; backfill runs B first."""
    cluster = tiny_cluster(6)
    jobs = jobs_of([
        ("A", 6, 10.0, 0),   # starts immediately, fills machine
        ("B", 6, 10.0, 0),   # must wait either way
        ("C", 6, 5.0, 0),
    ])
    fifo = SlurmSimulator(cluster).run(list(jobs), policy="fifo")
    bf = SlurmSimulator(cluster).run(list(jobs), policy="backfill")
    assert bf.makespan <= fifo.makespan


def test_backfill_fills_gaps():
    cluster = tiny_cluster(6)
    jobs = jobs_of([
        ("A", 4, 10.0, 0),
        ("B", 4, 10.0, 0),  # cannot start with A (8 > 6)
        ("C", 2, 10.0, 0),  # backfills alongside A
    ])
    out = SlurmSimulator(cluster).run(jobs, policy="backfill")
    rec = {r.job.job_id: r for r in out.records}
    assert rec["j2"].start == 0.0  # C backfilled
    assert rec["j1"].start == 10.0


def test_levels_policy_barriers():
    cluster = tiny_cluster(10)
    jobs = jobs_of([
        ("A", 2, 10.0, 0), ("B", 2, 1.0, 0),
        ("C", 2, 5.0, 1),
    ])
    out = SlurmSimulator(cluster).run(jobs, policy="levels")
    rec = {r.job.job_id: r for r in out.records}
    # Level 1 job waits for the whole of level 0 (the slow A).
    assert rec["j2"].start == 10.0


def test_capacity_never_exceeded_validator():
    cluster = tiny_cluster(8)
    jobs = jobs_of([("A", 3, 7.0, 0), ("B", 3, 3.0, 0), ("C", 3, 5.0, 0),
                    ("D", 5, 2.0, 0)])
    out = SlurmSimulator(cluster).run(jobs, policy="backfill")
    out.validate_no_overlap_violation(8, {})


def test_job_wider_than_machine_rejected():
    sim = SlurmSimulator(tiny_cluster(4))
    with pytest.raises(ValueError, match="nodes"):
        sim.run([Job("j", "A", 5, 1.0)])


def test_reserved_nodes_reduce_capacity():
    sim = SlurmSimulator(tiny_cluster(10), reserved_nodes=6)
    jobs = jobs_of([("A", 4, 10.0, 0), ("B", 4, 10.0, 0)])
    out = sim.run(jobs, policy="fifo")
    assert out.makespan == 20.0  # only 4 nodes schedulable
    assert out.n_nodes_available == 4


def test_reservation_validation():
    with pytest.raises(ValueError):
        SlurmSimulator(tiny_cluster(4), reserved_nodes=4)


def test_invalid_policy():
    sim = SlurmSimulator(tiny_cluster(4))
    with pytest.raises(ValueError, match="policy"):
        sim.run([Job("j", "A", 1, 1.0)], policy="magic")


def test_empty_job_list():
    out = SlurmSimulator(tiny_cluster(4)).run([], policy="backfill")
    assert out.makespan == 0.0
    assert out.utilization == 1.0


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_schedule_always_valid(data):
    """Random workloads never violate capacity or DB caps, run every job
    exactly once, and keep utilization in (0, 1]."""
    n_nodes = data.draw(st.integers(4, 20))
    caps = {"A": data.draw(st.integers(1, 4)),
            "B": data.draw(st.integers(1, 4))}
    n_jobs = data.draw(st.integers(1, 25))
    jobs = []
    for i in range(n_jobs):
        region = data.draw(st.sampled_from(["A", "B"]))
        width = data.draw(st.integers(1, n_nodes))
        runtime = data.draw(st.floats(0.5, 20.0))
        jobs.append(Job(f"j{i}", region, width, runtime, 0))
    policy = data.draw(st.sampled_from(["fifo", "backfill"]))
    out = SlurmSimulator(tiny_cluster(n_nodes), db_caps=caps).run(
        jobs, policy=policy)
    assert len(out.records) == n_jobs
    assert len({r.job.job_id for r in out.records}) == n_jobs
    out.validate_no_overlap_violation(n_nodes, caps)
    assert 0.0 < out.utilization <= 1.0 + 1e-9
