"""Population-database (connection cap) tests."""

import numpy as np
import pytest

from repro.cluster.popdb import (
    ConnectionLimitExceeded,
    DatabaseFleet,
    PopulationDatabase,
)
from repro.synthpop.persons import generate_population


@pytest.fixture(scope="module")
def pop():
    return generate_population("VT", scale=1e-3, seed=1)


def test_connection_cap_enforced(pop):
    db = PopulationDatabase(pop, max_connections=2)
    c1 = db.connect("t1")
    c2 = db.connect("t2")
    with pytest.raises(ConnectionLimitExceeded):
        db.connect("t3")
    c1.close()
    c3 = db.connect("t3")  # slot freed
    assert db.active_connections == 2
    c2.close()
    c3.close()


def test_peak_connection_tracking(pop):
    db = PopulationDatabase(pop, max_connections=5)
    conns = [db.connect(f"t{i}") for i in range(4)]
    for c in conns:
        c.close()
    assert db.peak_connections == 4
    assert db.active_connections == 0


def test_context_manager(pop):
    db = PopulationDatabase(pop, max_connections=1)
    with db.connect("t") as conn:
        assert db.active_connections == 1
        out = db.query_traits(conn, np.array([0, 1]))
        assert set(out) == {"hid", "age", "age_group", "gender", "county"}
    assert db.active_connections == 0


def test_query_on_closed_connection(pop):
    db = PopulationDatabase(pop)
    conn = db.connect("t")
    conn.close()
    with pytest.raises(RuntimeError):
        db.query_traits(conn, np.array([0]))


def test_query_county_members(pop):
    db = PopulationDatabase(pop)
    with db.connect("t") as conn:
        county = int(pop.county[0])
        members = db.query_county_members(conn, county)
        assert 0 in members.tolist() or (pop.county == county).sum() > 0
        assert (pop.county[members] == county).all()


def test_snapshot_startup_faster_than_cold(pop):
    snap = PopulationDatabase(pop, from_snapshot=True)
    cold = PopulationDatabase(pop, from_snapshot=False)
    assert snap.startup_seconds <= cold.startup_seconds


def test_query_counting(pop):
    db = PopulationDatabase(pop)
    with db.connect("t") as conn:
        db.query_traits(conn, np.array([0]))
        db.query_traits(conn, np.array([1]))
    assert db.total_queries == 2


def test_invalid_cap(pop):
    with pytest.raises(ValueError):
        PopulationDatabase(pop, max_connections=0)


def test_fleet(pop):
    fleet = DatabaseFleet()
    fleet.add(PopulationDatabase(pop, max_connections=3))
    assert fleet.nodes_used == 1
    assert fleet.max_parallel_tasks("VT") == 3
    conn = fleet.connect("VT", "task")
    conn.close()
    with pytest.raises(ValueError, match="duplicate"):
        fleet.add(PopulationDatabase(pop))
