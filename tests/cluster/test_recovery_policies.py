"""Recovery-policy coverage: the three playbook responses (requeue on node
loss, checksum-restart on transfer interruption, queue-and-retry at the DB
cap) keep a realistic night completing, at a measurable overhead."""

import numpy as np
import pytest

from repro.cluster.failures import (
    FaultySlurmSimulator,
    FlakyGlobusLink,
    QueueingDatabase,
)
from repro.cluster.machines import ClusterSpec
from repro.params import GB
from repro.scheduling.levels import pack_ffdt_dc
from repro.scheduling.metrics import jobs_from_packing
from repro.scheduling.wmp import make_nightly_instance

pytestmark = pytest.mark.fast


def small_cluster(n_nodes=24):
    return ClusterSpec("test", n_nodes, 2, 14, 128 * 10**9, "a", "b", "c")


def packed_jobs(seed=5):
    instance = make_nightly_instance(
        cells_per_region=3, replicates=2, regions=("VA", "VT", "NC"),
        cluster=small_cluster(), machine_width=24, seed=seed)
    return jobs_from_packing(pack_ffdt_dc(instance))


# --- node-failure requeue ----------------------------------------------------


def test_requeue_policy_finishes_packed_night():
    jobs = packed_jobs()
    out = FaultySlurmSimulator(
        small_cluster(), node_mttf_hours=0.5,
        rng=np.random.default_rng(42)).run(list(jobs))
    assert {r.job.job_id for r in out.schedule.records} == \
        {j.job_id for j in jobs}
    assert out.reruns > 0
    assert out.overhead_fraction > 0
    assert all(f.kind == "node" for f in out.failures)


def test_requeue_policy_is_deterministic():
    def run():
        return FaultySlurmSimulator(
            small_cluster(), node_mttf_hours=0.5,
            rng=np.random.default_rng(7)).run(packed_jobs())
    a, b = run(), run()
    assert a.reruns == b.reruns
    assert a.schedule.makespan == b.schedule.makespan
    assert a.wasted_node_seconds == b.wasted_node_seconds


def test_requeue_respects_db_caps_under_failures():
    jobs = packed_jobs()
    caps = {"VA": 2, "VT": 2, "NC": 2}
    out = FaultySlurmSimulator(
        small_cluster(), db_caps=caps, node_mttf_hours=0.5,
        rng=np.random.default_rng(11)).run(list(jobs))
    assert len(out.schedule.records) == len(jobs)
    for code, peak in out.schedule.peak_region_concurrency.items():
        assert peak <= caps[code]


def test_failed_attempts_never_appear_as_records():
    out = FaultySlurmSimulator(
        small_cluster(), node_mttf_hours=0.25,
        rng=np.random.default_rng(3)).run(packed_jobs())
    ids = [r.job.job_id for r in out.schedule.records]
    assert len(ids) == len(set(ids))  # exactly one record per job


# --- transfer checksum-restart ----------------------------------------------


def test_checksum_restart_extends_but_completes():
    link = FlakyGlobusLink("rivanna", "bridges", failure_probability=0.4,
                           max_retries=10, rng=np.random.default_rng(21))
    clean = FlakyGlobusLink("rivanna", "bridges")
    base = clean.transfer("summary", "bridges", "rivanna",
                          int(2 * GB)).duration
    durations = [link.transfer(f"s{i}", "bridges", "rivanna",
                               int(2 * GB)).duration for i in range(20)]
    assert len(link.records) == 20  # every transfer eventually lands
    assert all(d >= base for d in durations)
    assert any(d > base for d in durations)  # some retries did fire
    assert link.retry_log
    assert all(f.kind == "transfer" for f in link.retry_log)


def test_checksum_restart_gives_up_after_max_retries():
    link = FlakyGlobusLink("rivanna", "bridges", failure_probability=1.0,
                           max_retries=3, rng=np.random.default_rng(0))
    with pytest.raises(RuntimeError, match="failed 4 times"):
        link.transfer("doomed", "a", "b", int(1 * GB))
    # Initial attempt plus max_retries retries were all interrupted.
    assert len(link.retry_log) == 4


def test_checksum_restart_is_deterministic():
    def run():
        link = FlakyGlobusLink("r", "b", failure_probability=0.5,
                               rng=np.random.default_rng(9))
        return [link.transfer(f"t{i}", "r", "b", int(GB)).duration
                for i in range(10)]
    assert run() == run()


# --- database queue-and-retry ------------------------------------------------


def test_db_queue_and_retry_serves_every_acquire():
    db = QueueingDatabase(max_connections=4)
    starts = [db.acquire(now=0.0, hold_seconds=100.0) for _ in range(12)]
    assert len(starts) == 12  # nothing was refused
    assert starts[:4] == [0.0] * 4  # under the cap: immediate
    assert starts[4:8] == [100.0] * 4  # queued one slot-duration
    assert starts[8:] == [200.0] * 4
    assert db.total_wait == 4 * 100.0 + 4 * 200.0


def test_db_queue_waits_clear_as_slots_free():
    db = QueueingDatabase(max_connections=2)
    db.acquire(now=0.0, hold_seconds=50.0)
    db.acquire(now=0.0, hold_seconds=50.0)
    assert db.acquire(now=60.0, hold_seconds=50.0) == 60.0  # both released
    assert db.waits[-1] == 0.0


def test_db_queue_orders_by_earliest_release():
    db = QueueingDatabase(max_connections=2)
    db.acquire(now=0.0, hold_seconds=30.0)
    db.acquire(now=0.0, hold_seconds=90.0)
    assert db.acquire(now=0.0, hold_seconds=10.0) == 30.0


# --- the policies together ---------------------------------------------------


def test_resilient_night_end_to_end():
    """A failure-injected night (node losses + flaky summary transfer +
    queued DB connects) still completes every job, at positive but bounded
    overhead."""
    jobs = packed_jobs(seed=17)
    sim = FaultySlurmSimulator(
        small_cluster(), db_caps={"VA": 3, "VT": 3, "NC": 3},
        node_mttf_hours=1.0, rng=np.random.default_rng(17))
    out = sim.run(list(jobs))
    assert {r.job.job_id for r in out.schedule.records} == \
        {j.job_id for j in jobs}
    assert 0 < out.overhead_fraction < 1.0

    link = FlakyGlobusLink("rivanna", "bridges", failure_probability=0.3,
                           rng=np.random.default_rng(17))
    rec = link.transfer("summary-output", "bridges", "rivanna",
                        int(5 * GB))
    assert rec.duration >= link.duration_of(int(5 * GB))

    db = QueueingDatabase(max_connections=3)
    for r in out.schedule.records[:9]:
        db.acquire(now=r.start, hold_seconds=r.finish - r.start)
    assert db.total_wait >= 0.0
