"""Globus transfer-model tests."""

import pytest

from repro.cluster.globus import (
    GlobusLink,
    STARTUP_SECONDS,
    TABLE_II_SIZES,
)
from repro.params import GB, MB, TB


@pytest.fixture()
def link():
    return GlobusLink("rivanna", "bridges", bandwidth=1.0 * GB)


def test_duration_model(link):
    assert link.duration_of(0) == STARTUP_SECONDS
    assert link.duration_of(10 * GB) == pytest.approx(
        STARTUP_SECONDS + 10.0)


def test_manual_delay():
    link = GlobusLink("a", "b", bandwidth=1.0 * GB, manual_delay=600.0)
    assert link.duration_of(0) == STARTUP_SECONDS + 600.0


def test_transfer_ledger(link):
    link.transfer("configs", "rivanna", "bridges", 2 * GB)
    link.transfer("summary", "bridges", "rivanna", 5 * GB)
    assert link.bytes_moved() == 7 * GB
    assert link.bytes_moved(src="rivanna") == 2 * GB
    assert link.bytes_moved(src="bridges", dst="rivanna") == 5 * GB
    assert len(link.records) == 2


def test_transfer_validation(link):
    with pytest.raises(ValueError, match="unknown endpoint"):
        link.transfer("x", "rivanna", "elsewhere", 1)
    with pytest.raises(ValueError, match="differ"):
        link.transfer("x", "rivanna", "rivanna", 1)
    with pytest.raises(ValueError, match="non-negative"):
        link.duration_of(-1)


def test_record_timing(link):
    rec = link.transfer("x", "rivanna", "bridges", GB, now=100.0)
    assert rec.started_at == 100.0
    assert rec.finished_at == pytest.approx(100.0 + STARTUP_SECONDS + 1.0)


def test_summary_renders(link):
    link.transfer("x", "rivanna", "bridges", 3 * GB)
    text = link.summary()
    assert "rivanna -> bridges: 3.0GB" in text


def test_table_ii_ranges_sane():
    lo, hi = TABLE_II_SIZES["daily_configurations"]
    assert lo == 100 * MB and hi == pytest.approx(8.7 * GB)
    lo, hi = TABLE_II_SIZES["raw_outputs"]
    assert lo == 20 * GB and hi == pytest.approx(3.5 * TB)
    assert TABLE_II_SIZES["traits_and_networks"] == (2 * TB, 2 * TB)


def test_one_time_staging_fits_a_day(link):
    """The 2TB one-time staging takes hours, not days, at 10 Gbit/s."""
    hours = link.duration_of(2 * TB) / 3600
    assert 0.3 < hours < 24
