"""Failure-injection tests: node loss, transfer retries, DB queueing."""

import numpy as np
import pytest

from repro.cluster.failures import (
    FaultySlurmSimulator,
    FlakyGlobusLink,
    QueueingDatabase,
)
from repro.cluster.machines import ClusterSpec
from repro.cluster.slurm import Job
from repro.params import GB


def tiny_cluster(n_nodes=16):
    return ClusterSpec("tiny", n_nodes, 2, 14, 128 * 10**9, "x", "y", "z")


def job_list(n=20, nodes=2, runtime=600.0):
    return [Job(f"j{i}", f"R{i % 4}", nodes, runtime) for i in range(n)]


def test_no_failures_when_mttf_huge():
    sim = FaultySlurmSimulator(tiny_cluster(), node_mttf_hours=1e12,
                               rng=np.random.default_rng(0))
    out = sim.run(job_list())
    assert out.reruns == 0
    assert not out.failures
    assert len(out.schedule.records) == 20


def test_all_jobs_complete_despite_failures():
    sim = FaultySlurmSimulator(tiny_cluster(), node_mttf_hours=2.0,
                               rng=np.random.default_rng(1))
    jobs = job_list()
    out = sim.run(jobs)
    finished = {r.job.job_id for r in out.schedule.records}
    assert finished == {j.job_id for j in jobs}
    assert out.reruns > 0
    assert out.wasted_node_seconds > 0


def test_failures_extend_makespan():
    jobs = job_list()
    clean = FaultySlurmSimulator(
        tiny_cluster(), node_mttf_hours=1e12,
        rng=np.random.default_rng(2)).run(list(jobs))
    faulty = FaultySlurmSimulator(
        tiny_cluster(), node_mttf_hours=1.0,
        rng=np.random.default_rng(2)).run(list(jobs))
    assert faulty.schedule.makespan > clean.schedule.makespan
    assert faulty.overhead_fraction > 0


def test_overhead_grows_with_failure_rate():
    jobs = job_list(30)
    overheads = []
    for mttf in (50.0, 2.0):
        out = FaultySlurmSimulator(
            tiny_cluster(), node_mttf_hours=mttf,
            rng=np.random.default_rng(3)).run(list(jobs))
        overheads.append(out.overhead_fraction)
    assert overheads[1] > overheads[0]


def test_max_attempts_caps_retries():
    """At the attempt cap a job is allowed to finish (modelled checkpoint
    recovery) rather than looping forever."""
    sim = FaultySlurmSimulator(tiny_cluster(), node_mttf_hours=0.01,
                               max_attempts=2,
                               rng=np.random.default_rng(4))
    out = sim.run(job_list(5))
    assert len(out.schedule.records) == 5
    for job_id in (r.job.job_id for r in out.schedule.records):
        assert True  # completion is the invariant


def test_mttf_validation():
    with pytest.raises(ValueError):
        FaultySlurmSimulator(tiny_cluster(), node_mttf_hours=0.0)


def test_flaky_link_retries_and_succeeds():
    link = FlakyGlobusLink("a", "b", bandwidth=1.0 * GB,
                           failure_probability=0.6,
                           rng=np.random.default_rng(5))
    rec = link.transfer("data", "a", "b", 10 * GB)
    clean = FlakyGlobusLink("a", "b", bandwidth=1.0 * GB,
                            failure_probability=0.0)
    base = clean.transfer("data", "a", "b", 10 * GB)
    assert rec.duration >= base.duration
    assert len(link.records) == 1


def test_flaky_link_logs_interruptions():
    link = FlakyGlobusLink("a", "b", failure_probability=0.9,
                           max_retries=50,
                           rng=np.random.default_rng(6))
    link.transfer("data", "a", "b", GB)
    assert link.retry_log
    assert all(e.kind == "transfer" for e in link.retry_log)


def test_flaky_link_gives_up():
    link = FlakyGlobusLink("a", "b", failure_probability=1.0,
                           max_retries=3,
                           rng=np.random.default_rng(7))
    # Initial attempt + 3 retries = 4 chances before giving up.
    with pytest.raises(RuntimeError, match="failed 4 times"):
        link.transfer("data", "a", "b", GB)


class _ScriptedRNG:
    """An rng whose .random() draws follow a script (boundary testing)."""

    def __init__(self, draws):
        self.draws = list(draws)

    def random(self):
        return self.draws.pop(0)

    def uniform(self, lo, hi):
        return (lo + hi) / 2.0


def test_flaky_link_succeeds_on_final_retry():
    """max_retries=2 permits exactly 3 attempts: fail, fail, succeed."""
    link = FlakyGlobusLink("a", "b", failure_probability=0.5,
                           max_retries=2,
                           rng=_ScriptedRNG([0.1, 0.1, 0.9]))
    rec = link.transfer("data", "a", "b", GB)
    assert len(link.retry_log) == 2
    assert len(link.records) == 1
    assert rec.duration > link.duration_of(GB)  # wasted partial attempts


def test_flaky_link_exhausts_exactly_after_initial_plus_retries():
    """One failure past the budget (3 = 1 initial + 2 retries) gives up."""
    link = FlakyGlobusLink("a", "b", failure_probability=0.5,
                           max_retries=2,
                           rng=_ScriptedRNG([0.1, 0.1, 0.1, 0.9]))
    with pytest.raises(RuntimeError, match="failed 3 times"):
        link.transfer("data", "a", "b", GB)
    assert len(link.retry_log) == 3  # every permitted attempt was logged
    assert not link.records


def test_queueing_db_no_wait_under_cap():
    db = QueueingDatabase(max_connections=3)
    starts = [db.acquire(0.0, 10.0) for _ in range(3)]
    assert starts == [0.0, 0.0, 0.0]
    assert db.total_wait == 0.0


def test_queueing_db_queues_beyond_cap():
    db = QueueingDatabase(max_connections=2)
    db.acquire(0.0, 10.0)
    db.acquire(0.0, 20.0)
    start = db.acquire(0.0, 5.0)  # queued behind the first release
    assert start == 10.0
    assert db.total_wait == 10.0


def test_queueing_db_slots_free_over_time():
    db = QueueingDatabase(max_connections=1)
    db.acquire(0.0, 5.0)
    assert db.acquire(7.0, 5.0) == 7.0  # slot already free


def test_queueing_db_validation():
    with pytest.raises(ValueError):
        QueueingDatabase(0)


def test_queueing_db_clamps_non_monotonic_now():
    """A clock that jumps backwards is clamped to the latest time seen."""
    db = QueueingDatabase(max_connections=1)
    db.acquire(10.0, 5.0)
    start = db.acquire(3.0, 5.0)  # regressed clock: treated as now=10
    assert start == 15.0  # queued behind the slot releasing at 15
    assert db.waits == [0.0, 5.0]  # never a negative wait


def test_queueing_db_rejects_negative_hold():
    db = QueueingDatabase(max_connections=1)
    with pytest.raises(ValueError):
        db.acquire(0.0, -1.0)
