"""Slurm batch-script generation tests."""

import pytest

from repro.cluster.jobscript import (
    array_script,
    database_script,
    scripts_from_packing,
)
from repro.scheduling.levels import pack_ffdt_dc, pack_nfdt_dc
from repro.scheduling.wmp import MappingTask, WMPInstance


def tasks_for(region, n, nodes=2, t=600.0):
    return [MappingTask(region, i, nodes, t + i) for i in range(n)]


def test_database_script_contents():
    script = database_script("VA", max_connections=16)
    assert script.filename == "popdb_va.sbatch"
    assert "--max_connections=16" in script.content
    assert "#SBATCH --nodes=1" in script.content
    assert "db-snapshots/va" in script.content


def test_array_script_contents():
    tasks = tasks_for("VA", 5, nodes=4)
    script = array_script("VA", tasks, level=2)
    assert script.filename == "epi-va-l2.sbatch"
    assert "#SBATCH --nodes=4" in script.content
    assert "#SBATCH --array=0-4" in script.content
    assert "VA-c0" in script.content and "VA-c4" in script.content
    assert "--dependency" not in script.content


def test_array_script_dependency():
    tasks = tasks_for("VA", 2)
    script = array_script("VA", tasks, level=1, depends_on="epi-va-l0")
    assert "--dependency=afterok:epi-va-l0" in script.content


def test_array_script_walltime_covers_slowest():
    tasks = tasks_for("VA", 3, t=3600.0)  # slowest 3602s * 1.5 ~ 1.5h
    script = array_script("VA", tasks)
    assert "#SBATCH --time=01:3" in script.content


def test_array_script_validation():
    with pytest.raises(ValueError, match="at least one"):
        array_script("VA", [])
    mixed = [MappingTask("VA", 0, 2, 10.0), MappingTask("VA", 1, 4, 10.0)]
    with pytest.raises(ValueError, match="share a node count"):
        array_script("VA", mixed)


def test_scripts_from_ffdt_packing_no_dependencies():
    inst = WMPInstance(
        tasks_for("VA", 6) + tasks_for("MD", 4),
        machine_width=8, db_caps={"VA": 2, "MD": 2})
    scripts = scripts_from_packing(pack_ffdt_dc(inst))
    names = [s.filename for s in scripts]
    assert "popdb_va.sbatch" in names and "popdb_md.sbatch" in names
    for s in scripts:
        assert "--dependency" not in s.content


def test_scripts_from_nfdt_packing_chain_levels():
    inst = WMPInstance(
        tasks_for("VA", 8), machine_width=6, db_caps={"VA": 2})
    packed = pack_nfdt_dc(inst)
    assert packed.n_levels > 1
    scripts = scripts_from_packing(packed)
    deps = [s for s in scripts if "--dependency=afterok:" in s.content]
    assert deps  # later levels wait on earlier ones


def test_script_write(tmp_path):
    script = database_script("VT")
    path = script.write(tmp_path)
    assert path.read_text() == script.content


def test_db_cap_propagates_to_script():
    inst = WMPInstance(tasks_for("VA", 2), machine_width=8,
                       db_caps={"VA": 7})
    scripts = scripts_from_packing(pack_ffdt_dc(inst))
    db = next(s for s in scripts if s.filename.startswith("popdb"))
    assert "--max_connections=7" in db.content
