"""Cost-model tests (the Figures 7, 8, 10 shapes)."""

import numpy as np
import pytest

from repro.cluster.costmodel import (
    CostModel,
    INTERVENTION_RUNTIME_FACTOR,
    network_size_table,
    paper_scale_edges,
    paper_scale_nodes,
)
from repro.params import PAPER_TOTAL_EDGES, PAPER_TOTAL_NODES


@pytest.fixture(scope="module")
def cm():
    return CostModel()


def test_paper_scale_totals():
    nodes = sum(paper_scale_nodes(c) for c, _n, _e in
                [(r[0], r[1], r[2]) for r in network_size_table()])
    assert abs(nodes - PAPER_TOTAL_NODES) < 100
    edges = sum(r[2] for r in network_size_table())
    assert abs(edges - PAPER_TOTAL_EDGES) < 100


def test_california_is_largest():
    table = network_size_table()
    assert table[-1][0] == "CA"
    assert table[0][0] == "WY"
    # CA holds about 12% of the national network.
    assert 0.10 < paper_scale_edges("CA") / PAPER_TOTAL_EDGES < 0.14


def test_california_step_about_3_seconds(cm):
    """Section VI: a California step takes about 3 seconds."""
    step = cm.step_seconds("CA", n_nodes=6)
    assert 2.0 < step < 5.0


def test_runtime_linear_in_network_size(cm):
    """Figure 7 top: runtime grows linearly with input size."""
    sizes = [paper_scale_edges(c) for c in ("WY", "VA", "CA")]
    times = [cm.expected_runtime(c, 6) for c in ("WY", "VA", "CA")]
    # Slope between consecutive pairs should be consistent (affine model).
    s1 = (times[1] - times[0]) / (sizes[1] - sizes[0])
    s2 = (times[2] - times[1]) / (sizes[2] - sizes[1])
    assert s1 == pytest.approx(s2, rel=1e-6)


def test_intervention_factor_ordering(cm):
    """Figure 7 bottom: base < RO < TA < PS < D1CT < D2CT."""
    times = [cm.expected_runtime("VA", 4, scenario=s)
             for s in ("base", "RO", "TA", "PS", "D1CT", "D2CT")]
    assert times == sorted(times)


def test_d2ct_nearly_300_percent(cm):
    base = cm.expected_runtime("VA", 4, scenario="base")
    d2 = cm.expected_runtime("VA", 4, scenario="D2CT")
    assert 3.5 < d2 / base < 4.3  # "almost 300%" increase


def test_sampled_runtime_variance(cm):
    rng = np.random.default_rng(0)
    times = [cm.sample_runtime("VA", 4, rng).runtime_seconds
             for _ in range(200)]
    arr = np.asarray(times)
    assert arr.std() / arr.mean() > 0.2  # Figure 8 spread
    assert arr.min() > 0


def test_runtime_range_matches_figure8(cm):
    """Per-job runtimes span roughly 100-1400 seconds across states."""
    rng = np.random.default_rng(1)
    small = [cm.sample_runtime("WY", 2, rng).runtime_seconds
             for _ in range(50)]
    big = [cm.sample_runtime("CA", 6, rng, scenario="PS").runtime_seconds
           for _ in range(50)]
    assert 50 < np.median(small) < 400
    assert 600 < np.median(big) < 2500


def test_memory_proportional_to_network(cm):
    assert (cm.base_memory_bytes("CA")
            > 10 * cm.base_memory_bytes("WY"))


def test_memory_grows_with_compliance(cm):
    """Figure 10 left: higher compliance -> more memory."""
    low = cm.memory_series("VA", 0.2, 200)
    high = cm.memory_series("VA", 0.9, 200)
    assert high[-1] > low[-1]
    assert high[0] == low[0]  # same base before interventions


def test_memory_steps_at_interventions(cm):
    mem = cm.memory_series("VA", 0.8, 200, intervention_steps=(50,))
    jump = mem[50] - mem[49]
    drift = mem[49] - mem[48]
    assert jump > 5 * drift


def test_memory_final_correlates_with_initial(cm):
    """Figure 10 right: final memory tracks network size."""
    initials, finals = [], []
    for code in ("WY", "VA", "CA"):
        mem = cm.memory_series(code, 0.7, 200)
        initials.append(mem[0])
        finals.append(mem[-1])
    assert initials == sorted(initials)
    assert finals == sorted(finals)


def test_memory_compliance_validation(cm):
    with pytest.raises(ValueError):
        cm.memory_series("VA", 1.2, 100)


def test_min_nodes_categories(cm):
    assert cm.min_nodes("WY") <= 2
    assert cm.min_nodes("CA") > cm.min_nodes("WY")
    assert cm.min_nodes("CA") <= 6  # fits the paper's "large" category


def test_factor_table_matches_paper():
    assert INTERVENTION_RUNTIME_FACTOR["base"] == 1.0
    assert INTERVENTION_RUNTIME_FACTOR["D2CT"] == pytest.approx(3.9)
    assert (INTERVENTION_RUNTIME_FACTOR["D1CT"]
            < INTERVENTION_RUNTIME_FACTOR["D2CT"])
