"""Discrete-event loop tests."""

import pytest

from repro.cluster.events import EventLoop


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.run()
    assert fired == ["a", "b", "c"]
    assert loop.now == 3.0


def test_ties_fire_in_schedule_order():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(1.0, lambda: fired.append(2))
    loop.run()
    assert fired == [1, 2]


def test_handlers_can_schedule_more():
    loop = EventLoop()
    fired = []

    def chain():
        fired.append(loop.now)
        if len(fired) < 3:
            loop.schedule(1.0, chain)

    loop.schedule(0.0, chain)
    loop.run()
    assert fired == [0.0, 1.0, 2.0]


def test_cancel():
    loop = EventLoop()
    fired = []
    ev = loop.schedule(1.0, lambda: fired.append("x"))
    loop.cancel(ev)
    loop.run()
    assert fired == []
    assert loop.pending == 0


def test_run_until():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(5.0, lambda: fired.append(5))
    loop.run(until=2.0)
    assert fired == [1]
    assert loop.now == 2.0
    loop.run()
    assert fired == [1, 5]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-1.0, lambda: None)


def test_schedule_at():
    loop = EventLoop()
    fired = []
    loop.schedule_at(4.0, lambda: fired.append(loop.now))
    loop.run()
    assert fired == [4.0]
