"""Table II machine-spec tests."""

from repro.cluster.machines import (
    AccessWindow,
    BRIDGES,
    NIGHTLY_WINDOW,
    RIVANNA,
)


def test_bridges_table_ii():
    assert BRIDGES.n_nodes == 720
    assert BRIDGES.cpus_per_node == 2
    assert BRIDGES.cores_per_cpu == 14
    assert BRIDGES.cores_per_node == 28
    assert BRIDGES.ram_per_node_bytes == 128 * 10**9


def test_bridges_exceeds_20000_cores():
    # Section I: "over 20,000 cores ... dedicated each night".
    assert BRIDGES.total_cores > 20_000


def test_rivanna_table_ii():
    assert RIVANNA.n_nodes == 50
    assert RIVANNA.cores_per_node == 40
    assert RIVANNA.ram_per_node_bytes == 384 * 10**9


def test_rivanna_smaller_than_bridges():
    assert RIVANNA.total_cores < BRIDGES.total_cores


def test_core_hours():
    assert BRIDGES.core_hours(10) == BRIDGES.total_cores * 10


def test_nightly_window():
    assert NIGHTLY_WINDOW.duration_hours == 10.0
    assert NIGHTLY_WINDOW.duration_seconds == 36_000.0
    # 10pm-8am wraps midnight.
    assert NIGHTLY_WINDOW.contains(23.0)
    assert NIGHTLY_WINDOW.contains(3.0)
    assert NIGHTLY_WINDOW.contains(7.9)
    assert not NIGHTLY_WINDOW.contains(12.0)
    assert not NIGHTLY_WINDOW.contains(8.5)


def test_non_wrapping_window():
    w = AccessWindow(start_hour=9.0, duration_hours=4.0)
    assert w.contains(10.0)
    assert not w.contains(14.0)
    assert not w.contains(8.0)
