"""Medical-cost model tests."""

import pytest

from repro.analytics.aggregate import summarize
from repro.economics.costs import (
    CostParameters,
    MedicalCosts,
    compute_medical_costs,
    cost_per_capita,
)


@pytest.fixture(scope="module")
def summary(va_run, covid_model):
    _pop, _net, result = va_run
    return summarize(result, covid_model)


def test_costs_positive_for_real_epidemic(summary, covid_model):
    costs = compute_medical_costs(summary, covid_model, scale=1e-3)
    assert costs.total > 0
    assert costs.outpatient > 0
    assert costs.total == pytest.approx(
        costs.outpatient + costs.hospital + costs.ventilator
        + costs.admissions)


def test_gross_up_by_scale(summary, covid_model):
    at_milli = compute_medical_costs(summary, covid_model, scale=1e-3)
    at_centi = compute_medical_costs(summary, covid_model, scale=1e-2)
    assert at_milli.total == pytest.approx(10 * at_centi.total)


def test_custom_unit_costs(summary, covid_model):
    base = compute_medical_costs(summary, covid_model, scale=1e-3)
    doubled = compute_medical_costs(
        summary, covid_model, scale=1e-3,
        params=CostParameters(outpatient_visit=660.0))
    assert doubled.outpatient == pytest.approx(2 * base.outpatient)
    assert doubled.hospital == pytest.approx(base.hospital)


def test_scale_validation(summary, covid_model):
    with pytest.raises(ValueError):
        compute_medical_costs(summary, covid_model, scale=0.0)


def test_cost_per_capita():
    costs = MedicalCosts(outpatient=1e6, hospital=2e6, ventilator=0.0,
                         admissions=0.0)
    assert cost_per_capita(costs, 1e6) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        cost_per_capita(costs, 0)


def test_hospital_costs_dominate_outpatient_per_case(summary, covid_model):
    """A hospital stay costs far more than an outpatient course."""
    costs = compute_medical_costs(summary, covid_model, scale=1e-3)
    from repro.analytics.targets import DAILY_CASES, HOSPITALIZATIONS, target_series
    cases = target_series(summary, covid_model, DAILY_CASES).sum()
    admissions = target_series(summary, covid_model, HOSPITALIZATIONS).sum()
    if admissions > 0:
        per_admission = (costs.hospital + costs.admissions) / admissions
        per_case = costs.outpatient / cases
        assert per_admission > 5 * per_case
