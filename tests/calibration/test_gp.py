"""GP emulator (Eq. 4) tests."""

import numpy as np
import pytest

from repro.calibration.gp import GPEmulator, fit_gp, gpmsa_correlation
from repro.calibration.lhs import latin_hypercube


def test_correlation_identity_diagonal():
    x = np.random.default_rng(0).random((10, 3))
    r = gpmsa_correlation(x, x, np.array([0.5, 0.5, 0.5]))
    np.testing.assert_allclose(np.diag(r), 1.0)
    assert (r <= 1.0 + 1e-12).all()
    assert (r > 0).all()


def test_correlation_half_unit_interpretation():
    """rho_k is the correlation at distance 0.5 in dimension k."""
    x1 = np.array([[0.0]])
    x2 = np.array([[0.5]])
    r = gpmsa_correlation(x1, x2, np.array([0.3]))
    assert r[0, 0] == pytest.approx(0.3)


def test_correlation_decreases_with_distance():
    rho = np.array([0.5])
    points = np.array([[0.0], [0.1], [0.3], [0.9]])
    r = gpmsa_correlation(np.array([[0.0]]), points, rho)[0]
    assert (np.diff(r) < 0).all()


def test_fit_recovers_smooth_function():
    rng = np.random.default_rng(1)
    x = latin_hypercube(40, 2, rng)
    y = np.sin(3 * x[:, 0]) + x[:, 1] ** 2
    gp = fit_gp(x, y, rng)
    x_test = latin_hypercube(20, 2, np.random.default_rng(2))
    y_test = np.sin(3 * x_test[:, 0]) + x_test[:, 1] ** 2
    mean, var = gp.predict(x_test)
    rmse = np.sqrt(np.mean((mean - y_test) ** 2))
    assert rmse < 0.15 * y.std()
    assert (var > 0).all()


def test_training_points_nearly_interpolated():
    rng = np.random.default_rng(3)
    x = latin_hypercube(25, 1, rng)
    y = np.cos(4 * x[:, 0])
    gp = fit_gp(x, y, rng)
    mean, _ = gp.predict(x)
    assert np.abs(mean - y).max() < 0.1


def test_variance_grows_away_from_data():
    rng = np.random.default_rng(4)
    x = latin_hypercube(15, 1, rng) * 0.5  # data only in [0, 0.5]
    y = x[:, 0]
    gp = fit_gp(x, y, rng)
    _m_near, v_near = gp.predict(np.array([[0.25]]))
    _m_far, v_far = gp.predict(np.array([[0.99]]))
    assert v_far[0] > v_near[0]


def test_fit_gp_seed_is_reproducible():
    """Two fits with the same seed produce identical fitted kernels."""
    x = latin_hypercube(20, 2, np.random.default_rng(0))
    y = np.sin(3 * x[:, 0]) + x[:, 1]
    a = fit_gp(x, y, seed=7)
    b = fit_gp(x, y, seed=7)
    np.testing.assert_array_equal(a.rho, b.rho)
    assert a.lam == b.lam
    assert a.nugget == b.nugget
    # And an explicit generator with the same stream matches too.
    c = fit_gp(x, y, np.random.default_rng(7))
    np.testing.assert_array_equal(a.rho, c.rho)


def test_fit_gp_rng_and_seed_are_exclusive():
    x = latin_hypercube(5, 1, np.random.default_rng(0))
    y = x[:, 0]
    with pytest.raises(ValueError, match="rng or seed"):
        fit_gp(x, y, np.random.default_rng(0), seed=1)


def test_variance_near_zero_at_training_points():
    """Predictive variance collapses on the training set (sanity)."""
    rng = np.random.default_rng(6)
    x = latin_hypercube(20, 1, rng)
    y = np.sin(2 * x[:, 0])
    gp = fit_gp(x, y, rng)
    _, v_train = gp.predict(x)
    prior_var = (1.0 + gp.nugget) / gp.lam
    assert v_train.max() < 0.25 * prior_var
    _, v_far = gp.predict(np.array([[3.0]]))  # far outside the cube
    assert v_far[0] > 10 * v_train.max()


def test_fit_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError, match="at least 3"):
        fit_gp(np.array([[0.1], [0.2]]), np.array([1.0, 2.0]), rng)
    with pytest.raises(ValueError, match="row counts"):
        fit_gp(np.ones((4, 1)), np.ones(3), rng)


def test_emulator_direct_construction():
    x = np.linspace(0, 1, 10)[:, None]
    y = x[:, 0] * 2
    gp = GPEmulator(x=x, y=y, rho=np.array([0.8]), lam=1.0, nugget=1e-4)
    mean, var = gp.predict(np.array([[0.55]]))
    assert abs(mean[0] - 1.1) < 0.1
    assert var[0] > 0


def test_loo_residuals_standardised():
    rng = np.random.default_rng(5)
    x = latin_hypercube(30, 1, rng)
    y = x[:, 0] + rng.normal(0, 0.01, 30)
    gp = fit_gp(x, y, rng)
    resid = gp.loo_residuals()
    assert resid.shape == (30,)
    assert np.abs(resid).mean() < 5.0
