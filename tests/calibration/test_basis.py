"""Eigenbasis (Eq. 3) tests."""

import numpy as np
import pytest

from repro.calibration.basis import fit_basis


def low_rank_ensemble(n, t, rank, seed, noise=0.0):
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(rank, t))
    coeffs = rng.normal(size=(n, rank))
    y = coeffs @ basis + 100.0
    if noise:
        y = y + rng.normal(0, noise, size=y.shape)
    return y


def test_basis_shapes():
    y = low_rank_ensemble(30, 80, 3, seed=0)
    b = fit_basis(y, p_eta=5)
    assert b.phi.shape == (80, 3)  # capped at rank
    assert b.mean.shape == (80,)
    assert b.explained.shape == (3,)


def test_rank_p_data_reconstructs_exactly():
    y = low_rank_ensemble(25, 60, 4, seed=1)
    b = fit_basis(y, p_eta=4)
    assert b.reconstruction_error(y) < 1e-8


def test_explained_variance_ordering():
    y = low_rank_ensemble(40, 100, 6, seed=2, noise=0.1)
    b = fit_basis(y, p_eta=5)
    assert (np.diff(b.explained) <= 1e-12).all()
    assert b.explained.sum() <= 1.0 + 1e-9


def test_more_components_less_error():
    y = low_rank_ensemble(40, 100, 8, seed=3)
    errs = [fit_basis(y, p_eta=p).reconstruction_error(y)
            for p in (1, 3, 6, 8)]
    assert errs == sorted(errs, reverse=True)
    assert errs[-1] < 1e-8


def test_project_reconstruct_roundtrip_in_span():
    y = low_rank_ensemble(30, 50, 3, seed=4)
    b = fit_basis(y, p_eta=3)
    w = b.project(y[:5])
    assert w.shape == (5, 3)
    np.testing.assert_allclose(b.reconstruct(w), y[:5], atol=1e-6)


def test_coefficients_near_unit_scale():
    """GPMSA scaling: training coefficients should be O(1)."""
    y = low_rank_ensemble(50, 80, 5, seed=5)
    b = fit_basis(y, p_eta=5)
    w = b.project(y)
    assert 0.1 < w.std() < 10.0


def test_truncation_sd_zero_when_complete():
    y = low_rank_ensemble(20, 40, 2, seed=6)
    b = fit_basis(y, p_eta=2)
    assert b.truncation_sd.max() < 1e-8


def test_truncation_sd_positive_when_truncated():
    y = low_rank_ensemble(30, 40, 10, seed=7)
    b = fit_basis(y, p_eta=2)
    assert b.truncation_sd.max() > 0.01


def test_truncation_sd_bounds_roundtrip_error():
    """Project-then-reconstruct residuals match the truncation term.

    The surrogate adds ``truncation_sd`` to its predictive variance, so
    the per-day RMS of what the basis cannot represent must be of that
    order (in output units: truncation_sd * scale).
    """
    y = low_rank_ensemble(40, 60, 8, seed=8, noise=0.5)
    b = fit_basis(y, p_eta=3)
    resid = y - b.reconstruct(b.project(y))
    rms = np.sqrt(np.mean(resid ** 2, axis=0))
    bound = b.truncation_sd * b.scale
    assert (rms <= 2.0 * bound + 1e-9).all()
    # And globally the residual is genuinely explained by the term.
    assert np.sqrt(np.mean(resid ** 2)) <= 1.5 * float(
        np.sqrt(np.mean(bound ** 2)))


def test_validation():
    with pytest.raises(ValueError):
        fit_basis(np.ones((1, 10)))
    with pytest.raises(ValueError):
        fit_basis(np.ones((5, 10)))  # zero variance
