"""Discrepancy-kernel (Eq. 5) tests."""

import numpy as np
import pytest

from repro.calibration.discrepancy import (
    DEFAULT_P_DELTA,
    KERNEL_SD_DAYS,
    KERNEL_SPACING_DAYS,
    discrepancy_basis,
    discrepancy_covariance,
)


def test_paper_constants():
    assert DEFAULT_P_DELTA == 7
    assert KERNEL_SD_DAYS == 15.0
    assert KERNEL_SPACING_DAYS == 10.0


def test_shape():
    d = discrepancy_basis(120)
    assert d.shape == (120, 7)


def test_kernels_peak_at_one():
    d = discrepancy_basis(200)
    np.testing.assert_allclose(d.max(axis=0), 1.0, atol=1e-3)


def test_kernel_spacing():
    d = discrepancy_basis(200)
    peaks = d.argmax(axis=0)
    gaps = np.diff(peaks)
    np.testing.assert_allclose(gaps, 10, atol=1)


def test_kernels_centered_in_window():
    d = discrepancy_basis(200, p_delta=7, spacing=10.0)
    peaks = d.argmax(axis=0)
    block_center = (peaks[0] + peaks[-1]) / 2
    assert abs(block_center - 99.5) < 2


def test_short_series_spreads_kernels():
    d = discrepancy_basis(30, p_delta=7, spacing=10.0)
    peaks = d.argmax(axis=0)
    assert peaks[0] <= 2
    assert peaks[-1] >= 27


def test_gaussian_width():
    d = discrepancy_basis(300, p_delta=1)
    col = d[:, 0]
    center = col.argmax()
    # Value one sd away from the centre is exp(-0.5).
    # Half-a-day discretisation of the kernel centre shifts this slightly.
    assert col[center + 15] == pytest.approx(np.exp(-0.5), abs=0.03)


def test_covariance_psd():
    d = discrepancy_basis(60)
    cov = discrepancy_covariance(d, lambda_delta=2.0)
    eigvals = np.linalg.eigvalsh(cov)
    assert eigvals.min() > -1e-10
    assert cov.shape == (60, 60)


def test_covariance_validation():
    d = discrepancy_basis(10)
    with pytest.raises(ValueError):
        discrepancy_covariance(d, 0.0)


def test_basis_validation():
    with pytest.raises(ValueError):
        discrepancy_basis(0)
    with pytest.raises(ValueError):
        discrepancy_basis(10, p_delta=0)
