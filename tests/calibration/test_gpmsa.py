"""End-to-end GPMSA calibration tests on a synthetic problem."""

import numpy as np
import pytest

from repro.calibration.gpmsa import GPMSACalibrator, log_counts
from repro.calibration.lhs import ParameterSpace, sample_design

T = 80


def simulator(theta, rng=None, noise=0.0):
    """Logistic outbreak parameterised by (rate, final-size scale)."""
    rate, size = theta
    t = np.arange(T, dtype=np.float64)
    curve = 2000.0 * size / (1.0 + np.exp(-rate * (t - 40)))
    if noise and rng is not None:
        curve = curve * rng.lognormal(0.0, noise, T)
    return curve


@pytest.fixture(scope="module")
def setup():
    space = ParameterSpace(("rate", "size"), np.array([0.05, 0.5]),
                           np.array([0.30, 2.0]))
    rng = np.random.default_rng(10)
    design = sample_design(space, 40, rng)
    outputs = np.vstack([simulator(th, rng, noise=0.04) for th in design])
    truth = np.array([0.18, 1.3])
    observed = simulator(truth, rng, noise=0.04)
    cal = GPMSACalibrator(space, design, outputs, observed, seed=11)
    posterior = cal.calibrate(n_samples=800, burn_in=600)
    return space, truth, cal, posterior


def test_log_counts_transform():
    np.testing.assert_allclose(log_counts([0.0, np.e - 1]), [0.0, 1.0])


def test_posterior_brackets_truth(setup):
    _space, truth, _cal, post = setup
    lo, hi = np.quantile(post.theta_samples, [0.025, 0.975], axis=0)
    assert (lo <= truth).all()
    assert (hi >= truth).all()


def test_posterior_tightens_rate(setup):
    _space, _truth, _cal, post = setup
    tight = post.tightening()
    assert tight[0] < 0.8  # rate is strongly identified


def test_posterior_within_prior_box(setup):
    space, _truth, _cal, post = setup
    assert space.contains(post.theta_samples).all()


def test_select_configurations(setup):
    _space, _truth, _cal, post = setup
    rng = np.random.default_rng(1)
    configs = post.select_configurations(25, rng)
    assert configs.shape == (25, 2)


def test_emulate_matches_simulator(setup):
    _space, truth, cal, _post = setup
    em = cal.emulate(truth[None, :])[0]
    sim = simulator(truth)
    rel = np.abs(em[-1] - sim[-1]) / sim[-1]
    assert rel < 0.25


def test_emulator_band_brackets_observation(setup):
    """The Figure 16 criterion: ground truth falls inside the emulator's
    95% band at plausible parameters."""
    _space, _truth, cal, post = setup
    rng = np.random.default_rng(2)
    thetas = post.select_configurations(10, rng)
    band = cal.emulator_band(thetas, n_draws_per_theta=10)
    lo, hi = np.quantile(band, [0.025, 0.975], axis=0)
    observed = np.expm1(cal.z_obs * cal.basis.scale + cal.basis.mean)
    inside = ((observed >= lo) & (observed <= hi)).mean()
    assert inside > 0.6


def test_validation_errors():
    space = ParameterSpace(("a",), np.array([0.0]), np.array([1.0]))
    with pytest.raises(ValueError, match="row counts"):
        GPMSACalibrator(space, np.ones((3, 1)), np.ones((4, 10)),
                        np.ones(10))
    with pytest.raises(ValueError, match="horizons"):
        GPMSACalibrator(space, np.ones((4, 1)), np.ones((4, 10)),
                        np.ones(9))


def test_log_posterior_off_support(setup):
    space, _truth, cal, _post = setup
    bad = np.array([2.0, 0.5, 0.0, 0.0])  # theta_unit out of cube
    assert cal.log_posterior(bad) == -np.inf


def test_mcmc_diagnostics(setup):
    _space, _truth, _cal, post = setup
    assert 0.05 < post.mcmc.accept_rate < 0.9
    assert post.lambda_obs.min() > 0
    assert post.lambda_delta.min() > 0
