"""Metropolis MCMC tests."""

import numpy as np
import pytest

from repro.calibration.mcmc import metropolis


def test_samples_standard_normal():
    rng = np.random.default_rng(0)

    def log_post(theta):
        return float(-0.5 * (theta ** 2).sum())

    res = metropolis(log_post, np.zeros(2), n_samples=4000, burn_in=1000,
                     init_scales=1.0, rng=rng)
    assert res.samples.shape == (4000, 2)
    assert np.abs(res.posterior_mean()).max() < 0.15
    assert np.abs(res.samples.std(axis=0) - 1.0).max() < 0.15


def test_respects_support():
    rng = np.random.default_rng(1)

    def log_post(theta):
        if theta[0] < 0 or theta[0] > 1:
            return -np.inf
        return 0.0

    res = metropolis(log_post, np.array([0.5]), n_samples=2000,
                     burn_in=300, rng=rng)
    assert res.samples.min() >= 0
    assert res.samples.max() <= 1


def test_rejects_bad_start():
    rng = np.random.default_rng(2)
    with pytest.raises(ValueError, match="non-finite"):
        metropolis(lambda t: -np.inf, np.zeros(1), rng=rng)


def test_acceptance_rate_reasonable_after_adaptation():
    rng = np.random.default_rng(3)

    def log_post(theta):
        return float(-0.5 * (theta ** 2).sum() / 0.01)  # narrow target

    res = metropolis(log_post, np.zeros(3), n_samples=2000, burn_in=3000,
                     init_scales=5.0, rng=rng)  # badly scaled start
    assert 0.1 < res.accept_rate < 0.7


def test_credible_interval_and_ess():
    rng = np.random.default_rng(4)
    res = metropolis(lambda t: float(-0.5 * t @ t), np.zeros(1),
                     n_samples=3000, burn_in=500, init_scales=1.0, rng=rng)
    lo, hi = res.credible_interval(0.95)
    assert lo[0] < -1.5 and hi[0] > 1.5
    assert res.effective_sample_size()[0] > 50


def test_thinning():
    rng = np.random.default_rng(5)
    res = metropolis(lambda t: float(-0.5 * t @ t), np.zeros(1),
                     n_samples=100, burn_in=100, thin=5, rng=rng)
    assert res.samples.shape[0] == 100


def test_bimodal_target_visits_both_modes():
    rng = np.random.default_rng(6)

    def log_post(theta):
        x = theta[0]
        return float(np.logaddexp(-0.5 * (x - 2) ** 2,
                                  -0.5 * (x + 2) ** 2))

    res = metropolis(log_post, np.array([0.0]), n_samples=6000,
                     burn_in=1000, init_scales=2.0, rng=rng)
    x = res.samples[:, 0]
    assert (x > 1).mean() > 0.15
    assert (x < -1).mean() > 0.15
