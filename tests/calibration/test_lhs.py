"""Latin hypercube design tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.lhs import (
    ParameterSpace,
    latin_hypercube,
    maximin_lhs,
    sample_design,
)


@pytest.fixture()
def space():
    return ParameterSpace(("a", "b"), np.array([0.0, 10.0]),
                          np.array([1.0, 20.0]))


def test_space_validation():
    with pytest.raises(ValueError, match="match"):
        ParameterSpace(("a",), np.array([0.0, 1.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError, match="exceed"):
        ParameterSpace(("a",), np.array([1.0]), np.array([1.0]))


def test_unit_mapping_roundtrip(space):
    theta = np.array([[0.5, 15.0], [0.0, 10.0]])
    u = space.to_unit(theta)
    np.testing.assert_allclose(space.from_unit(u), theta)
    np.testing.assert_allclose(u[1], [0.0, 0.0])


def test_contains(space):
    inside = np.array([0.5, 15.0])
    outside = np.array([1.5, 15.0])
    assert space.contains(inside)[0]
    assert not space.contains(outside)[0]


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 40), dim=st.integers(1, 5),
       seed=st.integers(0, 2**31))
def test_property_lhs_stratification(n, dim, seed):
    """Exactly one point per axis stratum — the defining LHS property."""
    u = latin_hypercube(n, dim, np.random.default_rng(seed))
    assert u.shape == (n, dim)
    assert (u >= 0).all() and (u < 1).all()
    for k in range(dim):
        strata = np.floor(u[:, k] * n).astype(int)
        assert sorted(strata.tolist()) == list(range(n))


def test_lhs_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        latin_hypercube(0, 2, rng)


def test_maximin_improves_min_distance():
    rng = np.random.default_rng(1)
    plain = [latin_hypercube(20, 2, rng) for _ in range(10)]
    best_plain = max(
        float(np.min(
            ((u[:, None] - u[None]) ** 2).sum(-1)
            + np.eye(20) * 1e9))
        for u in plain)
    mm = maximin_lhs(20, 2, np.random.default_rng(1))
    d2 = ((mm[:, None] - mm[None]) ** 2).sum(-1) + np.eye(20) * 1e9
    # Maximin keeps the defining stratification and produces a spread at
    # least comparable to typical plain draws.
    assert float(d2.min()) > 0
    for k in range(2):
        strata = np.floor(mm[:, k] * 20).astype(int)
        assert sorted(strata.tolist()) == list(range(20))


def test_sample_design_in_bounds(space):
    rng = np.random.default_rng(2)
    d = sample_design(space, 30, rng)
    assert d.shape == (30, 2)
    assert space.contains(d).all()


def test_maximin_single_point():
    u = maximin_lhs(1, 3, np.random.default_rng(0))
    assert u.shape == (1, 3)
