"""Quantile-based emulation tests (ref [18])."""

import numpy as np
import pytest

from repro.calibration.lhs import ParameterSpace, sample_design
from repro.calibration.quantile import (
    fit_quantile_emulator,
    replicate_quantiles,
)

T = 50
R = 12


def stochastic_sim(theta, rng):
    """Logistic curve with multiplicative noise whose spread grows with
    the rate parameter."""
    rate = theta[0]
    t = np.arange(T, dtype=np.float64)
    base = 1000.0 / (1.0 + np.exp(-rate * (t - 25)))
    noise_sd = 0.05 + 0.4 * rate
    return base * rng.lognormal(0.0, noise_sd, T)


@pytest.fixture(scope="module")
def fitted():
    space = ParameterSpace(("rate",), np.array([0.05]), np.array([0.5]))
    rng = np.random.default_rng(60)
    design = sample_design(space, 25, rng)
    outputs = np.stack([
        np.stack([stochastic_sim(th, rng) for _ in range(R)])
        for th in design
    ])
    em = fit_quantile_emulator(space, design, outputs, seed=61)
    return space, design, outputs, em


def test_replicate_quantiles_shape():
    arr = np.random.default_rng(0).random((5, 8, 20))
    q = replicate_quantiles(arr, (0.25, 0.5, 0.75))
    assert q.shape == (3, 5, 20)
    assert (q[0] <= q[1]).all() and (q[1] <= q[2]).all()


def test_replicate_quantiles_validation():
    with pytest.raises(ValueError, match="n_replicates"):
        replicate_quantiles(np.ones((5, 20)))
    with pytest.raises(ValueError, match=">= 2"):
        replicate_quantiles(np.ones((5, 1, 20)))


def test_median_prediction_accurate(fitted):
    space, _design, _outputs, em = fitted
    theta = np.array([[0.2]])
    rng = np.random.default_rng(62)
    truth = np.median(
        [stochastic_sim(theta[0], rng) for _ in range(200)], axis=0)
    pred = em.median(theta)[0]
    rel = abs(pred[-1] - truth[-1]) / truth[-1]
    assert rel < 0.25


def test_quantile_ordering_roughly_preserved(fitted):
    _space, design, _outputs, em = fitted
    thetas = design[:5]
    q25 = em.predict_quantile(0.25, thetas)
    q75 = em.predict_quantile(0.75, thetas)
    # Late-curve values: upper quantile above lower for most points.
    assert (q75[:, -1] > q25[:, -1]).all()


def test_spread_grows_with_stochasticity(fitted):
    """The noise sd grows with the rate parameter; the emulated spread
    must reflect it."""
    _space, _design, _outputs, em = fitted
    low = em.predict_spread(np.array([[0.08]]))[0, -1]
    high = em.predict_spread(np.array([[0.45]]))[0, -1]
    assert high > low


def test_unknown_level_rejected(fitted):
    _space, _design, _outputs, em = fitted
    with pytest.raises(KeyError):
        em.predict_quantile(0.9, np.array([[0.2]]))


def test_design_size_mismatch():
    space = ParameterSpace(("a",), np.array([0.0]), np.array([1.0]))
    with pytest.raises(ValueError, match="design size"):
        fit_quantile_emulator(space, np.ones((3, 1)),
                              np.ones((4, 5, 10)))
