"""Span tracer: nesting, timing monotonicity, modelled spans, JSONL stream."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanRecord, Tracer, read_trace

pytestmark = pytest.mark.fast


def test_nesting_parent_ids_and_depth():
    tr = Tracer()
    with tr.span("outer") as outer:
        with tr.span("mid") as mid:
            with tr.span("inner") as inner:
                pass
    assert outer.parent_id is None and outer.depth == 0
    assert mid.parent_id == outer.span_id and mid.depth == 1
    assert inner.parent_id == mid.span_id and inner.depth == 2
    # Spans close inner-first.
    assert [s.name for s in tr.spans] == ["inner", "mid", "outer"]
    assert all(s.finished for s in tr.spans)


def test_timing_monotonicity():
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("first"):
            sum(range(1000))
        with tr.span("second"):
            sum(range(1000))
    by_name = {s.name: s for s in tr.spans}
    outer, first, second = (by_name[n] for n in ("outer", "first", "second"))
    # Children start at or after the parent, in order.
    assert outer.start_s <= first.start_s <= second.start_s
    # A parent's wall time covers its children's.
    assert outer.wall_s >= first.wall_s + second.wall_s
    assert all(s.wall_s >= 0.0 and s.cpu_s >= 0.0 for s in tr.spans)


def test_sibling_spans_share_parent():
    tr = Tracer()
    with tr.span("root"):
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
    by_name = {s.name: s for s in tr.spans}
    root = by_name["root"]
    assert by_name["a"].parent_id == root.span_id
    assert by_name["b"].parent_id == root.span_id
    assert by_name["a"].span_id != by_name["b"].span_id


def test_modelled_span_uses_simulated_clock():
    tr = Tracer()
    with tr.span("night"):
        rec = tr.modelled_span("instance:j0", start=3600.0, wall_s=1800.0,
                               region="VA")
    assert rec.modelled and rec.finished
    assert rec.start_s == 3600.0 and rec.wall_s == 1800.0
    assert rec.attrs["region"] == "VA"
    # Nests under the open real span.
    night = next(s for s in tr.spans if s.name == "night")
    assert rec.parent_id == night.span_id and rec.depth == 1


def test_open_spans_reflect_the_stack():
    tr = Tracer()
    assert tr.open_spans == []
    cm = tr.span("pending")
    cm.__enter__()
    assert [s.name for s in tr.open_spans] == ["pending"]
    cm.__exit__(None, None, None)
    assert tr.open_spans == []


def test_exception_still_closes_span():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with tr.span("doomed"):
            raise RuntimeError("boom")
    assert tr.open_spans == []
    assert tr.spans[0].finished


def test_jsonl_stream_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    reg = MetricsRegistry()
    reg.inc("x.n", 3)
    with Tracer(path, run_id="t1") as tr:
        with tr.span("a", k=1):
            tr.modelled_span("m", start=0.0, wall_s=2.0)
        tr.event("note", detail="hello")
        tr.metrics(reg)
    events = read_trace(path)
    kinds = [e["event"] for e in events]
    assert kinds == ["span_start", "span", "span_end", "annotation",
                     "metrics"]
    assert all(e["run_id"] == "t1" for e in events)
    # Every line is valid standalone JSON (the stream is appendable).
    lines = path.read_text().splitlines()
    assert len(lines) == len(events)
    for line in lines:
        json.loads(line)


def test_fresh_tracer_truncates_previous_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tr:
        with tr.span("old"):
            pass
    with Tracer(path) as tr:
        with tr.span("new"):
            pass
    names = [e.get("name") for e in read_trace(path)]
    assert "old" not in names and "new" in names


def test_pathless_tracer_writes_nothing(tmp_path):
    tr = Tracer()
    with tr.span("memory-only"):
        pass
    tr.close()
    assert list(tmp_path.iterdir()) == []
    assert isinstance(tr.spans[0], SpanRecord)
