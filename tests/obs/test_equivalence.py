"""Instrumentation must observe, never perturb: bit-identical outputs.

The tracer and registry read clocks and count work, but the simulation's
RNG stream and state evolution must be untouched — a traced run and a bare
run of the same seed produce byte-for-byte the same outputs, and the trace
metrics agree with the legacy counter views exactly (same observations,
not a parallel measurement).
"""

import numpy as np
import pytest

from repro.epihiper import Simulation, uniform_seeds
from repro.obs import MetricsRegistry, Tracer, summarize

pytestmark = pytest.mark.fast

N_DAYS = 40


def _run(vt_assets, covid_model, *, metrics=None, tracer=None):
    pop, net = vt_assets
    sim = Simulation(covid_model, pop, net, seed=11,
                     metrics=metrics, tracer=tracer)
    sim.seed_infections(uniform_seeds(pop, 5, sim.rng))
    return sim.run(N_DAYS)


def test_traced_run_is_bit_identical(tmp_path, vt_assets, covid_model):
    bare = _run(vt_assets, covid_model)
    path = tmp_path / "trace.jsonl"
    with Tracer(path, run_id="equiv") as tr:
        traced = _run(vt_assets, covid_model,
                      metrics=MetricsRegistry(), tracer=tr)

    np.testing.assert_array_equal(bare.state_counts, traced.state_counts)
    np.testing.assert_array_equal(bare.memory_series, traced.memory_series)
    np.testing.assert_array_equal(bare.log.tick, traced.log.tick)
    np.testing.assert_array_equal(bare.log.pid, traced.log.pid)
    np.testing.assert_array_equal(bare.log.state, traced.log.state)
    np.testing.assert_array_equal(bare.log.infector, traced.log.infector)
    # Work counters (not clocks) are identical too.
    for key in ("transitions", "contacts_evaluated", "ticks"):
        if key in bare.counters:
            assert bare.counters[key] == traced.counters[key]


def test_legacy_counters_view_mirrors_registry(vt_assets, covid_model):
    result = _run(vt_assets, covid_model)
    counters = result.counters
    for key, val in counters.items():
        assert result.metrics.value(f"engine.{key}") == val
    # Types preserved: counters int, phase timers float.
    assert isinstance(counters["transitions"], int)
    assert isinstance(counters["transmission_s"], float)


def test_trace_phase_totals_equal_legacy_counters(tmp_path, vt_assets,
                                                  covid_model):
    path = tmp_path / "trace.jsonl"
    reg = MetricsRegistry()
    with Tracer(path, run_id="phases") as tr:
        result = _run(vt_assets, covid_model, metrics=reg, tracer=tr)
        tr.metrics(reg)

    s = summarize(path)
    table = {phase: total for phase, total, _ in s.engine_phase_table()}
    # Same observations on both sides of the JSONL stream — exact equality,
    # not approximate: there is one measurement, viewed twice.
    for phase in ("interventions", "transmission", "progression"):
        assert table[phase] == result.counters[f"{phase}_s"]
    shares = [share for _, _, share in s.engine_phase_table()]
    assert sum(shares) == pytest.approx(1.0)
