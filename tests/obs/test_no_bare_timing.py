"""AST lint: ``repro.obs`` owns the monotonic clock.

Ad-hoc ``time.perf_counter()`` pairs are how telemetry fragments: each
module grows its own timing dict and no report can see across them.  The
registry's ``timer()`` context manager and ``Stopwatch`` are the only
sanctioned readers, so everything outside ``repro/obs`` must go through
them — enforced here over the actual source tree.
"""

import ast
from pathlib import Path

import pytest

import repro

pytestmark = pytest.mark.fast

SRC_ROOT = Path(repro.__file__).resolve().parent
FORBIDDEN = {"perf_counter", "process_time", "monotonic", "thread_time"}


def _violations(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    out = []
    for node in ast.walk(tree):
        name = None
        if isinstance(node, ast.Attribute) and node.attr in FORBIDDEN:
            name = node.attr
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = [a.name for a in node.names if a.name in FORBIDDEN]
            if bad:
                name = ", ".join(bad)
        if name:
            out.append(f"{path}:{node.lineno}: {name}")
    return out


def test_monotonic_clock_only_read_inside_obs():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if SRC_ROOT / "obs" in path.parents:
            continue
        offenders.extend(_violations(path))
    assert not offenders, (
        "bare monotonic-clock reads outside repro.obs (use "
        "MetricsRegistry.timer()/Stopwatch/Tracer.span instead):\n  "
        + "\n  ".join(offenders))


def test_lint_actually_detects(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt0 = time.perf_counter()\n")
    assert _violations(bad)
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert not _violations(good)
