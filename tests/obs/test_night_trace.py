"""End-to-end: a traced orchestrated night yields a complete span tree."""

import pytest

from repro.core.designs import Cell, ExperimentDesign
from repro.core.orchestrator import orchestrate_night
from repro.obs import MetricsRegistry, Tracer, summarize

pytestmark = pytest.mark.fast

TASK_NAMES = {
    "generate-configurations", "transfer-configurations",
    "start-population-databases", "run-simulations",
    "aggregate-output", "transfer-summaries", "home-analytics",
}


@pytest.fixture()
def design():
    return ExperimentDesign("tiny", (Cell(0), Cell(1)),
                            ("VA", "VT", "MD"), 2)


@pytest.fixture()
def traced(tmp_path, design):
    path = tmp_path / "trace.jsonl"
    with Tracer(path, run_id="night-e2e") as tr:
        report = orchestrate_night(design, tracer=tr)
    return report, summarize(path)


def test_every_instance_appears_exactly_once(traced):
    report, s = traced
    inst = s.instances()
    assert len(inst) == len(report.schedule.records) > 0
    names = [sp.name for sp in inst]
    assert len(set(names)) == len(names)  # exactly once each
    assert set(names) == {f"instance:{r.job.job_id}"
                          for r in report.schedule.records}


def test_instances_nest_under_the_run_simulations_task(traced):
    _, s = traced
    by_id = {sp.span_id: sp for sp in s.spans}
    run_sim = next(sp for sp in s.spans
                   if sp.name == "task:run-simulations")
    for sp in s.instances():
        assert sp.modelled
        assert by_id[sp.parent_id] is run_sim


def test_span_tree_shape(traced):
    _, s = traced
    roots = [sp for sp in s.spans if sp.parent_id is None]
    assert len(roots) == 1 and roots[0].name.startswith("night:tiny")
    tasks = {sp.name.removeprefix("task:") for sp in s.spans
             if sp.name.startswith("task:")}
    assert tasks == TASK_NAMES
    assert s.unfinished == []  # a clean night leaves nothing open


def test_instance_spans_match_schedule_timing(traced):
    report, s = traced
    by_name = {sp.name: sp for sp in s.instances()}
    for rec in report.schedule.records:
        sp = by_name[f"instance:{rec.job.job_id}"]
        assert sp.start_s == pytest.approx(rec.start)
        assert sp.wall_s == pytest.approx(rec.finish - rec.start)
        assert sp.attrs["region"] == rec.job.region_code


def test_night_metrics_flow_into_the_trace(traced):
    report, s = traced
    m = s.metrics
    assert m.value("night.instances") == len(report.schedule.records)
    assert m.value("slurm.jobs") == len(report.schedule.records)
    assert m.value("globus.transfers") == 2  # configs out, summaries back
    assert m.value("slurm.makespan_s") == pytest.approx(
        report.schedule.makespan)
    # Report-side registry is the same data.
    assert report.metrics.value("night.instances") == \
        m.value("night.instances")


def test_second_pass_does_not_double_count(design):
    # The orchestrator runs its closures twice (timeline refinement); the
    # registry must reflect one night, not two.
    report = orchestrate_night(design)
    assert report.metrics.value("slurm.jobs") == \
        len(report.schedule.records)
    assert report.metrics.value("globus.transfers") == \
        len(report.link.records) == 2


def test_caller_registry_is_used(design):
    reg = MetricsRegistry()
    report = orchestrate_night(design, registry=reg)
    assert report.metrics is reg
    assert reg.value("night.instances") == len(report.schedule.records)


def test_render_and_export_cover_the_night(traced):
    import json

    _, s = traced
    text = s.render()
    assert "workflow tasks (modelled timeline)" in text
    assert "run-simulations" in text
    assert "slurm:" in text and "transfers:" in text
    doc = json.dumps(s.to_json())
    assert "night.instances" in doc


def test_untraced_night_unchanged(design):
    plain = orchestrate_night(design)
    with Tracer() as tr:
        traced_rep = orchestrate_night(design, tracer=tr)
    assert plain.schedule.makespan == traced_rep.schedule.makespan
    assert plain.utilization == traced_rep.utilization
    assert [r.job.job_id for r in plain.schedule.records] == \
        [r.job.job_id for r in traced_rep.schedule.records]
