"""Crash tolerance: torn final lines and unfinished spans still summarize."""

import pytest

from repro.obs import MetricsRegistry, Tracer, read_trace, summarize

pytestmark = pytest.mark.fast


def test_unfinished_spans_surface_not_dropped(tmp_path):
    path = tmp_path / "trace.jsonl"
    # A night that died mid-flight: open spans, then no clean shutdown.
    # (The span context managers stay referenced so their finally blocks
    # — the process's crash would never run them — don't fire via GC.)
    tr = Tracer(path, run_id="crash")
    outer = tr.span("night:crashed")
    outer.__enter__()
    with tr.span("task:generate-configurations"):
        pass
    inner = tr.span("task:run-simulations")
    inner.__enter__()
    tr.modelled_span("instance:j0", start=0.0, wall_s=600.0)
    reg = MetricsRegistry()
    reg.inc("slurm.jobs", 1)
    tr.metrics(reg)
    tr.close()  # the crash point: two spans never ended

    s = summarize(path)
    # The finished task and the modelled instance survive...
    names = {sp.name for sp in s.spans}
    assert "task:generate-configurations" in names
    assert "instance:j0" in names
    # ...and the crashed frames are reported, innermost included.
    open_names = {u["name"] for u in s.unfinished}
    assert open_names == {"night:crashed", "task:run-simulations"}
    assert "partial trace" in s.render()
    assert s.metrics.value("slurm.jobs") == 1
    del outer, inner  # keep the open frames alive until after the read


def test_torn_final_line_is_skipped(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tr:
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
    whole = read_trace(path)
    # The process died mid-append: the last line is half a record.
    text = path.read_text()
    path.write_text(text[:-25])
    torn = read_trace(path)
    assert len(torn) == len(whole) - 1
    s = summarize(path)
    # Span "b" lost its end event, so it reads as unfinished.
    assert {sp.name for sp in s.spans} == {"a"}
    assert [u["name"] for u in s.unfinished] == ["b"]


def test_garbage_suffix_does_not_poison_reader(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tr:
        with tr.span("kept"):
            pass
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"event": "span_start", "span": 99, "na')  # torn
    s = summarize(path)
    assert {sp.name for sp in s.spans} == {"kept"}
    assert s.unfinished == []


def test_missing_trace_reads_empty(tmp_path):
    assert read_trace(tmp_path / "never-written.jsonl") == ()
    s = summarize(tmp_path / "never-written.jsonl")
    assert s.spans == [] and s.n_events == 0
