"""Fault-injected torn trace lines, mirroring the torn-ledger tests.

``tests/obs/test_trace_replay.py`` tears the *final* line by hand (a crash
mid-append); these tests use the ``ledger.torn`` fault site to tear lines
*mid-stream* deterministically, pinning that the trace reader tolerates a
record lost anywhere in the file — a span whose end event was torn reads
as unfinished, everything around it survives.
"""

import pytest

from repro.obs import Tracer, read_trace, summarize
from repro.resilience import FaultPlan

pytestmark = pytest.mark.fast


def _trace_two_tasks(path, faults=None):
    with Tracer(path, run_id="torn", faults=faults) as tr:
        with tr.span("night"):
            with tr.span("task:a"):
                pass
            with tr.span("task:b"):
                pass


def test_torn_mid_stream_end_event_reads_as_unfinished(tmp_path):
    path = tmp_path / "trace.jsonl"
    # Tear the first span_end written (task:a's), nothing else.
    plan = FaultPlan.parse(["ledger.torn:times=1,match=span_end"], seed=0)
    _trace_two_tasks(path, faults=plan)

    clean = tmp_path / "clean.jsonl"
    _trace_two_tasks(clean)
    assert len(read_trace(path)) == len(read_trace(clean)) - 1

    s = summarize(path)
    names = {sp.name for sp in s.spans}
    assert "task:b" in names and "night" in names  # survivors intact
    assert [u["name"] for u in s.unfinished] == ["task:a"]
    assert "partial trace" in s.render()


def test_torn_start_events_still_summarize(tmp_path):
    path = tmp_path / "trace.jsonl"
    # Tear the first two span_starts (night's and task:a's).
    plan = FaultPlan.parse(["ledger.torn:times=2,match=span_start"], seed=0)
    _trace_two_tasks(path, faults=plan)
    clean = tmp_path / "clean.jsonl"
    _trace_two_tasks(clean)
    assert len(read_trace(path)) == len(read_trace(clean)) - 2
    s = summarize(path)
    # Completed spans are reconstructed from their end events, so even
    # with torn starts every finished span still reports its timing.
    assert {sp.name for sp in s.spans} == {"night", "task:a", "task:b"}
    assert s.unfinished == []


def test_untorn_trace_is_bitwise_unchanged_by_inactive_plan(tmp_path):
    """A plan with no ledger.torn rule must not perturb the stream."""
    faulted = tmp_path / "faulted.jsonl"
    clean = tmp_path / "clean.jsonl"
    plan = FaultPlan.parse(["worker.exception:times=1"], seed=7)
    _trace_two_tasks(faulted, faults=plan)
    _trace_two_tasks(clean)
    assert len(read_trace(faulted)) == len(read_trace(clean))
    assert ({sp.name for sp in summarize(faulted).spans}
            == {sp.name for sp in summarize(clean).spans})
