"""Metrics registry: kinds, merge semantics, snapshots, the global sink."""

import pickle

import pytest

from repro.obs.registry import (
    COUNTER,
    GAUGE,
    TIMER,
    MetricsRegistry,
    Stopwatch,
    global_registry,
)

pytestmark = pytest.mark.fast


def test_counter_gauge_timer_basics():
    r = MetricsRegistry()
    assert r.inc("a.hits") == 1
    assert r.inc("a.hits", 4) == 5
    r.gauge("a.util", 0.5)
    r.gauge("a.util", 0.9)
    r.observe("a.wait_s", 1.5)
    r.observe("a.wait_s", 2.5)
    assert r.value("a.hits") == 5
    assert isinstance(r.value("a.hits"), int)
    assert r.value("a.util") == 0.9
    assert r.value("a.wait_s") == pytest.approx(4.0)
    assert r.count("a.wait_s") == 2
    assert r.value("missing", -1) == -1
    assert "a.hits" in r and "missing" not in r


def test_kind_conflict_raises():
    r = MetricsRegistry()
    r.inc("x")
    with pytest.raises(TypeError):
        r.gauge("x", 1.0)
    with pytest.raises(ValueError):
        r.declare("y", "histogram")


def test_timer_context_manager_accumulates():
    r = MetricsRegistry()
    for _ in range(3):
        with r.timer("t.block_s"):
            sum(range(100))
    assert r.count("t.block_s") == 3
    assert r.value("t.block_s") > 0.0


def test_declare_is_zero_and_idempotent():
    r = MetricsRegistry()
    r.declare("e.ticks", COUNTER)
    r.declare("e.phase_s", TIMER)
    assert r.value("e.ticks") == 0
    assert r.count("e.phase_s") == 0
    r.inc("e.ticks")
    r.declare("e.ticks", COUNTER)  # re-declare never resets
    assert r.value("e.ticks") == 1


def test_merge_semantics_counters_add_gauges_overwrite():
    parent = MetricsRegistry()
    parent.inc("n.jobs", 2)
    parent.observe("n.wait_s", 1.0)
    parent.gauge("n.util", 0.4)

    worker = MetricsRegistry()
    worker.inc("n.jobs", 3)
    worker.observe("n.wait_s", 2.0)
    worker.observe("n.wait_s", 3.0)
    worker.gauge("n.util", 0.8)
    worker.inc("n.new", 1)

    parent.merge(worker)
    assert parent.value("n.jobs") == 5
    assert parent.value("n.wait_s") == pytest.approx(6.0)
    assert parent.count("n.wait_s") == 3  # timer counts add too
    assert parent.value("n.util") == 0.8  # gauge: incoming wins
    assert parent.value("n.new") == 1


def test_merge_accepts_dump_across_process_boundary():
    worker = MetricsRegistry()
    worker.inc("w.done", 7)
    worker.observe("w.run_s", 0.25)
    worker.gauge("w.load", 1.5)
    # What actually crosses a pool boundary is the pickled dump.
    dump = pickle.loads(pickle.dumps(worker.dump()))

    parent = MetricsRegistry()
    parent.inc("w.done", 1)
    parent.merge(dump)
    assert parent.value("w.done") == 8
    assert parent.count("w.run_s") == 1
    assert parent.value("w.load") == 1.5
    # Kinds survive the round trip.
    assert parent.dump()["w.done"]["kind"] == COUNTER
    assert parent.dump()["w.run_s"]["kind"] == TIMER
    assert parent.dump()["w.load"]["kind"] == GAUGE


def test_merge_returns_self_and_is_associative_for_counters():
    a = MetricsRegistry()
    a.inc("c", 1)
    b = MetricsRegistry()
    b.inc("c", 2)
    c = MetricsRegistry()
    c.inc("c", 4)
    left = MetricsRegistry().merge(a).merge(b).merge(c)
    right = MetricsRegistry().merge(MetricsRegistry().merge(b).merge(c))
    right.merge(a)
    assert left.value("c") == right.value("c") == 7


def test_snapshot_prefix_strip_and_types():
    r = MetricsRegistry()
    r.inc("engine.transitions", 10)
    r.observe("engine.transmission_s", 0.5)
    r.inc("store.hits")
    snap = r.snapshot(prefix="engine.", strip=True)
    assert set(snap) == {"transitions", "transmission_s"}
    assert isinstance(snap["transitions"], int)
    assert isinstance(snap["transmission_s"], float)
    assert set(r.snapshot()) == {"engine.transitions",
                                 "engine.transmission_s", "store.hits"}


def test_clear_by_namespace():
    r = MetricsRegistry()
    r.inc("a.x")
    r.inc("b.y")
    r.clear("a.")
    assert "a.x" not in r and "b.y" in r
    r.clear()
    assert len(r) == 0


def test_names_sorted_by_prefix():
    r = MetricsRegistry()
    for n in ("z.b", "z.a", "y.c"):
        r.inc(n)
    assert r.names("z.") == ["z.a", "z.b"]


def test_global_registry_is_process_wide():
    g1 = global_registry()
    g2 = global_registry()
    assert g1 is g2


def test_stopwatch_monotonic():
    w = Stopwatch()
    first = w.elapsed()
    second = w.elapsed()
    assert 0.0 <= first <= second
