"""Content-addressed blob store: atomicity, eviction, corruption, stats."""

import os

import numpy as np
import pytest

from repro.store.cas import ContentStore, default_store

pytestmark = pytest.mark.fast

KEY = "ab" * 32
KEY2 = "cd" * 32
KEY3 = "ef" * 32


@pytest.fixture()
def store(tmp_path):
    return ContentStore(tmp_path / "store")


def payload(n=5, offset=0.0):
    return {"confirmed": np.arange(n, dtype=np.float64) + offset,
            "attack_rate": np.asarray(0.25),
            "transitions": np.asarray(1234, dtype=np.int64)}


def test_roundtrip_bit_identical(store):
    store.put(KEY, payload())
    got = store.get(KEY)
    np.testing.assert_array_equal(got["confirmed"], payload()["confirmed"])
    assert got["confirmed"].dtype == np.float64
    assert float(got["attack_rate"]) == 0.25
    assert int(got["transitions"]) == 1234


def test_miss_then_hit_counted(store):
    assert store.get(KEY) is None
    store.put(KEY, payload())
    assert store.get(KEY) is not None
    assert store.stats.misses == 1
    assert store.stats.hits == 1
    assert store.stats.puts == 1
    assert store.stats.hit_rate == 0.5


def test_contains_does_not_count(store):
    assert not store.contains(KEY)
    store.put(KEY, payload())
    assert store.contains(KEY)
    assert store.stats.hits == store.stats.misses == 0


def test_no_temp_files_left_behind(store):
    store.put(KEY, payload())
    leftovers = [p for p in store.root.rglob("*") if ".tmp" in p.name]
    assert leftovers == []


def test_put_existing_key_is_noop(store):
    first = store.put(KEY, payload())
    mtime = first.stat().st_mtime_ns
    second = store.put(KEY, payload(offset=99.0))  # same key wins once
    assert first == second
    assert first.stat().st_mtime_ns == mtime
    np.testing.assert_array_equal(store.get(KEY)["confirmed"],
                                  payload()["confirmed"])
    assert store.stats.puts == 1


def test_invalid_key_rejected(store):
    with pytest.raises(ValueError):
        store.path_of("../../etc/passwd")
    with pytest.raises(ValueError):
        store.path_of("ZZ" * 32)


def test_corrupt_blob_is_a_miss_and_removed(store):
    store.put(KEY, payload())
    path = store.path_of(KEY)
    path.write_bytes(b"definitely not an npz")
    assert store.get(KEY) is None
    assert not path.exists()
    assert store.stats.misses == 1


def test_keys_len_total_bytes(store):
    assert len(store) == 0
    store.put(KEY, payload())
    store.put(KEY2, payload(offset=1.0))
    assert sorted(store.keys()) == sorted([KEY, KEY2])
    assert len(store) == 2
    assert store.total_bytes() > 0


def test_lru_eviction_drops_oldest(store):
    store.put(KEY, payload(n=2000))
    store.put(KEY2, payload(n=2000, offset=1.0))
    store.put(KEY3, payload(n=2000, offset=2.0))
    # Make KEY the most recently used despite being written first.
    past = 1_000_000_000
    os.utime(store.path_of(KEY2), (past, past))
    os.utime(store.path_of(KEY3), (past + 1, past + 1))
    one_blob = store.total_bytes() // 3
    evicted = store.gc(max_bytes=one_blob + 1)
    assert evicted == [KEY2, KEY3]
    assert store.contains(KEY)
    assert store.stats.evictions == 2


def test_get_refreshes_recency(store):
    store.put(KEY, payload(n=2000))
    store.put(KEY2, payload(n=2000, offset=1.0))
    past = 1_000_000_000
    os.utime(store.path_of(KEY), (past, past))
    os.utime(store.path_of(KEY2), (past + 1, past + 1))
    store.get(KEY)  # touch: now newest
    evicted = store.gc(max_bytes=store.total_bytes() // 2 + 1)
    assert evicted == [KEY2]


def test_put_enforces_bound(tmp_path):
    store = ContentStore(tmp_path, max_bytes=1)  # everything evicts
    store.put(KEY, payload())
    assert len(store) == 0
    assert store.stats.evictions == 1


def test_gc_without_bound_rejected(store):
    with pytest.raises(ValueError):
        store.gc()


def test_clear(store):
    store.put(KEY, payload())
    store.put(KEY2, payload())
    assert store.clear() == 2
    assert len(store) == 0
    assert store.get(KEY) is None


def test_summary_mentions_counts(store):
    store.put(KEY, payload())
    store.get(KEY)
    text = store.summary()
    assert "1 blobs" in text
    assert "hits 1" in text


def test_default_store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "12345")
    store = default_store()
    assert store.root == tmp_path / "env-store"
    assert store.max_bytes == 12345


def test_family_counts_by_producer(store):
    store.put(KEY, payload(), family="instance-outcome/v1")
    store.put(KEY2, payload(6), family="surrogate-model/v1")
    store.put(KEY3, payload(7))
    assert store.family_counts() == {
        "(unlabelled)": 1,
        "instance-outcome/v1": 1,
        "surrogate-model/v1": 1,
    }


def test_family_counts_track_live_blobs_only(store):
    store.put(KEY, payload(), family="fam/a")
    store.put(KEY2, payload(6), family="fam/a")
    store.path_of(KEY).unlink()  # evicted/cleared blob drops out
    assert store.family_counts() == {"fam/a": 1}
    store.clear()
    assert store.family_counts() == {}


def test_family_backfills_on_repeat_put(store):
    # First writer had no label; a later labelled put of the same key
    # (content-addressed no-op) still records the family.
    store.put(KEY, payload())
    store.put(KEY, payload(), family="fam/late")
    assert store.family_counts() == {"fam/late": 1}


def test_family_index_tolerates_torn_lines(store):
    store.put(KEY, payload(), family="fam/a")
    with store.family_path.open("a", encoding="utf-8") as fh:
        fh.write('{"key": "truncat')
    assert store.family_counts() == {"fam/a": 1}
