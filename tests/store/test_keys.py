"""Cache-key discipline: canonical, salted, and result-scoped."""

import pytest

from repro.core.parallel import InstanceSpec
from repro.store.keys import (
    SPEED_ONLY_PARAMS,
    canonical_params,
    canonical_value,
    code_version_salt,
    instance_key,
)

pytestmark = pytest.mark.fast


def spec(**overrides):
    base = dict(region_code="VA", params={"TAU": 0.2, "SYMP": 0.6},
                n_days=60, scale=1e-3, seed=7, label="a", asset_seed=3)
    base.update(overrides)
    return InstanceSpec(**base)


def test_key_is_hex64_and_stable():
    k1, k2 = instance_key(spec()), instance_key(spec())
    assert k1 == k2
    assert len(k1) == 64
    assert set(k1) <= set("0123456789abcdef")


def test_param_order_is_canonical():
    a = spec(params={"TAU": 0.2, "SYMP": 0.6})
    b = spec(params={"SYMP": 0.6, "TAU": 0.2})
    assert instance_key(a) == instance_key(b)


def test_label_does_not_affect_key():
    assert instance_key(spec(label="x")) == instance_key(spec(label="y"))


def test_speed_only_params_excluded():
    """Transmission backends are bit-identical, so they share a key."""
    dense = spec(params={"TAU": 0.2, "backend": "dense"})
    frontier = spec(params={"TAU": 0.2, "BACKEND": "frontier"})
    bare = spec(params={"TAU": 0.2})
    assert instance_key(dense) == instance_key(bare)
    assert instance_key(frontier) == instance_key(bare)
    assert {"backend", "BACKEND"} <= SPEED_ONLY_PARAMS


@pytest.mark.parametrize("field,value", [
    ("region_code", "VT"),
    ("n_days", 61),
    ("scale", 2e-3),
    ("seed", 8),
    ("asset_seed", 4),
    ("params", {"TAU": 0.2, "SYMP": 0.60001}),
    ("params", {"TAU": 0.2}),
])
def test_result_affecting_fields_change_key(field, value):
    assert instance_key(spec(**{field: value})) != instance_key(spec())


def test_salt_changes_key():
    assert instance_key(spec(), salt="a") != instance_key(spec(), salt="b")
    assert instance_key(spec(), salt="a") == instance_key(spec(), salt="a")


def test_namespace_changes_key():
    assert (instance_key(spec(), namespace="x/v1")
            != instance_key(spec(), namespace="y/v1"))


def test_env_salt_override(monkeypatch):
    base = instance_key(spec())
    monkeypatch.setenv("REPRO_STORE_SALT", "forced-invalidation")
    assert code_version_salt() == "forced-invalidation"
    assert instance_key(spec()) != base
    monkeypatch.delenv("REPRO_STORE_SALT")
    assert instance_key(spec()) == base


def test_code_version_salt_is_source_hash():
    salt = code_version_salt()
    assert len(salt) == 64
    assert salt == code_version_salt()


def test_canonical_value_types_distinct():
    assert len({canonical_value(v)
                for v in (1, 1.0, True, "1", None)}) == 5
    # floats round-trip exactly through repr
    assert canonical_value(0.1 + 0.2) == f"f:{(0.1 + 0.2)!r}"


def test_canonical_value_rejects_unhashable_structures():
    with pytest.raises(TypeError):
        canonical_value([1, 2])


def test_canonical_params_drops_speed_only():
    pairs = canonical_params({"backend": "dense", "TAU": 0.5, "A": 1})
    assert [name for name, _ in pairs] == ["A", "TAU"]


def test_numpy_scalars_normalise_to_python_types():
    """np.float64 subclasses float but reprs differently; keys must not
    depend on which numeric type the caller happened to hold."""
    import numpy as np

    assert canonical_value(np.float64(0.12)) == canonical_value(0.12)
    assert canonical_value(np.float64(0.12)) == "f:0.12"
