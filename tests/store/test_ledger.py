"""Run-ledger journaling and replay."""

import json

import pytest

from repro.store.ledger import RunLedger, replay_ledger

pytestmark = pytest.mark.fast


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "run.jsonl"


def test_append_and_replay(path):
    with RunLedger(path, run_id="night-1") as ledger:
        ledger.run_started(n_instances=2)
        ledger.instance_completed("k1", label="a", wall_s=1.5)
        ledger.instance_completed("k2", label="b", wall_s=2.5)
        ledger.run_completed(hits=0, misses=2)
    replay = replay_ledger(path)
    assert replay.count("instance_completed") == 2
    assert replay.completed() == {"k1", "k2"}
    assert replay.wall_seconds() == 4.0
    assert all(e["run_id"] == "night-1" for e in replay.events)


def test_events_are_one_json_line_each(path):
    ledger = RunLedger(path)
    ledger.instance_completed("k", label="x")
    ledger.cache_hit("k", label="x")
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert records[0]["event"] == "instance_completed"
    assert records[1]["event"] == "cache_hit"
    assert all("ts" in r for r in records)


def test_completed_with_field_filters(path):
    ledger = RunLedger(path)
    ledger.instance_completed("k1", task_id="VA-c0", night="n1")
    ledger.instance_completed("k2", task_id="VA-c1", night="n2")
    replay = replay_ledger(path)
    assert replay.completed("task_id") == {"VA-c0", "VA-c1"}
    assert replay.completed("task_id", night="n1") == {"VA-c0"}
    assert replay.completed("task_id", night="n3") == set()


def test_missing_file_replays_empty(tmp_path):
    replay = replay_ledger(tmp_path / "never-written.jsonl")
    assert replay.events == ()
    assert replay.completed() == set()


def test_torn_final_line_is_skipped(path):
    ledger = RunLedger(path)
    ledger.instance_completed("k1")
    ledger.close()
    with open(path, "a") as fh:
        fh.write('{"event": "instance_completed", "key": "k2"')  # torn
    replay = replay_ledger(path)
    assert replay.completed() == {"k1"}


def test_non_event_lines_are_skipped(path):
    path.write_text('42\n{"no_event": true}\n\n'
                    '{"event": "cache_hit", "key": "k"}\n')
    replay = replay_ledger(path)
    assert replay.count("cache_hit") == 1
    assert len(replay.events) == 1


def test_appends_accumulate_across_handles(path):
    RunLedger(path).instance_completed("k1")
    RunLedger(path).instance_completed("k2")
    assert replay_ledger(path).completed() == {"k1", "k2"}


def test_instance_failed_recorded(path):
    RunLedger(path).instance_failed("k1", error="boom")
    replay = replay_ledger(path)
    assert replay.count("instance_failed") == 1
    assert replay.events[0]["error"] == "boom"
    assert replay.completed() == set()


def test_summary_and_counts(path):
    ledger = RunLedger(path)
    ledger.cache_hit("a")
    ledger.cache_hit("b")
    ledger.instance_completed("c")
    replay = replay_ledger(path)
    assert replay.counts() == {"cache_hit": 2, "instance_completed": 1}
    assert "cache_hit=2" in replay.summary()
