"""LeaseTable: the cross-process in-flight execution registry."""

import json
import os
import threading

import pytest

from repro.obs.registry import MetricsRegistry
from repro.store import (
    LEASE_DONE,
    LEASE_TIMEOUT,
    LEASE_VACATED,
    ContentStore,
    LeaseTable,
)

KEY = "ab" * 32


@pytest.fixture()
def table(tmp_path):
    return LeaseTable(tmp_path / "leases", owner="me",
                      metrics=MetricsRegistry())


class TestAcquireRelease:
    def test_acquire_wins_when_free(self, table):
        assert table.acquire(KEY)
        assert table.held(KEY)
        assert table.holder(KEY)["owner"] == "me"

    def test_second_acquire_loses(self, tmp_path, table):
        other = LeaseTable(tmp_path / "leases", owner="other")
        assert table.acquire(KEY)
        assert not other.acquire(KEY)
        assert other.metrics is not table.metrics

    def test_release_frees_the_key(self, tmp_path, table):
        table.acquire(KEY)
        assert table.release(KEY)
        assert not table.held(KEY)
        other = LeaseTable(tmp_path / "leases", owner="other")
        assert other.acquire(KEY)

    def test_release_never_drops_anothers_lease(self, tmp_path, table):
        """Lock hygiene: release is a no-op on a lease we don't own."""
        other = LeaseTable(tmp_path / "leases", owner="other")
        assert other.acquire(KEY)
        assert not table.release(KEY)
        assert other.holder(KEY)["owner"] == "other"

    def test_release_without_lease_is_noop(self, table):
        assert not table.release(KEY)

    def test_distinct_keys_are_independent(self, table):
        assert table.acquire(KEY)
        assert table.acquire("cd" * 32)

    def test_counters(self, tmp_path, table):
        other = LeaseTable(tmp_path / "leases", owner="other")
        table.acquire(KEY)
        other.acquire(KEY)
        assert table.metrics.value("lease.acquired") == 1
        assert other.metrics.value("lease.busy") == 1


class TestStaleness:
    def test_dead_owner_pid_is_broken(self, tmp_path, table):
        """A lease whose owner process died is stale and re-acquirable."""
        path = table.path_of(KEY)
        path.write_text(json.dumps(
            {"owner": "ghost", "pid": 2 ** 22 + 1, "ts": 10.0 ** 10}))
        assert not table.held(KEY)
        assert table.acquire(KEY)
        assert table.metrics.value("lease.broken") == 1

    def test_expired_ttl_is_broken(self, tmp_path):
        table = LeaseTable(tmp_path / "leases", owner="me", ttl_s=0.0)
        path = table.path_of(KEY)
        path.write_text(json.dumps(
            {"owner": "slow", "pid": os.getpid(), "ts": 0.0}))
        assert table.acquire(KEY)

    def test_torn_record_is_broken(self, table):
        """A crash mid-write leaves half a JSON line: breakable, exactly
        like a torn ledger line."""
        table.path_of(KEY).write_text('{"owner": "half')
        assert table.holder(KEY) == {}
        assert table.acquire(KEY)

    def test_live_same_pid_lease_is_not_stale(self, tmp_path, table):
        other = LeaseTable(tmp_path / "leases", owner="other")
        other.acquire(KEY)
        assert table.held(KEY)
        assert not table.acquire(KEY)


class TestHeartbeat:
    def test_renew_restamps_preserving_identity(self, tmp_path, table):
        table.acquire(KEY)
        before = table.holder(KEY)
        assert table.renew(KEY)
        after = table.holder(KEY)
        assert after["owner"] == before["owner"]
        assert after["pid"] == before["pid"]
        assert after["ts"] >= before["ts"]
        assert table.metrics.value("lease.renewed") == 1

    def test_renewed_slow_holder_is_not_stolen(self, tmp_path):
        """satellite: a slow-but-alive worker heartbeats on checkpoint
        writes — after renewal a lease whose original stamp has lapsed
        the TTL must NOT be re-acquirable by a contender."""
        table = LeaseTable(tmp_path / "leases", owner="slow", ttl_s=30.0)
        assert table.acquire(KEY)
        path = table.path_of(KEY)
        record = json.loads(path.read_text(encoding="utf-8"))
        record["ts"] -= 3600.0
        path.write_text(json.dumps(record), encoding="utf-8")
        assert table.renew(KEY)
        other = LeaseTable(tmp_path / "leases", owner="thief", ttl_s=30.0)
        assert not other.acquire(KEY)
        assert table.holder(KEY)["owner"] == "slow"

    def test_dead_pid_is_stolen_despite_fresh_stamp(self, tmp_path, table):
        """Heartbeats don't shield a corpse: a fresh ts with a dead owner
        pid is still stale (the liveness probe outranks the clock)."""
        table.path_of(KEY).write_text(json.dumps(
            {"owner": "ghost", "pid": 2 ** 22 + 1, "ts": 10.0 ** 10}))
        assert table.acquire(KEY)
        assert table.holder(KEY)["owner"] == "me"

    def test_renew_on_free_key_is_noop(self, table):
        assert not table.renew(KEY)
        assert not table.path_of(KEY).exists()

    def test_renew_on_torn_record_is_noop(self, table):
        table.path_of(KEY).write_text('{"owner": "half')
        assert not table.renew(KEY)


class TestWait:
    def test_done_when_predicate_turns_true(self, tmp_path, table):
        other = LeaseTable(tmp_path / "leases", owner="other")
        other.acquire(KEY)
        flags = {"done": False}

        def publish():
            flags["done"] = True

        timer = threading.Timer(0.05, publish)
        timer.start()
        try:
            assert table.wait(KEY, lambda: flags["done"],
                              timeout_s=5.0) == LEASE_DONE
        finally:
            timer.cancel()

    def test_vacated_when_holder_releases_without_result(self, tmp_path,
                                                         table):
        other = LeaseTable(tmp_path / "leases", owner="other")
        other.acquire(KEY)
        timer = threading.Timer(0.05, other.release, args=(KEY,))
        timer.start()
        try:
            assert table.wait(KEY, lambda: False,
                              timeout_s=5.0) == LEASE_VACATED
        finally:
            timer.cancel()

    def test_vacated_immediately_when_free(self, table):
        assert table.wait(KEY, lambda: False) == LEASE_VACATED

    def test_timeout(self, tmp_path, table):
        other = LeaseTable(tmp_path / "leases", owner="other")
        other.acquire(KEY)
        assert table.wait(KEY, lambda: False,
                          timeout_s=0.05) == LEASE_TIMEOUT

    def test_stale_holder_vacates_the_wait(self, table):
        table.path_of(KEY).write_text(json.dumps(
            {"owner": "ghost", "pid": 2 ** 22 + 1, "ts": 10.0 ** 10}))
        assert table.wait(KEY, lambda: False,
                          timeout_s=5.0) == LEASE_VACATED


class TestThreadRace:
    def test_exactly_one_winner_per_key(self, tmp_path):
        """N contenders, one winner — the O_CREAT|O_EXCL guarantee."""
        tables = [LeaseTable(tmp_path / "leases", owner=f"t{i}")
                  for i in range(8)]
        wins = []
        barrier = threading.Barrier(len(tables))

        def contend(t):
            barrier.wait()
            if t.acquire(KEY):
                wins.append(t.owner)

        threads = [threading.Thread(target=contend, args=(t,))
                   for t in tables]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1


class TestLeaseDirConvention:
    def test_shard_lease_dir_sits_inside_the_store(self, tmp_path):
        from repro.service.shard import lease_dir

        store = ContentStore(tmp_path / "store")
        table = LeaseTable(lease_dir(store.root), owner="shard0")
        assert table.acquire(KEY)
        assert (tmp_path / "store" / "leases" / f"{KEY}.lease").exists()
