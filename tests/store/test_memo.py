"""Cache-aware instance execution: hits, misses, order, bit-identity."""

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec, run_instances
from repro.store.cas import ContentStore
from repro.store.keys import instance_key
from repro.store.ledger import RunLedger, replay_ledger
from repro.store.memo import (
    outcome_from_payload,
    outcome_payload,
    run_instances_memoized,
)


def make_specs(n=3, region="VT", n_days=20):
    return [
        InstanceSpec(region_code=region, params={"TAU": 0.25},
                     n_days=n_days, scale=1e-3, seed=500 + i,
                     label=f"m{i}")
        for i in range(n)
    ]


@pytest.fixture()
def store(tmp_path):
    return ContentStore(tmp_path / "store")


def test_cold_run_matches_plain_execution(store):
    specs = make_specs()
    plain = run_instances(specs, parallel=False)
    memo = run_instances_memoized(specs, store=store, parallel=False)
    for p, m in zip(plain, memo):
        assert p.spec == m.spec
        np.testing.assert_array_equal(p.confirmed, m.confirmed)
        assert p.attack_rate == m.attack_rate
        assert p.transitions == m.transitions
    assert store.stats.misses == len(specs)
    assert store.stats.puts == len(specs)


def test_warm_run_executes_nothing_and_is_bit_identical(store):
    specs = make_specs()
    cold = run_instances_memoized(specs, store=store, parallel=False)
    assert store.stats.misses == len(specs)
    warm = run_instances_memoized(specs, store=store, parallel=False)
    assert store.stats.misses == len(specs)  # unchanged: zero executions
    assert store.stats.hits == len(specs)
    for c, w in zip(cold, warm):
        np.testing.assert_array_equal(c.confirmed, w.confirmed)
        assert c.confirmed.dtype == w.confirmed.dtype == np.float64
        assert c.attack_rate == w.attack_rate
        assert c.transitions == w.transitions
        assert c.spec == w.spec


def test_partial_overlap_runs_only_misses(store):
    run_instances_memoized(make_specs(2), store=store, parallel=False)
    specs = make_specs(4)  # first two cached, last two new
    out = run_instances_memoized(specs, store=store, parallel=False)
    assert [o.spec.label for o in out] == [s.label for s in specs]
    assert store.stats.hits == 2
    assert store.stats.misses == 2 + 2  # cold probe of 2 + new probe of 2


def test_duplicate_specs_execute_once(store):
    spec = make_specs(1)[0]
    twin = InstanceSpec(region_code=spec.region_code, params=spec.params,
                        n_days=spec.n_days, scale=spec.scale,
                        seed=spec.seed, label="twin",
                        asset_seed=spec.asset_seed)
    out = run_instances_memoized([spec, twin], store=store, parallel=False)
    assert store.stats.puts == 1  # one execution for both positions
    np.testing.assert_array_equal(out[0].confirmed, out[1].confirmed)
    assert out[0].spec.label == spec.label
    assert out[1].spec.label == "twin"


def test_no_store_falls_back_to_plain(tmp_path):
    specs = make_specs(2)
    plain = run_instances(specs, parallel=False)
    memo = run_instances_memoized(specs, store=None, parallel=False)
    for p, m in zip(plain, memo):
        np.testing.assert_array_equal(p.confirmed, m.confirmed)


def test_empty_specs(store):
    assert run_instances_memoized([], store=store) == []


def test_ledger_records_hits_and_executions(store, tmp_path):
    ledger = RunLedger(tmp_path / "run.jsonl")
    specs = make_specs(2)
    run_instances_memoized(specs, store=store, ledger=ledger,
                           parallel=False)
    run_instances_memoized(specs, store=store, ledger=ledger,
                           parallel=False)
    replay = replay_ledger(tmp_path / "run.jsonl")
    assert replay.count("instance_completed") == 2
    assert replay.count("cache_hit") == 2
    assert replay.count("run_started") == 2
    assert replay.count("run_completed") == 2
    keys = {instance_key(s) for s in specs}
    assert replay.completed() == keys


def test_payload_roundtrip_preserves_outcome():
    spec = make_specs(1)[0]
    outcome = run_instances([spec], parallel=False)[0]
    rebuilt = outcome_from_payload(spec, outcome_payload(outcome))
    np.testing.assert_array_equal(outcome.confirmed, rebuilt.confirmed)
    assert rebuilt.attack_rate == outcome.attack_rate
    assert rebuilt.transitions == outcome.transitions
    assert rebuilt.spec is spec


def test_salt_partitions_the_store(store):
    specs = make_specs(1)
    run_instances_memoized(specs, store=store, salt="v1", parallel=False)
    run_instances_memoized(specs, store=store, salt="v2", parallel=False)
    assert store.stats.puts == 2  # different salt, different blob
    run_instances_memoized(specs, store=store, salt="v1", parallel=False)
    assert store.stats.puts == 2
    assert store.stats.hits == 1
