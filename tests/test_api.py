"""Public-API surface tests: everything documented imports cleanly."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.analytics",
    "repro.calibration",
    "repro.cluster",
    "repro.core",
    "repro.economics",
    "repro.epihiper",
    "repro.metapop",
    "repro.obs",
    "repro.resilience",
    "repro.scheduling",
    "repro.service",
    "repro.store",
    "repro.surveillance",
    "repro.synthpop",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    mod = importlib.import_module(name)
    assert mod is not None


@pytest.mark.parametrize("name", [n for n in SUBPACKAGES if n != "repro"])
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__")
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.{symbol} missing"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_quickstart_surface():
    """The README quickstart's imports work as documented."""
    from repro.synthpop import build_region_network
    from repro.epihiper import Simulation, build_covid_model, uniform_seeds
    from repro.analytics import summarize, target_series, CONFIRMED

    pop, net = build_region_network("VT", scale=1e-3, seed=0)
    model = build_covid_model()
    sim = Simulation(model, pop, net, seed=0)
    sim.seed_infections(uniform_seeds(pop, 5, sim.rng))
    result = sim.run(10)
    series = target_series(summarize(result, model), model, CONFIRMED)
    assert series.shape == (11,)
