"""Shared plane vs private copies: incremental per-worker memory.

Eight spawn-context workers load the same region bundle (VA at 1e-2 —
85k persons, 300k edges, a ~12 MB packed bundle) and report how much
*proportional* resident memory (PSS, from ``/proc/self/smaps_rollup``)
the load added.  PSS divides shared pages among their mappers, so it is
the honest per-process cost: with private copies every worker is charged
the full bundle; attached to the plane the bundle's pages are charged
once across the whole fleet.

The companion numbers are warm-up latency: a copy-mode worker pays the
full synthesis (population + network + surveillance) while a plane-mode
worker pays one attach (manifest read + mmap + view construction).

All workers hold their mapping simultaneously behind a barrier while
PSS is sampled, mirroring a warm pool at steady state.
"""

import multiprocessing as mp
import os
import time

REGION, SCALE, SEED = "VA", 1e-2, 0
N_WORKERS = 8
BARRIER_TIMEOUT_S = 300.0


def _pss_kb() -> int:
    with open("/proc/self/smaps_rollup", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("Pss:"):
                return int(line.split()[1])
    raise RuntimeError("no Pss line in smaps_rollup")


def _worker(plane_dir, barrier, out, idx):
    if plane_dir is not None:
        os.environ["REPRO_PLANE"] = "1"
        os.environ["REPRO_PLANE_DIR"] = plane_dir
    else:
        os.environ.pop("REPRO_PLANE", None)
    import gc

    from repro.core.runner import load_region_assets

    barrier.wait(BARRIER_TIMEOUT_S)  # imports paid before the baseline
    base = _pss_kb()
    t0 = time.perf_counter()
    assets = load_region_assets(REGION, SCALE, SEED)
    warm_s = time.perf_counter() - t0
    assert assets.pop.size > 0
    gc.collect()
    barrier.wait(BARRIER_TIMEOUT_S)  # every sharer mapped before sampling
    out.put((idx, _pss_kb() - base, warm_s))
    barrier.wait(BARRIER_TIMEOUT_S)  # hold the mapping until all sampled


def _run_fleet(plane_dir):
    """Per-worker (delta_kb, warm_s) for an N_WORKERS fleet."""
    ctx = mp.get_context("spawn")
    barrier = ctx.Barrier(N_WORKERS + 1)
    out = ctx.Queue()
    procs = [ctx.Process(target=_worker, args=(plane_dir, barrier, out, i),
                         daemon=True)
             for i in range(N_WORKERS)]
    for p in procs:
        p.start()
    try:
        barrier.wait(BARRIER_TIMEOUT_S)
        barrier.wait(BARRIER_TIMEOUT_S)
        rows = sorted(out.get(timeout=BARRIER_TIMEOUT_S)
                      for _ in range(N_WORKERS))
        barrier.wait(BARRIER_TIMEOUT_S)
    finally:
        for p in procs:
            p.join(timeout=30)
    return [r[1] for r in rows], [r[2] for r in rows]


def _experiment(plane_dir):
    copy_deltas, copy_warm = _run_fleet(None)

    # Plane mode: the parent pre-builds once (the warm-pool supervisor's
    # role), then the fleet attaches.
    os.environ["REPRO_PLANE"] = "1"
    os.environ["REPRO_PLANE_DIR"] = plane_dir
    try:
        from repro.core.runner import load_region_assets
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        t0 = time.perf_counter()
        load_region_assets(REGION, SCALE, SEED, metrics=reg)
        build_s = time.perf_counter() - t0
        assert int(reg.value("plane.built")) == 1
        plane_deltas, plane_warm = _run_fleet(plane_dir)
    finally:
        os.environ.pop("REPRO_PLANE", None)
        os.environ.pop("REPRO_PLANE_DIR", None)
    return {
        "copy_deltas": copy_deltas, "copy_warm": copy_warm,
        "plane_deltas": plane_deltas, "plane_warm": plane_warm,
        "build_s": build_s,
        "bundle_bytes": int(reg.value("plane.bytes")),
    }


def test_shared_plane_worker_memory(benchmark, save_artifact, tmp_path):
    res = benchmark.pedantic(_experiment, args=(str(tmp_path / "plane"),),
                             rounds=1, iterations=1)
    # Drop the runtime's own attachment so the segment is reclaimed and
    # later benchmarks see a clean /dev/shm.
    from repro.plane import plane_gc, runtime
    runtime(tmp_path / "plane").shutdown()
    plane_gc(tmp_path / "plane")

    copy_kb = sum(res["copy_deltas"]) / N_WORKERS
    plane_kb = sum(res["plane_deltas"]) / N_WORKERS
    ratio = copy_kb / max(1.0, plane_kb)
    copy_warm = sum(res["copy_warm"]) / N_WORKERS
    plane_warm = sum(res["plane_warm"]) / N_WORKERS

    lines = [
        f"{REGION} @ {SCALE:g} (seed {SEED}): "
        f"bundle {res['bundle_bytes']:,} B, fleet of {N_WORKERS} "
        f"spawn workers, PSS from /proc/self/smaps_rollup",
        "",
        f"{'mode':<8}{'per-worker KiB':>16}{'warm-up s':>12}",
        f"{'copy':<8}{copy_kb:>16,.0f}{copy_warm:>12.2f}",
        f"{'plane':<8}{plane_kb:>16,.0f}{plane_warm:>12.3f}",
        "",
        f"incremental per-worker memory: {ratio:.1f}x lower on the plane",
        f"one-time plane build in the parent: {res['build_s']:.2f}s",
        "",
        f"copy  deltas KiB: {[f'{d:,}' for d in res['copy_deltas']]}",
        f"plane deltas KiB: {[f'{d:,}' for d in res['plane_deltas']]}",
    ]
    save_artifact("shared_plane", "\n".join(lines))

    # Acceptance: a warm 8-worker pool costs >= 5x less incremental
    # per-worker memory when attached to the plane.
    assert ratio >= 5.0, f"plane saved only {ratio:.1f}x"
    # Attach must also be far cheaper than synthesis.
    assert plane_warm < copy_warm
