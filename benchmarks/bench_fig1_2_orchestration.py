"""Figures 1 and 2: the combined dual-cluster workflow and its timeline.

Figure 1: the calibration-then-projection cycle with its data movements
(one-time 2TB staging, 100MB-8.7GB nightly configurations, 5-110GB raw per
cell staying remote, 30-200MB summaries per cell coming home).

Figure 2: the multi-day schedule — configuration on the home cluster by
day, simulation on the remote cluster by night, analysis next day — with
the manual (human-initiated) steps marked.
"""

import pytest

from repro.core.designs import calibration_design, prediction_design
from repro.core.orchestrator import orchestrate_night, weekly_timeline
from repro.params import GB, MB, TB, fmt_bytes


def combined_cycle():
    cal = orchestrate_night(calibration_design(seed=0), seed=0,
                            include_onetime_transfer=True)
    pred = orchestrate_night(prediction_design(), seed=1)
    return cal, pred


def test_fig1_combined_workflow(benchmark, save_artifact):
    cal, pred = benchmark.pedantic(combined_cycle, rounds=1, iterations=1)
    lines = ["== calibration phase =="]
    lines.append(cal.summary())
    lines.append("")
    lines.append("== projection and intervention analysis ==")
    lines.append(pred.summary())
    save_artifact("fig1_combined_workflow", "\n".join(lines))

    # One-time static staging is the dominant up-transfer (2TB).
    up = cal.link.bytes_moved(src="rivanna", dst="bridges")
    assert up > 2 * TB
    # Nightly phases both fit the 10-hour window.
    assert cal.fits_window and pred.fits_window
    # Raw output stays on the remote cluster; only summaries come home.
    down = cal.link.bytes_moved(src="bridges", dst="rivanna")
    from repro.core.accounting import account_workflow
    raw = account_workflow(cal.design).raw_bytes
    assert down < raw / 100


def test_fig2_timeline(benchmark, save_artifact):
    def week():
        designs = [calibration_design(seed=0), prediction_design(),
                   prediction_design()]
        return [orchestrate_night(d, seed=i)
                for i, d in enumerate(designs)]

    reports = benchmark.pedantic(week, rounds=1, iterations=1)
    text = weekly_timeline(reports)
    save_artifact("fig2_timeline", text)

    # Human-initiated steps exist in each night's task graph (the orange
    # vs white boxes of Figure 2).
    for report in reports:
        manual = [r for r in report.workflow_run.runs
                  if not _task_automated(report, r.task_name)]
        assert manual, "expected manual transfer steps"
    # The cycle repeats: every night ends in home-side analytics.
    for report in reports:
        assert report.workflow_run.runs[-1].task_name == "home-analytics"


def _task_automated(report, name):
    # Reach into the executed graph definition via provenance order.
    manual_names = {"transfer-configurations", "transfer-summaries",
                    "stage-static-data"}
    return name not in manual_names
