"""Ablation: emulator design choices (Appendix E).

Sweeps the basis size p_eta around the paper's 5 and toggles the
discrepancy term, measuring emulator reconstruction fidelity and posterior
quality on the synthetic logistic test problem.  Expected shapes: explained
variance saturates around the paper's p_eta; the discrepancy term absorbs
systematic misfit (without it the observation-precision posterior must
inflate the noise instead).
"""

import numpy as np
import pytest

from repro.calibration.basis import fit_basis
from repro.calibration.gpmsa import GPMSACalibrator, log_counts
from repro.calibration.lhs import ParameterSpace, sample_design

T = 80


def simulator(theta, rng=None, noise=0.0):
    rate, size = theta
    t = np.arange(T, dtype=np.float64)
    curve = 2000.0 * size / (1.0 + np.exp(-rate * (t - 40)))
    if noise and rng is not None:
        curve = curve * rng.lognormal(0.0, noise, T)
    return curve


@pytest.fixture(scope="module")
def training():
    space = ParameterSpace(("rate", "size"), np.array([0.05, 0.5]),
                           np.array([0.30, 2.0]))
    rng = np.random.default_rng(50)
    design = sample_design(space, 40, rng)
    outputs = np.vstack([simulator(th, rng, noise=0.04) for th in design])
    observed = simulator(np.array([0.18, 1.3]), rng, noise=0.04)
    return space, design, outputs, observed


def test_ablation_p_eta_sweep(benchmark, training, save_artifact):
    _space, _design, outputs, _obs = training

    def sweep():
        logged = log_counts(outputs)
        out = {}
        for p in (1, 2, 3, 5, 8):
            basis = fit_basis(logged, p_eta=p)
            out[p] = {
                "explained": float(basis.explained.sum()),
                "recon_rmse": basis.reconstruction_error(logged),
            }
        return out

    result = benchmark(sweep)
    lines = [f"{'p_eta':>6}{'explained':>11}{'recon rmse':>12}"]
    for p, s in result.items():
        lines.append(f"{p:>6}{s['explained']:>11.4f}"
                     f"{s['recon_rmse']:>12.5f}")
    save_artifact("ablation_p_eta", "\n".join(lines))

    # Explained variance is monotone in p and saturates by the paper's 5.
    expl = [result[p]["explained"] for p in sorted(result)]
    assert all(b >= a - 1e-12 for a, b in zip(expl, expl[1:]))
    assert result[5]["explained"] > 0.99
    assert result[5]["explained"] - result[8]["explained"] > -0.01
    # Reconstruction error is monotone decreasing.
    rmse = [result[p]["recon_rmse"] for p in sorted(result)]
    assert all(b <= a + 1e-12 for a, b in zip(rmse, rmse[1:]))


def test_ablation_discrepancy_toggle(benchmark, training, save_artifact):
    space, design, outputs, observed = training

    def toggle():
        out = {}
        for p_delta, label in ((7, "with-discrepancy"),
                               (1, "minimal-discrepancy")):
            cal = GPMSACalibrator(space, design, outputs, observed,
                                  p_delta=p_delta, seed=51)
            post = cal.calibrate(n_samples=400, burn_in=400)
            out[label] = {
                "theta_sd": post.theta_samples.std(axis=0),
                "lambda_obs_med": float(np.median(post.lambda_obs)),
                "accept": post.mcmc.accept_rate,
            }
        return out

    result = benchmark.pedantic(toggle, rounds=1, iterations=1)
    lines = []
    for label, s in result.items():
        lines.append(f"{label}: theta sd {np.round(s['theta_sd'], 4)}, "
                     f"median lambda_obs {s['lambda_obs_med']:.1f}, "
                     f"accept {s['accept']:.2f}")
    save_artifact("ablation_discrepancy", "\n".join(lines))

    # Both variants mix and produce finite posteriors.
    for s in result.values():
        assert 0.02 < s["accept"] < 0.95
        assert (s["theta_sd"] > 0).all()
