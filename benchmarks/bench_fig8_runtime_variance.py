"""Figure 8: runtime variance across cells for each US state.

Regenerates the per-state runtime distribution (box-plot data) for a
representative day: for every region, 12 cells drawn from the cost model at
its category node count.  Checks the paper's reading: runtimes range from
about a hundred seconds (small states) to about 1400 seconds (large states
with complex interventions), and are strongly correlated with network size.
"""

import numpy as np
import pytest

from repro.cluster.costmodel import CostModel, paper_scale_edges
from repro.scheduling.categories import node_category
from repro.synthpop.regions import ALL_CODES


def sample_day(seed=0, cells=12):
    cm = CostModel()
    rng = np.random.default_rng(seed)
    out = {}
    for code in ALL_CODES:
        nodes = node_category(code)
        scenario = rng.choice(["base", "RO", "TA", "PS"])
        times = [cm.sample_runtime(code, nodes, rng,
                                   scenario=str(scenario)).runtime_seconds
                 for _ in range(cells)]
        out[code] = np.asarray(times)
    return out


def test_fig8_runtime_distribution(benchmark, save_artifact):
    day = benchmark(sample_day)
    lines = [f"{'state':<7}{'min':>8}{'median':>8}{'max':>8}"]
    for code in ALL_CODES:
        t = day[code]
        lines.append(f"{code:<7}{t.min():>8.0f}{np.median(t):>8.0f}"
                     f"{t.max():>8.0f}")
    save_artifact("fig8_runtime_variance", "\n".join(lines))

    medians = {c: float(np.median(day[c])) for c in ALL_CODES}
    all_times = np.concatenate(list(day.values()))
    # Paper's y-axis spans roughly 0-1400s.
    assert all_times.min() > 20
    assert 700 < all_times.max() < 3000
    # Within-state spread exists (the box-plot whiskers).
    assert all(day[c].std() > 0 for c in ALL_CODES)
    # Runtime strongly correlated with network size.
    sizes = np.asarray([paper_scale_edges(c) for c in ALL_CODES],
                       dtype=np.float64)
    meds = np.asarray([medians[c] for c in ALL_CODES])
    # Node category partially offsets size, so use rank correlation.
    from scipy.stats import spearmanr
    rho, _p = spearmanr(sizes, meds)
    assert rho > 0.5


def test_fig8_california_range(benchmark):
    day = benchmark(sample_day)
    ca = day["CA"]
    # 100-300 steps of about 3 seconds each (Section VI).
    assert 300 < np.median(ca) < 1500
