"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's tables or figures and, in
addition to timing the computation, writes the reproduced rows/series to
``benchmarks/out/<name>.txt`` so EXPERIMENTS.md can point at the artefacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def save_artifact(out_dir):
    """Write a reproduced table/series to benchmarks/out/<name>.txt."""

    def _save(name: str, text: str) -> Path:
        path = out_dir / f"{name}.txt"
        path.write_text(text.rstrip() + "\n")
        return path

    return _save
