"""Figure 3 / Case study 1: the economic (counter-factual) workflow.

The paper's design: (2 VHI compliances x 3 lockdown durations x 2 lockdown
compliances) x 51 states x 15 replicates = 9,180 simulation instances,
~3TB raw output, ~2.5GB aggregates, feeding the medical-cost model.

The bench (i) validates the paper-scale accounting of that design and
(ii) actually executes the workflow at reproduction scale on two small
regions, regenerating the per-scenario medical-cost table.
"""

import pytest

from repro.core.accounting import account_workflow
from repro.core.counterfactual_wf import run_economic_workflow
from repro.core.designs import (
    ExperimentDesign,
    economic_design,
    factorial_cells,
)
from repro.params import GB, TB


def test_fig3_design_accounting(benchmark, save_artifact):
    acct = benchmark(lambda: account_workflow(economic_design()))
    save_artifact("fig3_design_accounting", acct.table_row())
    assert acct.n_cells == 12
    assert acct.n_simulations == 9180
    assert 2 * TB < acct.raw_bytes < 4.5 * TB
    assert 1.5 * GB < acct.summary_bytes < 3.5 * GB


def run_small_economic():
    cells = factorial_cells({
        "vhi_compliance": [0.5, 0.8],
        "lockdown_days": [30, 60],
        "sh_compliance": [0.6, 0.9],
    })
    design = ExperimentDesign("economic", cells, ("VT", "RI"), 2)
    return run_economic_workflow(
        regions=("VT", "RI"), design=design, n_days=120, scale=1e-3,
        seed=21)


def test_fig3_economic_workflow_executes(benchmark, save_artifact):
    result = benchmark.pedantic(run_small_economic, rounds=1, iterations=1)
    save_artifact("fig3_economic_costs", result.cost_table())

    assert len(result.outcomes) == 8
    costs = [o.total_cost for o in result.outcomes]
    assert all(c >= 0 for c in costs)
    assert max(costs) > 0
    # Counter-factual spread: scenarios differ materially.
    assert max(costs) > 1.2 * min(c for c in costs if c > 0)
    # Cost components all represented somewhere in the design.
    assert any(o.costs.hospital > 0 for o in result.outcomes)
    assert any(o.costs.outpatient > 0 for o in result.outcomes)
