"""Figures 13 and 14: county- and state-level cumulative case curves.

Figure 13: California's county-level cumulative confirmed-case curves —
heterogeneous, spanning orders of magnitude, summing to the state curve.
Figure 14: state-level cumulative curves for all states — noisy, delayed,
staggered take-offs.

Regenerated from the synthetic surveillance substrate (the DESIGN.md
substitution for the NYT/JHU/VDH feeds), including the multi-source merge
the calibration inputs go through.
"""

import numpy as np
import pytest

from repro.surveillance import (
    generate_national_truth,
    generate_region_truth,
    multi_source_truth,
)


def test_fig13_california_counties(benchmark, save_artifact):
    truth = benchmark(
        lambda: generate_region_truth("CA", n_days=210, seed=0))
    finals = truth.cumulative[:, -1]
    order = np.argsort(-finals)
    lines = [f"{'county_fips':>12}{'final cumulative':>18}"]
    for idx in order[:15]:
        lines.append(f"{truth.county[idx]:>12}{finals[idx]:>18,.0f}")
    lines.append(f"... ({truth.n_counties} counties total)")
    lines.append(f"state total: {truth.state_cumulative()[-1]:,.0f}")
    save_artifact("fig13_ca_counties", "\n".join(lines))

    assert truth.n_counties == 58  # California's counties
    # County curves sum to the state curve.
    np.testing.assert_allclose(
        truth.cumulative.sum(axis=0), truth.state_cumulative())
    # Heterogeneity: top county is more than an order of magnitude above
    # the median county (the Figure 13 curve spread).
    positive = finals[finals > 0]
    assert positive.max() > 15 * np.median(positive)
    # Monotone cumulative curves.
    assert (np.diff(truth.cumulative, axis=1) >= 0).all()


def test_fig14_all_states(benchmark, save_artifact):
    national = benchmark.pedantic(
        lambda: generate_national_truth(n_days=210, seed=0),
        rounds=1, iterations=1)
    lines = [f"{'state':<7}{'take-off day':>13}{'final cumulative':>18}"]
    takeoffs = {}
    for code, truth in national.items():
        cum = truth.state_cumulative()
        nz = np.flatnonzero(cum > 100)
        takeoff = int(nz[0]) if nz.size else -1
        takeoffs[code] = takeoff
        lines.append(f"{code:<7}{takeoff:>13}{cum[-1]:>18,.0f}")
    save_artifact("fig14_state_curves", "\n".join(lines))

    finals = {c: t.state_cumulative()[-1] for c, t in national.items()}
    # Bigger states accumulate more cases; CA far exceeds WY.
    assert finals["CA"] > 30 * finals["WY"]
    # Take-offs are staggered across states (not synchronized).
    days = [d for d in takeoffs.values() if d >= 0]
    assert max(days) - min(days) >= 7
    # Every state eventually reports cases.
    assert all(f > 0 for f in finals.values())


def test_fig14_multi_source_merge(benchmark, save_artifact):
    def merged():
        truth = generate_region_truth("VA", n_days=210, seed=0)
        rng = np.random.default_rng(1)
        return truth, multi_source_truth(truth, rng)

    truth, merged_truth = benchmark(merged)
    save_artifact(
        "fig14_merge",
        f"raw final:    {truth.state_cumulative()[-1]:,.0f}\n"
        f"merged final: {merged_truth.state_cumulative()[-1]:,.0f}")
    # Merging the distorted sources recovers the full total.
    np.testing.assert_allclose(
        merged_truth.state_cumulative()[-1],
        truth.state_cumulative()[-1])
