"""Figure 10: memory required over simulation steps.

Left panel: Virginia cells at different intervention compliances — memory
steps up at the scheduled intervention times, more for higher compliance.
Right panel: one line per US state — final memory strongly correlated with
the initial (network-size) memory.

Both the paper-scale cost model and the real simulator's in-memory
accounting are exercised, plus the shared-plane extension: the same
totals split into per-node (shared asset bundle) vs per-worker (private
engine state) bytes, which is what changes when workers attach the
shared-memory population plane instead of holding private copies.
"""

import numpy as np
import pytest

from repro.cluster.costmodel import CostModel
from repro.cluster.costmodel import paper_scale_edges, paper_scale_nodes
from repro.epihiper import Simulation, build_covid_model, uniform_seeds
from repro.epihiper.npi import make_sh, make_vhi
from repro.plane import memory_split, split_from_assets
from repro.synthpop import build_region_network
from repro.synthpop.regions import ALL_CODES


def va_compliance_panel():
    cm = CostModel()
    return {c: cm.memory_series("VA", c, 200)
            for c in (0.2, 0.4, 0.6, 0.8, 1.0)}


def test_fig10_left_va_cells(benchmark, save_artifact):
    panel = benchmark(va_compliance_panel)
    lines = [f"{'compliance':>10}{'initial GB':>12}{'final GB':>12}"]
    for c, series in panel.items():
        lines.append(f"{c:>10.1f}{series[0] / 1e9:>12.1f}"
                     f"{series[-1] / 1e9:>12.1f}")
    save_artifact("fig10_left_va_memory", "\n".join(lines))

    finals = [panel[c][-1] for c in sorted(panel)]
    assert finals == sorted(finals)  # compliance ordering
    base = panel[0.2]
    # Memory is non-decreasing over steps (scheduled changes accumulate).
    for series in panel.values():
        assert (np.diff(series) >= -1e-6).all()
    # Paper left panel: VA totals in the 150-250GB band.
    assert 80e9 < base[0] < 200e9
    assert panel[1.0][-1] < 400e9


def all_state_panel():
    cm = CostModel()
    return {code: cm.memory_series(code, 0.7, 200) for code in ALL_CODES}


def test_fig10_right_all_states(benchmark, save_artifact):
    panel = benchmark(all_state_panel)
    lines = [f"{'state':<7}{'initial GB':>12}{'final GB':>12}"]
    for code in ALL_CODES:
        s = panel[code]
        lines.append(f"{code:<7}{s[0] / 1e9:>12.1f}{s[-1] / 1e9:>12.1f}")
    save_artifact("fig10_right_states_memory", "\n".join(lines))

    initial = np.asarray([panel[c][0] for c in ALL_CODES])
    final = np.asarray([panel[c][-1] for c in ALL_CODES])
    corr = np.corrcoef(initial, final)[0, 1]
    assert corr > 0.99  # "final memory ... strongly correlated with initial"
    # Paper right panel: up to ~800GB for the largest states.
    assert 400e9 < final.max() < 1200e9


def plane_split_panel(n_workers=8):
    return {code: memory_split(paper_scale_nodes(code),
                               paper_scale_edges(code), n_workers)
            for code in ALL_CODES}


def test_fig10_plane_memory_split(benchmark, save_artifact):
    """Per-node vs per-worker bytes: what the shared plane changes."""
    n_workers = 8
    panel = benchmark(plane_split_panel)
    lines = [f"{'state':<7}{'shared GB':>12}{'private GB':>12}"
             f"{'copy x8 GB':>12}{'plane x8 GB':>12}{'saved GB':>12}"]
    for code in ALL_CODES:
        s = panel[code]
        lines.append(
            f"{code:<7}{s.shared_bytes / 1e9:>12.1f}"
            f"{s.private_bytes / 1e9:>12.1f}{s.copy_total / 1e9:>12.1f}"
            f"{s.plane_total / 1e9:>12.1f}{s.savings_bytes / 1e9:>12.1f}")

    # The small-scale split is measured, not modelled: the shared bytes
    # of a real bundle are the packed segment size.
    from repro.core.runner import load_region_assets
    exact = split_from_assets(load_region_assets("VT", 1e-3, 0), n_workers)
    lines.append(f"\nVT @ 1e-3 measured: shared {exact.shared_bytes:,} B, "
                 f"private {exact.private_bytes:,} B/worker, "
                 f"incremental ratio {exact.incremental_ratio:.1f}x")
    save_artifact("fig10_plane_split", "\n".join(lines))

    for s in panel.values():
        # The split decomposes the classic model: copy_total for N
        # workers is exactly N times the historical per-worker bytes.
        assert s.copy_total == n_workers * (s.shared_bytes + s.private_bytes)
        assert s.plane_total < s.copy_total
        # Incremental worker cost drops under the plane (private engine
        # state is a minority of the modelled resident bytes).
        assert s.incremental_ratio > 1.5
    assert exact.plane_total < exact.copy_total
    # Real bundles carry more shareable bytes than the coarse model
    # residual (full-width population columns), so the measured
    # incremental ratio is stronger still.
    assert exact.incremental_ratio > 2.0


def simulator_memory():
    pop, net = build_region_network("VA", scale=1e-3, seed=6)
    model = build_covid_model()
    out = {}
    for compliance in (0.2, 0.9):
        sim = Simulation(
            model, pop, net, seed=4,
            interventions=[make_vhi(compliance),
                           make_sh(compliance, start=20, end=80)])
        sim.seed_infections(uniform_seeds(pop, 30, sim.rng))
        out[compliance] = sim.run(100).memory_series
    return out


def test_fig10_simulator_memory_tracks_compliance(benchmark, save_artifact):
    series = benchmark.pedantic(simulator_memory, rounds=1, iterations=1)
    lines = [f"{'compliance':>10}{'initial MB':>12}{'final MB':>12}"]
    for c, s in series.items():
        lines.append(f"{c:>10.1f}{s[0] / 1e6:>12.2f}{s[-1] / 1e6:>12.2f}")
    save_artifact("fig10_simulator_memory", "\n".join(lines))

    # The real engine's resident-memory estimate also grows with
    # compliance (more suppressed edges and scheduled changes).
    assert series[0.9][-1] > series[0.2][-1]
    assert series[0.9][0] == series[0.2][0]  # same base network
