"""Batched multi-replicate execution: K lanes per vectorized tick.

Times a replicate batch (one region, one horizon, K seeds) through
``run_instances`` twice — once with batching disabled (the historical
spec-at-a-time path) and once through the stacked
:class:`~repro.epihiper.batch.BatchedSimulation` kernel — at an
early-epidemic (low-tau) and a high-prevalence (high-tau) operating point.
Outputs replicates/sec and the batched speedup per K, verifies the two
paths return bit-identical outcomes, and records the batch-level telemetry
(``batch.size`` / ``batch.groups`` gauges, per-phase ``batch.*_s`` timers)
the observability layer surfaces.

The speedup comes from amortising per-tick dispatch across lanes; the
per-lane RNG draws are serialization floor, so throughput rises with K and
flattens once fixed costs are amortised (measured honestly below rather
than extrapolated).
"""

import os
import time

import numpy as np

from repro.core.parallel import InstanceSpec, run_instances
from repro.obs import MetricsRegistry

REGION = "VA"
SCALE = 1e-4  # ~850 persons: big enough to vectorise, small enough to time
N_DAYS = 80
KS = (4, 16, 64)
#: Two operating points: calibration-sweep-like early epidemic (frontier
#: territory) and a hot epidemic at sustained high prevalence (dense
#: territory).
REGIMES = (("low", {"TAU": 0.12}), ("high", {"TAU": 0.60}))


def make_specs(k, params, regime):
    return [
        InstanceSpec(region_code=REGION, params=dict(params),
                     n_days=N_DAYS, scale=SCALE, seed=5000 + 13 * i,
                     label=f"bb-{regime}-r{i}", asset_seed=17)
        for i in range(k)
    ]


def run_once(specs, *, batched):
    """One timed pass through run_instances; returns (outcomes, dt, reg)."""
    old = os.environ.get("REPRO_BATCH_REPLICATES")
    os.environ["REPRO_BATCH_REPLICATES"] = "1" if batched else "0"
    try:
        reg = MetricsRegistry()
        t0 = time.perf_counter()
        outcomes = run_instances(specs, parallel=False, registry=reg)
        dt = time.perf_counter() - t0
        return outcomes, dt, reg
    finally:
        if old is None:
            del os.environ["REPRO_BATCH_REPLICATES"]
        else:
            os.environ["REPRO_BATCH_REPLICATES"] = old


def test_batched_replicate_throughput(benchmark, save_artifact):
    def panel():
        rows = []
        phase_lines = []
        for regime, params in REGIMES:
            for k in KS:
                specs = make_specs(k, params, regime)
                # Warm the in-process asset LRU so neither path pays the
                # one-time region build inside its timed window.
                run_once(specs[:1], batched=False)
                serial, t_serial, _ = run_once(specs, batched=False)
                batched, t_batched, reg = run_once(specs, batched=True)

                for s, b in zip(serial, batched):
                    np.testing.assert_array_equal(s.confirmed, b.confirmed)
                    assert s.attack_rate == b.attack_rate
                    assert s.transitions == b.transitions

                snap = reg.snapshot()
                assert snap["batch.size"] == min(k, 64)
                assert snap["batch.groups"] >= 1
                rows.append((regime, k, t_serial, t_batched,
                             float(np.mean([b.attack_rate
                                            for b in batched]))))
                if k == max(KS):
                    timers = {name: val for name, val in snap.items()
                              if name.startswith("batch.")
                              and name.endswith("_s")}
                    phase_lines.append((regime, k, timers))
        return rows, phase_lines

    rows, phase_lines = benchmark.pedantic(panel, rounds=1, iterations=1)

    lines = [f"{REGION}@{SCALE:g}, {N_DAYS} days, serial vs batched "
             f"(both through run_instances, bit-identical)",
             "",
             f"{'regime':<8}{'K':>4}{'serial (s)':>12}{'batched (s)':>13}"
             f"{'ser rep/s':>11}{'bat rep/s':>11}{'speedup':>9}"
             f"{'attack':>9}"]
    for regime, k, t_s, t_b, ar in rows:
        lines.append(
            f"{regime:<8}{k:>4}{t_s:>12.3f}{t_b:>13.3f}"
            f"{k / t_s:>11.1f}{k / t_b:>11.1f}{t_s / t_b:>8.2f}x"
            f"{ar:>9.3f}")
    lines.append("")
    lines.append("batched per-phase timers (seconds, K = %d):" % max(KS))
    for regime, k, timers in phase_lines:
        parts = ", ".join(f"{name.removeprefix('batch.')}={val:.3f}"
                          for name, val in sorted(timers.items()))
        lines.append(f"  {regime:<6} {parts}")
    save_artifact("batched_replicates", "\n".join(lines))

    # The kernel must actually pay off: every K=16+ batch beats serial,
    # and the widest batch clears 2x in both regimes.
    for regime, k, t_s, t_b, _ar in rows:
        if k >= 16:
            assert t_b < t_s, f"{regime} K={k}: batched no faster"
        if k == max(KS):
            assert t_s / t_b >= 2.0, (
                f"{regime} K={k}: speedup {t_s / t_b:.2f}x < 2x")
