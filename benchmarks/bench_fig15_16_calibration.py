"""Figures 15 and 16 / Case study 3: calibrating the agent-based model.

Figure 15 (prior vs posterior scatter): after calibration, transmissibility
(TAU) and symptomatic fraction (SYMP) are negatively correlated and both
tightened; SH compliance concentrates toward lower values; VHI compliance
is comparatively unchanged.

Figure 16 (calibration visualisation): the ground truth falls inside the
95% uncertainty band of the GP emulator at posterior configurations.

Runs the full calibration workflow (LHS prior -> EpiHiper ensemble -> GP
emulator -> MCMC posterior) for Virginia at reproduction scale.
"""

import numpy as np
import pytest

from repro.core.calibration_wf import run_calibration_workflow


@pytest.fixture(scope="module")
def calibration():
    return run_calibration_workflow(
        "VA", n_cells=40, n_days=80, scale=1e-3, seed=1,
        mcmc_samples=1000, mcmc_burn_in=800)


def test_fig15_prior_vs_posterior(benchmark, calibration, save_artifact):
    cal = benchmark.pedantic(lambda: calibration, rounds=1, iterations=1)
    prior = cal.prior_design
    post = cal.posterior.theta_samples
    tight = cal.posterior.tightening()
    corr = cal.posterior.posterior_correlation()

    lines = [f"{'parameter':<16}{'prior sd':>10}{'post sd':>10}"
             f"{'tightening':>11}"]
    for k, name in enumerate(cal.space.names):
        lines.append(f"{name:<16}{prior[:, k].std():>10.3f}"
                     f"{post[:, k].std():>10.3f}{tight[k]:>11.2f}")
    lines.append(f"corr(TAU, SYMP) = {corr[0, 1]:+.3f}")
    save_artifact("fig15_prior_posterior", "\n".join(lines))

    names = list(cal.space.names)
    i_tau = names.index("TAU")
    i_symp = names.index("SYMP")
    # TAU is tightened by the data (the paper's strongest finding).
    assert tight[i_tau] < 0.7
    # TAU and SYMP are negatively correlated in the posterior: a higher
    # symptomatic fraction needs lower transmissibility to fit the counts.
    assert corr[i_tau, i_symp] < -0.1
    # Posterior stays inside the prior box.
    assert cal.space.contains(post).all()


def test_fig16_emulator_band(benchmark, calibration, save_artifact):
    cal = calibration

    def band_coverage():
        rng = np.random.default_rng(0)
        thetas = cal.posterior.select_configurations(10, rng)
        band = cal.calibrator.emulator_band(thetas, n_draws_per_theta=10)
        lo, hi = np.quantile(band, [0.025, 0.975], axis=0)
        return lo, hi

    lo, hi = benchmark.pedantic(band_coverage, rounds=1, iterations=1)
    inside = ((cal.observed >= lo) & (cal.observed <= hi)).mean()
    lines = [f"days inside emulator 95% band: {inside:.0%}"]
    for d in range(0, cal.observed.shape[0], 10):
        lines.append(f"  day {d:>3}: obs {cal.observed[d]:>8.1f}  "
                     f"band [{lo[d]:>8.1f}, {hi[d]:>8.1f}]")
    save_artifact("fig16_emulator_band", "\n".join(lines))

    # "The result is good if the ground truth falls between the green
    # curves" — require most of the window to be bracketed.
    assert inside > 0.6


def test_fig15_emulator_quality(benchmark, calibration):
    """The GP emulator reproduces held-in training curves closely."""
    cal = calibration

    def loo():
        em = cal.calibrator.emulate(cal.prior_design)
        truth = cal.sim_series
        denom = np.maximum(truth.max(axis=1), 1.0)
        return np.abs(em[:, -1] - truth[:, -1]) / np.maximum(
            truth[:, -1], 10.0)

    rel = benchmark.pedantic(loo, rounds=1, iterations=1)
    assert np.median(rel) < 0.6
