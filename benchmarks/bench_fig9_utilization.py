"""Figure 9: CPU utilization CDFs under the two mapping algorithms.

Paper: 9 all-state workflow nights reach a median utilization of 96.698%
under FFDT-DC (95.534% for 24 Virginia-only nights); the initial NFDT-DC
configuration landed between 44.237% and 55.579%.

We replay simulated nights under both algorithms and regenerate the CDFs.
The qualitative claims checked: FFDT-DC is far above NFDT-DC, FFDT-DC
medians exceed 90% in both the all-state and the single-region settings.
"""

import numpy as np
import pytest

from repro.scheduling.metrics import (
    median_utilization,
    utilization_cdf,
    utilization_experiment,
)


def all_state_nights(n_nights=5):
    return utilization_experiment(n_nights=n_nights, cells_per_region=6,
                                  replicates=8, seed=0)


def va_only_nights(n_nights=8):
    return utilization_experiment(
        n_nights=n_nights, regions=("VA",), cells_per_region=30,
        replicates=10, machine_width=16, db_cap=48, seed=100)


def test_fig9_left_all_state(benchmark, save_artifact):
    samples = benchmark.pedantic(all_state_nights, rounds=1, iterations=1)
    ffdt = [s.utilization for s in samples if s.algorithm == "FFDT-DC"]
    nfdt = [s.utilization for s in samples if s.algorithm == "NFDT-DC"]
    fx, ff = utilization_cdf(ffdt)
    nx, nf = utilization_cdf(nfdt)
    lines = ["FFDT-DC CDF (all-state nights):"]
    lines += [f"  {x:.4f} -> {f:.2f}" for x, f in zip(fx, ff)]
    lines.append("NFDT-DC CDF (all-state nights):")
    lines += [f"  {x:.4f} -> {f:.2f}" for x, f in zip(nx, nf)]
    save_artifact("fig9_left_all_state", "\n".join(lines))

    med_f = median_utilization(samples, "FFDT-DC")
    med_n = median_utilization(samples, "NFDT-DC")
    assert med_f > 0.90         # paper: 96.7%
    assert med_n < med_f - 0.15  # paper: 44-56% vs 96.7%
    assert min(ffdt) > max(nfdt)  # distributions separate cleanly


def test_fig9_right_va_only(benchmark, save_artifact):
    samples = benchmark.pedantic(va_only_nights, rounds=1, iterations=1)
    ffdt = [s.utilization for s in samples if s.algorithm == "FFDT-DC"]
    x, f = utilization_cdf(ffdt)
    lines = ["FFDT-DC CDF (Virginia-only nights):"]
    lines += [f"  {v:.4f} -> {p:.2f}" for v, p in zip(x, f)]
    save_artifact("fig9_right_va_only", "\n".join(lines))

    med = median_utilization(samples, "FFDT-DC")
    assert med > 0.90  # paper: 95.5%


def test_fig9_nights_vary(benchmark):
    samples = benchmark.pedantic(
        lambda: all_state_nights(3), rounds=1, iterations=1)
    ffdt = [s.utilization for s in samples if s.algorithm == "FFDT-DC"]
    assert len(set(round(u, 6) for u in ffdt)) > 1  # a real distribution
