"""The surrogate fast path against a Zipf scenario mix.

Trains an emulator on a TAU sweep, then replays a Zipf-weighted request
mix (plus deliberately out-of-distribution scenarios) through an
in-process :class:`~repro.service.ScenarioService` with the surrogate
gate enabled.  Reports requests/s, the hit/fallback split, and p50/p99
request latency **by source** — the number the issue's acceptance bar
reads: surrogate-served answers must land an order of magnitude under
the exact path.  Also reports the held-out accuracy of the trained
model, honestly, next to the speedup it buys.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec
from repro.service import ScenarioService
from repro.store.cas import ContentStore
from repro.store.ledger import RunLedger
from repro.store.memo import run_instances_memoized
from repro.surrogate import (
    ModelRegistry,
    SurrogateGate,
    build_corpus,
    corpus_ledger_path,
    train_model,
)

N_TRAIN = 10  #: TAU sweep points in the training corpus
N_SCENARIOS = 12  #: distinct in-family scenarios in the request mix
N_OOD = 3  #: distinct out-of-distribution scenarios (other region)
N_REQUESTS = 120  #: total submissions across all threads
N_THREADS = 4
ZIPF_A = 1.5
N_DAYS = 10
RTOL = 0.5  #: generous gate so the tiny corpus can serve the family


def family_scenario(i):
    """In-family request: a TAU inside the trained sweep."""
    return InstanceSpec(
        region_code="VT", params={"TAU": 0.16 + 0.015 * i, "SYMP": 0.65},
        n_days=N_DAYS, scale=1e-3, seed=2000 + i, label=f"sur-bench-{i}",
        asset_seed=0)


def ood_scenario(i):
    """Out-of-distribution request: a region the corpus never saw."""
    return InstanceSpec(
        region_code="NH", params={"TAU": 0.20 + 0.01 * i, "SYMP": 0.65},
        n_days=N_DAYS, scale=1e-3, seed=3000 + i, label=f"sur-ood-{i}",
        asset_seed=0)


def zipf_mix(rng):
    """Scenario indices for the load: Zipf head + an OOD tail."""
    ranks = np.arange(1, N_SCENARIOS + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_A
    weights /= weights.sum()
    mix = list(rng.choice(N_SCENARIOS, size=N_REQUESTS - N_OOD, p=weights))
    mix += [N_SCENARIOS + i for i in range(N_OOD)]  # OOD markers
    rng.shuffle(mix)
    return mix


def build_trained_store(tmp_path):
    """Run the training sweep and publish a model (not timed)."""
    store = ContentStore(tmp_path / "store")
    ledger = RunLedger(corpus_ledger_path(store))
    taus = np.linspace(0.15, 0.35, N_TRAIN)
    specs = [
        InstanceSpec(region_code="VT",
                     params={"TAU": float(t), "SYMP": 0.65},
                     n_days=N_DAYS, scale=1e-3, seed=0,
                     label=f"train-{t:.3f}", asset_seed=0)
        for t in taus
    ]
    run_instances_memoized(specs, store=store, ledger=ledger, parallel=False)
    corpus = build_corpus(store)
    registry = ModelRegistry(store)
    registry.publish(train_model(corpus, seed=0))
    return store, corpus, registry


def heldout_accuracy(corpus):
    """Honest accuracy: hold out every 3rd run, retrain, score."""
    test_idx = np.arange(0, len(corpus), 3)
    train_idx = np.setdiff1d(np.arange(len(corpus)), test_idx)
    model = train_model(corpus.subset(train_idx), seed=0)
    rel, cover = [], []
    for i in test_idx:
        pred = model.predict_features(corpus.features[i])
        truth = corpus.outputs[i]
        peak = max(float(np.max(np.abs(truth))), 1e-9)
        rel.append(float(np.sqrt(np.mean((pred.mean - truth) ** 2))) / peak)
        lo, hi = pred.bands()
        cover.append(float(np.mean((truth >= lo) & (truth <= hi))))
    return float(np.mean(rel)), float(np.mean(cover)), len(test_idx)


def drive(service, mix):
    """Submit the whole mix from N_THREADS threads, wait for every reply."""
    chunks = np.array_split(np.asarray(mix), N_THREADS)
    ids = [[] for _ in range(N_THREADS)]

    def submitter(slot):
        for idx in chunks[slot]:
            idx = int(idx)
            spec = (ood_scenario(idx - N_SCENARIOS) if idx >= N_SCENARIOS
                    else family_scenario(idx))
            adm = service.submit(spec)
            if adm.admitted:
                ids[slot].append(adm.request_id)

    threads = [threading.Thread(target=submitter, args=(s,))
               for s in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return [service.queue.wait(rid, timeout_s=120.0)
            for slot in ids for rid in slot]


@pytest.fixture()
def trained_service(tmp_path):
    store, corpus, registry = build_trained_store(tmp_path)
    gate = SurrogateGate(registry, rtol=RTOL)
    svc = ScenarioService(store=store, surrogate=gate,
                          capacity=N_REQUESTS, batch_size=8,
                          parallel=False).start()
    yield svc, corpus
    svc.stop(drain=True, timeout_s=60.0)


def test_surrogate_service_zipf_mix(benchmark, trained_service,
                                    save_artifact):
    service, corpus = trained_service
    mix = zipf_mix(np.random.default_rng(11))
    watch = {}

    def load():
        t0 = time.perf_counter()
        records = drive(service, mix)
        watch["wall_s"] = time.perf_counter() - t0
        return records

    records = benchmark.pedantic(load, rounds=1, iterations=1)
    assert len(records) == N_REQUESTS
    assert all(rec.state == "done" for rec in records)

    by_source = {"surrogate": [], "exact": []}
    for rec in records:
        source = ("surrogate"
                  if rec.result is not None and "source" in rec.result
                  else "exact")
        by_source[source].append(rec.total_s)
    sur = np.array(by_source["surrogate"])
    exact = np.array(by_source["exact"])
    assert len(sur) > 0 and len(exact) > 0
    # Far-OOD requests must have fallen through to exact execution.
    snap = service.metrics_snapshot()
    assert snap.get("surrogate.fallback", 0) >= N_OOD

    p50_sur, p99_sur = np.percentile(sur, [50, 99])
    p50_exact, p99_exact = np.percentile(exact, [50, 99])
    speedup = p50_exact / max(p50_sur, 1e-9)
    # The acceptance bar: surrogate-served p50 at least 10x under exact.
    assert speedup >= 10.0

    rel_rmse, coverage, n_test = heldout_accuracy(corpus)
    rps = N_REQUESTS / watch["wall_s"]
    lines = [
        "surrogate fast path under Zipf submit load",
        f"  corpus: {len(corpus)} runs (VT TAU sweep, {N_DAYS} days); "
        f"mix {N_REQUESTS} requests = {N_SCENARIOS} in-family (zipf "
        f"a={ZIPF_A}) + {N_OOD} far-OOD, {N_THREADS} threads",
        f"  throughput: {rps:.1f} requests/s ({watch['wall_s']:.2f}s wall)",
        f"  served by surrogate: {len(sur)}/{N_REQUESTS} "
        f"({len(sur) / N_REQUESTS:.0%}); exact: {len(exact)}",
        f"  latency by source: surrogate p50 {p50_sur * 1e3:.2f}ms "
        f"p99 {p99_sur * 1e3:.2f}ms | exact p50 {p50_exact * 1e3:.1f}ms "
        f"p99 {p99_exact * 1e3:.1f}ms",
        f"  speedup: {speedup:.0f}x at p50 (surrogate vs exact)",
        f"  gate: hit {snap.get('surrogate.hit', 0):.0f}, "
        f"fallback {snap.get('surrogate.fallback', 0):.0f}, "
        f"miss {snap.get('surrogate.miss', 0):.0f} (rtol gate {RTOL})",
        f"  held-out accuracy ({n_test} runs): trajectory rel. RMSE "
        f"{rel_rmse:.3f}, ~95% band coverage {coverage:.0%}",
    ]
    save_artifact("surrogate_service", "\n".join(lines))
    print("\n".join(lines))
