"""Transmission-kernel backend comparison across infectious prevalence.

Times one tick of Eq. (1) candidate enumeration + sampling under the
``dense``, ``frontier``, and ``auto`` backends on scaled state networks, at
low / medium / high infectious prevalence.  The frontier kernel's payoff is
the early-epidemic regime calibration sweeps live in: at 0.1% prevalence it
must beat the dense scan by >= 3x on the largest network, while ``auto``
must stay within 10% of the better fixed backend at every prevalence.
All three backends are verified bit-identical on every timed configuration.
"""

import time

import numpy as np
import pytest

from repro.epihiper import build_covid_model
from repro.epihiper.interventions import IncidentEdges
from repro.epihiper.transmission import transmission_step
from repro.synthpop import build_region_network

#: (region, scale): ~8.5k / ~34k / ~85k persons.
NETWORKS = (("VA", 1e-3), ("VA", 4e-3), ("VA", 1e-2))
PREVALENCES = (0.001, 0.05, 0.40)
BACKENDS = ("dense", "frontier", "auto")
REPEATS = 21
RNG_SEED = 9

#: ``auto`` must track the better fixed kernel this closely on every
#: network at every prevalence.  The per-tick resolution costs one popcount
#: in the early-epidemic regime (the ``max_degree`` workload bound) and one
#: O(|V|) dot product near or past the crossover, both far below a tick, so
#: the tolerance mostly absorbs timer noise.
AUTO_TOLERANCE = 1.15


def _best_time(fn, repeats=REPEATS):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _health_at_prevalence(model, n, prevalence):
    inf_code = int(np.flatnonzero(model.is_infectious)[0])
    health = np.zeros(n, dtype=np.int8)
    n_inf = max(1, int(round(prevalence * n)))
    pick = np.random.default_rng(1).choice(n, size=n_inf, replace=False)
    health[pick] = inf_code
    return health


def test_transmission_kernel_backends(benchmark, save_artifact):
    model = build_covid_model()

    def panel():
        rows = []
        for code, scale in NETWORKS:
            pop, net = build_region_network(code, scale=scale, seed=6)
            inc = IncidentEdges(net.source, net.target, pop.size)
            dur = net.duration.astype(np.float64)
            w = net.weight.astype(np.float64)
            active = np.ones(net.n_edges, bool)
            ones = np.ones(pop.size)
            for prev in PREVALENCES:
                health = _health_at_prevalence(model, pop.size, prev)

                def one_tick(backend):
                    return transmission_step(
                        model, health, ones, ones, net.source, net.target,
                        active, w, dur, np.random.default_rng(RNG_SEED),
                        backend=backend, incident=inc)

                events = {b: one_tick(b) for b in BACKENDS}
                base = events["dense"]
                for b in ("frontier", "auto"):  # equivalence, not just speed
                    np.testing.assert_array_equal(base.pids, events[b].pids)
                    np.testing.assert_array_equal(
                        base.infectors, events[b].infectors)
                    assert base.n_candidates == events[b].n_candidates

                times = {b: _best_time(lambda b=b: one_tick(b))
                         for b in BACKENDS}
                rows.append((f"{code}@{scale:g}", net.n_edges, prev, times))
        return rows

    rows = benchmark.pedantic(panel, rounds=1, iterations=1)

    lines = [f"{'network':<10}{'edges':>10}{'prev':>7}"
             f"{'dense (ms)':>12}{'frontier (ms)':>15}{'auto (ms)':>11}"
             f"{'speedup':>9}{'auto pen.':>10}"]
    for name, edges, prev, t in rows:
        speedup = t["dense"] / t["frontier"]
        pen = t["auto"] / min(t["dense"], t["frontier"]) - 1.0
        lines.append(
            f"{name:<10}{edges:>10,}{prev:>7.1%}"
            f"{t['dense'] * 1e3:>12.3f}{t['frontier'] * 1e3:>15.3f}"
            f"{t['auto'] * 1e3:>11.3f}{speedup:>8.1f}x{pen:>+10.1%}")
    save_artifact("transmission_kernel_backends", "\n".join(lines))

    largest = rows[-len(PREVALENCES):]
    low = [r for r in largest if r[2] <= 0.01]
    for _name, _edges, _prev, t in low:
        assert t["dense"] / t["frontier"] >= 3.0
    # Regression guard for the per-tick auto resolution: auto must not
    # lose to the better fixed backend in EITHER regime — low prevalence
    # (frontier territory) or 40% (dense territory, where the old
    # O(infectious) index build made auto pay >10% over dense).
    for name, _edges, prev, t in rows:
        best = min(t["dense"], t["frontier"])
        assert t["auto"] <= AUTO_TOLERANCE * best, (
            f"auto lost at {name} prev={prev:.1%}: "
            f"{t['auto'] * 1e3:.3f}ms vs best {best * 1e3:.3f}ms")
