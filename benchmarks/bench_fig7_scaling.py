"""Figure 7: EpiHiper runtime scaling, three panels.

Top:    runtime grows linearly with network size at fixed processing units.
Middle: strong scaling — speedup grows, flattens, and eventually reverses;
        the turnover point grows with problem size.
Bottom: runtime by intervention scenario — base < RO ~ TA < PS < D1CT <
        D2CT, with D2CT almost +300% over base.

The top and bottom panels run the *real* simulator on scaled networks; the
middle panel uses the simulated-rank execution profile (DESIGN.md
substitution: communication is accounted, not transported).
"""

import time

import numpy as np
import pytest

from repro.cluster.costmodel import INTERVENTION_RUNTIME_FACTOR, CostModel
from repro.epihiper import (
    Simulation,
    build_covid_model,
    strong_scaling_curve,
    uniform_seeds,
)
from repro.epihiper.npi import scenario_interventions
from repro.synthpop import build_region_network

DAYS = 60


def run_region(code, interventions=None, seed=3):
    pop, net = build_region_network(code, scale=1e-3, seed=6)
    model = build_covid_model()
    sim = Simulation(model, pop, net, seed=seed,
                     interventions=interventions or [])
    sim.seed_infections(uniform_seeds(pop, max(10, pop.size // 400),
                                      sim.rng))
    t0 = time.perf_counter()
    result = sim.run(DAYS)
    wall = time.perf_counter() - t0
    return net, result, wall


def test_fig7_top_runtime_linear_in_size(benchmark, save_artifact):
    codes = ("WY", "NM", "OK", "VA", "OH", "CA")

    def panel():
        rows = []
        for code in codes:
            net, result, wall = run_region(code)
            rows.append((code, net.n_edges, wall))
        return rows

    rows = benchmark.pedantic(panel, rounds=1, iterations=1)
    lines = [f"{'state':<7}{'edges':>10}{'wall (s)':>10}"]
    for code, edges, wall in rows:
        lines.append(f"{code:<7}{edges:>10,}{wall:>10.3f}")
    save_artifact("fig7_top_runtime_vs_size", "\n".join(lines))

    edges = np.asarray([r[1] for r in rows], dtype=np.float64)
    walls = np.asarray([r[2] for r in rows])
    # Linear shape: strong positive correlation between size and runtime.
    corr = np.corrcoef(edges, walls)[0, 1]
    assert corr > 0.95
    # The largest network costs several times the smallest.
    assert walls[-1] > 3 * walls[0]


def test_fig7_middle_strong_scaling(benchmark, save_artifact):
    rank_counts = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]

    def panel():
        out = {}
        for code in ("VT", "VA", "CA"):
            net, result, _wall = run_region(code)
            profs = strong_scaling_curve(result, net, rank_counts)
            base = profs[0]
            out[code] = [p.speedup_over(base) for p in profs]
        return out

    curves = benchmark.pedantic(panel, rounds=1, iterations=1)
    lines = [f"{'ranks':>6}" + "".join(f"{c:>9}" for c in curves)]
    for i, p in enumerate(rank_counts):
        lines.append(f"{p:>6}" + "".join(
            f"{curves[c][i]:>9.2f}" for c in curves))
    save_artifact("fig7_middle_strong_scaling", "\n".join(lines))

    for code, speedups in curves.items():
        assert speedups[1] > 1.2  # parallelism helps initially
        peak = int(np.argmax(speedups))
        assert speedups[-1] < speedups[peak]  # eventually reverses
    # Turnover grows with problem size.
    peaks = {c: rank_counts[int(np.argmax(s))] for c, s in curves.items()}
    assert peaks["VT"] <= peaks["VA"] <= peaks["CA"]
    assert peaks["CA"] > peaks["VT"]


def test_fig7_bottom_intervention_cost(benchmark, save_artifact):
    scenarios = ("base", "RO", "TA", "PS", "D1CT", "D2CT")
    cm = CostModel()

    def panel():
        rows = []
        for name in scenarios:
            net, result, wall = run_region(
                "VA", interventions=scenario_interventions(name))
            # Modelled runtime: paper-scale cost model, which folds the
            # measured per-intervention work multipliers.
            modelled = cm.expected_runtime("VA", 4, scenario=name)
            ops = result.counters["intervention_edge_ops"]
            rows.append((name, modelled, ops, wall))
        return rows

    rows = benchmark.pedantic(panel, rounds=1, iterations=1)
    lines = [f"{'scenario':<8}{'modelled (s)':>14}{'edge ops':>12}"
             f"{'wall (s)':>10}"]
    for name, modelled, ops, wall in rows:
        lines.append(f"{name:<8}{modelled:>14.0f}{ops:>12,}{wall:>10.3f}")
    save_artifact("fig7_bottom_interventions", "\n".join(lines))

    modelled = [r[1] for r in rows]
    assert modelled == sorted(modelled)  # base < RO < TA < PS < D1CT < D2CT
    base, d2ct = modelled[0], modelled[-1]
    assert 3.5 < d2ct / base < 4.3  # "almost 300%" increase
    # The real simulator does more intervention work for tracing too.
    ops = {r[0]: r[2] for r in rows}
    assert ops["D2CT"] > ops["D1CT"] > 0
