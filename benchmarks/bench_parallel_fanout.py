"""Ablation: process-parallel fan-out of simulation instances.

The production throughput claim rests on independent simulations
parallelising perfectly across the allocation; this bench verifies the
reproduction shows real speedup from its process-pool fan-out (serial vs
parallel wall clock on a replicate batch) and that results are identical.
"""

import os
import time

import numpy as np
import pytest

from repro.core.designs import ExperimentDesign, factorial_cells
from repro.core.parallel import (
    gather_ensemble,
    run_instances,
    specs_for_design,
)


def batch_specs():
    cells = factorial_cells({
        "TAU": [0.2, 0.3],
        "SH_COMPLIANCE": [0.4, 0.8],
    })
    design = ExperimentDesign("fanout", cells, ("VA",), 4)
    return specs_for_design(design, n_days=80, scale=1e-3, seed=70)


def test_parallel_fanout_speedup(benchmark, save_artifact):
    specs = batch_specs()

    def compare():
        # Warm the per-process asset cache so the comparison measures
        # simulation work, not one-time input construction.
        run_instances(specs[:1], parallel=False)
        t0 = time.perf_counter()
        serial = run_instances(specs, parallel=False)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_instances(specs, parallel=True)
        t_parallel = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel

    serial, parallel, t_serial, t_parallel = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    save_artifact(
        "parallel_fanout",
        f"instances: {len(specs)}\ncores: {cores}\n"
        f"serial: {t_serial:.2f}s\nparallel: {t_parallel:.2f}s\n"
        f"speedup: {speedup:.2f}x")

    # Identical results regardless of execution mode.
    np.testing.assert_array_equal(
        gather_ensemble(serial), gather_ensemble(parallel))
    # On a multicore host the pool should help for a 16-instance batch;
    # tolerate slow pool start-up on constrained machines.
    if cores >= 4:
        assert speedup > 1.2


def test_fanout_ensemble_statistics(benchmark):
    specs = batch_specs()
    outcomes = benchmark.pedantic(
        lambda: run_instances(specs, parallel=True),
        rounds=1, iterations=1)
    ens = gather_ensemble(outcomes)
    assert ens.shape[0] == len(specs)
    # Higher SH compliance lowers mean attack within matching TAU.
    by_key = {}
    for o in outcomes:
        key = (o.spec.params["TAU"], o.spec.params["SH_COMPLIANCE"])
        by_key.setdefault(key, []).append(o.attack_rate)
    for tau in (0.2, 0.3):
        lax = np.mean(by_key[(tau, 0.4)])
        strict = np.mean(by_key[(tau, 0.8)])
        assert strict <= lax + 0.05
