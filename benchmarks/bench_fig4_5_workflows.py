"""Figures 4 and 5: the calibration and prediction workflow instantiations.

Figure 4: a calibration design of 300 cells x 51 states x 1 replicate =
15,300 instances; county incidence in (~3000 counties x 200+ days); raw
output ~5TB; aggregates ~1.5e9 entries / ~4GB.

Figure 5: a prediction design of (3 reopening x 4 tracing) x 51 x 15 =
9,180 instances; transmission-tree output ~1TB; summaries ~2.5GB.

The bench validates the designs' accounting at paper scale and executes a
miniature calibration -> prediction cycle end-to-end.
"""

import numpy as np
import pytest

from repro.core.accounting import account_workflow
from repro.core.calibration_wf import run_calibration_workflow
from repro.core.designs import calibration_design, prediction_design
from repro.core.prediction_wf import run_prediction_workflow
from repro.params import GB, TB
from repro.surveillance import generate_national_truth
from repro.synthpop.regions import total_counties


def test_fig4_calibration_inputs(benchmark, save_artifact):
    """[1] Incidence data: about 3000 counties x 200+ days of entries."""
    truth = benchmark.pedantic(
        lambda: generate_national_truth(n_days=210, seed=0),
        rounds=1, iterations=1)
    counties = sum(t.n_counties for t in truth.values())
    entries = sum(t.n_counties * t.n_days for t in truth.values())
    save_artifact("fig4_incidence_inputs",
                  f"counties: {counties}\ndays: 210\nentries: {entries:,}")
    assert counties == total_counties() == 3140
    assert entries > 3000 * 200


def test_fig4_design_accounting(benchmark, save_artifact):
    acct = benchmark(
        lambda: account_workflow(calibration_design(seed=0)))
    save_artifact("fig4_design_accounting", acct.table_row())
    assert acct.n_simulations == 15300  # 300 x 51 x 1
    assert 3.5 * TB < acct.raw_bytes < 6.5 * TB       # "about 5TB"
    assert 1.2e9 < acct.summary_entries < 1.8e9       # "about 1.5 billion"
    assert 3 * GB < acct.summary_bytes < 5.5 * GB     # "4GB"


def test_fig5_design_accounting(benchmark, save_artifact):
    acct = benchmark(lambda: account_workflow(prediction_design()))
    save_artifact("fig5_design_accounting", acct.table_row())
    assert acct.n_simulations == 9180  # (3 x 4) x 51 x 15
    assert 0.5 * TB < acct.raw_bytes < 2 * TB         # "about 1TB"
    assert 1.5 * GB < acct.summary_bytes < 3.5 * GB   # "2.5GB"


def mini_cycle():
    cal = run_calibration_workflow(
        "VT", n_cells=20, n_days=70, scale=1e-3, seed=31,
        mcmc_samples=400, mcmc_burn_in=400)
    pred = run_prediction_workflow(
        cal, n_configurations=4, replicates=2, horizon=28,
        reopen_levels=(0.25, 0.75), tracing_compliances=(0.4,), seed=32)
    return cal, pred


def test_fig4_5_cycle_executes(benchmark, save_artifact):
    cal, pred = benchmark.pedantic(mini_cycle, rounds=1, iterations=1)
    lines = [
        f"prior cells: {cal.prior_design.shape[0]}",
        f"posterior draws: {cal.posterior.theta_samples.shape[0]}",
        f"prediction members: {pred.n_members}",
        f"what-if labels: {sorted(set(pred.what_if))}",
    ]
    save_artifact("fig4_5_cycle", "\n".join(lines))

    # Calibration hands plausible configurations to prediction (Fig. 4->5).
    assert cal.posterior.theta_samples.shape[0] > 100
    assert pred.n_members == 4 * 2 * 2  # configs x what-ifs x replicates
    assert len(set(pred.what_if)) == 2  # two reopening levels
    # Prediction bands are well-formed over history + horizon.
    assert pred.confirmed_band.n_days == cal.observed.shape[0] + 28
    assert (pred.confirmed_band.upper >= pred.confirmed_band.lower).all()
