"""Table I: scale and data volumes of the three workflow families.

Paper row (cells x states x replicates = simulations; raw; summary):

    Economic     12 x 51 x 15 =  9180   3.0TB  5.0GB (sic: summ col 2.5GB)
    Prediction   12 x 51 x 15 =  9180   1.0TB  2.5GB
    Calibration 300 x 51 x  1 = 15300   5.0TB  4.0GB

We regenerate the same rows from the design definitions and the output-size
accounting and check the magnitudes.
"""

import pytest

from repro.core.accounting import account_workflow, table_i
from repro.core.designs import (
    calibration_design,
    economic_design,
    prediction_design,
)
from repro.params import GB, TB


def compute_rows():
    designs = [economic_design(), prediction_design(),
               calibration_design(seed=0)]
    return [account_workflow(d) for d in designs]


def test_table1_rows(benchmark, save_artifact):
    rows = benchmark(compute_rows)
    text = table_i(rows)
    save_artifact("table1_scale", text)

    eco, pred, cal = rows
    # Simulation counts are exact.
    assert eco.n_simulations == 9180
    assert pred.n_simulations == 9180
    assert cal.n_simulations == 15300
    # Volumes match the paper's order of magnitude and ordering.
    assert 2 * TB < eco.raw_bytes < 4.5 * TB        # paper: 3.0TB
    assert 0.5 * TB < pred.raw_bytes < 2 * TB       # paper: 1.0TB
    assert 3.5 * TB < cal.raw_bytes < 6.5 * TB      # paper: 5.0TB
    assert cal.raw_bytes > eco.raw_bytes > pred.raw_bytes
    assert 1.5 * GB < eco.summary_bytes < 3.5 * GB  # paper: 2.5GB
    assert 3 * GB < cal.summary_bytes < 5.5 * GB    # paper: 4.0GB


def test_table1_entry_counts(benchmark):
    rows = benchmark(compute_rows)
    eco, _pred, cal = rows
    # "about 1 billion entries" (economic), "about 1.5 billion" (calibr.).
    assert 0.7e9 < eco.summary_entries < 1.3e9
    assert 1.2e9 < cal.summary_entries < 1.8e9
    # "multi-billion entries" of raw individual-level output.
    assert eco.raw_entries > 1e9
