"""Ablation: mapping-algorithm design choices (Section V).

Compares four orderings on the same nightly workload:

- FFDT-DC (the production choice),
- NFDT-DC (the initial configuration),
- random order with backfill (no decreasing-time sort),
- FFDT without DB constraints (how much do the caps cost?).

Expected shape: FFDT-DC ~ FFDT-noDB > random-backfill > NFDT-DC on
utilization; removing DB constraints helps little when caps are sized
correctly (the paper's Step-1 decomposition makes them cheap).
"""

import numpy as np
import pytest

from repro.cluster.slurm import Job, SlurmSimulator
from repro.scheduling.levels import pack_ffdt_dc, pack_nfdt_dc
from repro.scheduling.metrics import execute_packing, jobs_from_packing
from repro.scheduling.wmp import WMPInstance, make_nightly_instance


def run_variants(seed=0):
    instance = make_nightly_instance(cells_per_region=6, replicates=8,
                                     seed=seed)
    results = {}

    ffdt = execute_packing(pack_ffdt_dc(instance))
    results["FFDT-DC"] = ffdt.utilization

    nfdt = execute_packing(pack_nfdt_dc(instance))
    results["NFDT-DC"] = nfdt.utilization

    # Random order, backfill, DB caps kept.
    rng = np.random.default_rng(seed)
    shuffled = list(instance.tasks)
    rng.shuffle(shuffled)
    jobs = [Job(t.task_id, t.region_code, t.n_nodes, t.est_time)
            for t in shuffled]
    sim = SlurmSimulator(db_caps=instance.db_caps,
                         reserved_nodes=720 - instance.machine_width)
    results["random-backfill"] = sim.run(jobs, policy="backfill").utilization

    # FFDT without DB constraints.
    no_caps = WMPInstance(list(instance.tasks), instance.machine_width, {})
    packed = pack_ffdt_dc(no_caps)
    sim2 = SlurmSimulator(db_caps={},
                          reserved_nodes=720 - instance.machine_width)
    results["FFDT-noDB"] = sim2.run(jobs_from_packing(packed),
                                    policy="backfill").utilization
    return results


def test_ablation_scheduling(benchmark, save_artifact):
    results = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    lines = [f"{'variant':<18}{'utilization':>12}"]
    for name, util in sorted(results.items(), key=lambda kv: -kv[1]):
        lines.append(f"{name:<18}{util:>12.3f}")
    save_artifact("ablation_scheduling", "\n".join(lines))

    # The production choice dominates the initial configuration ...
    assert results["FFDT-DC"] > results["NFDT-DC"]
    # ... and the unsorted ordering.
    assert results["FFDT-DC"] >= results["random-backfill"] - 0.02
    # Correctly sized DB caps cost little: removing them buys < 5 points.
    assert results["FFDT-noDB"] - results["FFDT-DC"] < 0.05
    # All variants complete the same workload.
    assert all(0 < u <= 1.0 + 1e-9 for u in results.values())


def test_ablation_db_cap_sweep(benchmark, save_artifact):
    """How tight can the connection caps get before utilization collapses?"""

    def sweep():
        out = {}
        for cap in (2, 4, 8, 16, 32):
            inst = make_nightly_instance(cells_per_region=4, replicates=6,
                                         db_cap=cap, seed=1)
            out[cap] = execute_packing(pack_ffdt_dc(inst)).utilization
        return out

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'db cap':>7}{'utilization':>12}"]
    for cap, util in result.items():
        lines.append(f"{cap:>7}{util:>12.3f}")
    save_artifact("ablation_db_cap_sweep", "\n".join(lines))

    # Utilization is monotone non-decreasing in the cap (more concurrency
    # never hurts) and collapses for very tight caps.
    utils = [result[c] for c in sorted(result)]
    assert all(b >= a - 0.02 for a, b in zip(utils, utils[1:]))
    assert result[2] < result[32]
