"""Figure 6: node and edge counts of each state's contact network.

Regenerates the per-state series in the paper's ascending-population order,
both at paper scale (from the population shares) and by actually building a
sample of scaled synthetic networks and checking that edge counts track the
paper-scale distribution.
"""

import numpy as np
import pytest

from repro.cluster.costmodel import network_size_table, paper_scale_edges
from repro.params import PAPER_TOTAL_EDGES, PAPER_TOTAL_NODES
from repro.synthpop import BY_POPULATION, build_region_network


def test_fig6_paper_scale_series(benchmark, save_artifact):
    table = benchmark(network_size_table)
    lines = [f"{'state':<7}{'nodes (x10M)':>14}{'edges (x100M)':>15}"]
    for code, nodes, edges in table:
        lines.append(f"{code:<7}{nodes / 1e7:>14.2f}{edges / 1e8:>15.2f}")
    save_artifact("fig6_network_sizes", "\n".join(lines))

    codes = [r[0] for r in table]
    assert codes == list(BY_POPULATION)
    nodes = np.asarray([r[1] for r in table])
    edges = np.asarray([r[2] for r in table])
    assert (np.diff(nodes) >= 0).all()  # ascending order (Figure 6 x-axis)
    assert abs(nodes.sum() - PAPER_TOTAL_NODES) < 1e3
    assert abs(edges.sum() - PAPER_TOTAL_EDGES) < 1e3
    # CA is about 10x the median state (the figure's dominant bar).
    assert edges[-1] > 8 * np.median(edges)


def build_sample_networks():
    sample = ("WY", "NM", "VA", "CA")
    return {code: build_region_network(code, scale=1e-3, seed=6)[1]
            for code in sample}


def test_fig6_synthetic_networks_track_shares(benchmark, save_artifact):
    nets = benchmark.pedantic(build_sample_networks, rounds=1, iterations=1)
    lines = [f"{'state':<7}{'synthetic nodes':>16}{'synthetic edges':>16}"]
    for code, net in nets.items():
        lines.append(f"{code:<7}{net.n_nodes:>16,}{net.n_edges:>16,}")
    save_artifact("fig6_synthetic_sample", "\n".join(lines))

    # Relative edge counts of the synthetic networks follow the
    # paper-scale shares within a factor ~2.
    va, ca = nets["VA"], nets["CA"]
    expected_ratio = paper_scale_edges("CA") / paper_scale_edges("VA")
    actual_ratio = ca.n_edges / va.n_edges
    assert expected_ratio / 2 < actual_ratio < expected_ratio * 2
    sizes = [nets[c].n_edges for c in ("WY", "NM", "VA", "CA")]
    assert sizes == sorted(sizes)
