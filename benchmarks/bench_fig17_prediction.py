"""Figure 17: cumulative confirmed-case prediction with uncertainty band.

The paper shows Virginia's reported counts up to April 11, 2020, then the
posterior-ensemble median prediction (blue) with a 95% uncertainty band
(yellow) for the following eight weeks.

Regenerated end-to-end: calibrate on the first part of the surveillance
window, predict the rest, and check that the band is well-formed, widens
with horizon, and brackets the subsequently "observed" truth.
"""

import numpy as np
import pytest

from repro.core.calibration_wf import run_calibration_workflow
from repro.core.prediction_wf import run_prediction_workflow
from repro.core.runner import observed_series

CAL_DAYS = 80
HORIZON = 56  # eight weeks


@pytest.fixture(scope="module")
def forecast():
    cal = run_calibration_workflow(
        "VA", n_cells=30, n_days=CAL_DAYS, scale=1e-3, seed=2,
        mcmc_samples=700, mcmc_burn_in=600)
    pred = run_prediction_workflow(
        cal, n_configurations=8, replicates=3, horizon=HORIZON, seed=3)
    return cal, pred


def test_fig17_band_structure(benchmark, forecast, save_artifact):
    cal, pred = benchmark.pedantic(lambda: forecast, rounds=1, iterations=1)
    band = pred.confirmed_band
    t0 = CAL_DAYS
    lines = [f"{'day':>5}{'median':>10}{'lower':>10}{'upper':>10}"]
    for ahead in (0, 7, 14, 28, 42, 56):
        d = t0 + ahead
        lines.append(f"+{ahead:>4}{band.median[d]:>10.1f}"
                     f"{band.lower[d]:>10.1f}{band.upper[d]:>10.1f}")
    save_artifact("fig17_prediction_band", "\n".join(lines))

    assert band.n_days == CAL_DAYS + HORIZON + 1
    assert (band.lower <= band.median).all()
    assert (band.median <= band.upper).all()
    # Cumulative counts: the median forecast never decreases.
    assert (np.diff(band.median) >= -1e-9).all()
    # Uncertainty grows with horizon (the widening yellow band).
    width_now = band.upper[t0] - band.lower[t0]
    width_end = band.upper[-1] - band.lower[-1]
    assert width_end >= width_now


def test_fig17_brackets_future_truth(benchmark, forecast, save_artifact):
    cal, pred = forecast

    def coverage():
        full = observed_series(
            cal.assets.truth, cal.assets.scale,
            cal.assets.truth.n_days - 1)
        future = full[cal.onset_day: cal.onset_day + CAL_DAYS + HORIZON + 1]
        band = pred.confirmed_band
        inside = ((future >= band.lower) & (future <= band.upper))
        return future, inside

    future, inside = benchmark.pedantic(coverage, rounds=1, iterations=1)
    save_artifact(
        "fig17_coverage",
        f"future-window coverage: {inside[CAL_DAYS:].mean():.0%}\n"
        f"full-window coverage:   {inside.mean():.0%}")
    # The 95% band should cover a solid majority of the forecast window.
    assert inside[CAL_DAYS:].mean() > 0.5


def test_fig17_ensemble_spread(benchmark, forecast):
    _cal, pred = forecast
    finals = pred.confirmed_ensemble[:, -1]
    spread = benchmark(lambda: float(finals.max() - finals.min()))
    assert pred.n_members == 24
    assert spread > 0  # genuine ensemble variation
