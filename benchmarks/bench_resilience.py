"""Resilience study: the nightly workload under injected failures.

The paper's pipeline delivered "for over 30 weeks without interruption";
this bench quantifies the margin that requires: the prediction-night job
array is executed with Poisson node failures (requeue-and-rerun recovery)
and the Globus transfers with interruption-restart, measuring how much of
the 10-hour window the recovery overhead consumes.
"""

import numpy as np
import pytest

from repro.cluster.failures import FaultySlurmSimulator, FlakyGlobusLink
from repro.cluster.machines import BRIDGES, NIGHTLY_WINDOW
from repro.params import GB
from repro.scheduling.metrics import jobs_from_packing
from repro.scheduling.levels import pack_ffdt_dc
from repro.scheduling.wmp import make_nightly_instance


def night_with_failures(mttf_hours, seed=0):
    instance = make_nightly_instance(cells_per_region=6, replicates=8,
                                     seed=seed)
    packed = pack_ffdt_dc(instance)
    jobs = jobs_from_packing(packed)
    sim = FaultySlurmSimulator(
        BRIDGES,
        db_caps=instance.db_caps,
        reserved_nodes=BRIDGES.n_nodes - instance.machine_width,
        node_mttf_hours=mttf_hours,
        rng=np.random.default_rng(seed),
    )
    return sim.run(jobs)


def test_resilience_node_failures(benchmark, save_artifact):
    def sweep():
        out = {}
        for mttf in (1e9, 5000.0, 500.0, 100.0):
            res = night_with_failures(mttf)
            out[mttf] = res
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'node MTTF (h)':>14}{'makespan (h)':>14}{'reruns':>8}"
             f"{'overhead':>10}{'fits 10h':>9}"]
    for mttf, res in results.items():
        hours = res.schedule.makespan / 3600
        fits = hours <= NIGHTLY_WINDOW.duration_hours
        lines.append(f"{mttf:>14.0f}{hours:>14.2f}{res.reruns:>8}"
                     f"{res.overhead_fraction:>10.3f}{str(fits):>9}")
    save_artifact("resilience_node_failures", "\n".join(lines))

    clean = results[1e9]
    worst = results[100.0]
    # Everything still completes; overhead grows as MTTF shrinks.
    assert clean.reruns == 0
    assert worst.reruns > 0
    assert worst.schedule.makespan >= clean.schedule.makespan
    # Realistic MTTFs leave the night comfortably inside the window.
    assert results[5000.0].schedule.makespan / 3600 < 10.0
    overheads = [results[m].overhead_fraction
                 for m in (1e9, 5000.0, 500.0, 100.0)]
    assert overheads == sorted(overheads)


def test_resilience_transfer_retries(benchmark, save_artifact):
    def transfers():
        out = {}
        for p_fail in (0.0, 0.2, 0.5):
            link = FlakyGlobusLink(
                "rivanna", "bridges", failure_probability=p_fail,
                max_retries=30, rng=np.random.default_rng(8))
            durations = [
                link.transfer(f"xfer{i}", "rivanna", "bridges",
                              4 * GB).duration
                for i in range(20)
            ]
            out[p_fail] = (float(np.mean(durations)),
                           len(link.retry_log))
        return out

    results = benchmark.pedantic(transfers, rounds=1, iterations=1)
    lines = [f"{'P(fail)':>8}{'mean duration (s)':>19}{'retries':>9}"]
    for p, (dur, retries) in results.items():
        lines.append(f"{p:>8.1f}{dur:>19.1f}{retries:>9}")
    save_artifact("resilience_transfers", "\n".join(lines))

    assert results[0.0][1] == 0
    assert results[0.5][1] > results[0.2][1]
    assert results[0.5][0] > results[0.0][0]
    # Even at 50% interruption probability the nightly config volume
    # (<= 8.7GB) moves within minutes, far inside the window.
    assert results[0.5][0] < 1800
