"""Resilience study: the nightly workload under injected failures.

The paper's pipeline delivered "for over 30 weeks without interruption";
this bench quantifies the margin that requires: the prediction-night job
array is executed with Poisson node failures (requeue-and-rerun recovery)
and the Globus transfers with interruption-restart, measuring how much of
the 10-hour window the recovery overhead consumes.
"""

import time

import numpy as np
import pytest

from repro.checkpoint import CheckpointPlan
from repro.cluster.failures import FaultySlurmSimulator, FlakyGlobusLink
from repro.cluster.machines import BRIDGES, NIGHTLY_WINDOW
from repro.params import GB
from repro.scheduling.metrics import jobs_from_packing
from repro.scheduling.levels import pack_ffdt_dc
from repro.scheduling.wmp import make_nightly_instance


def night_with_failures(mttf_hours, seed=0):
    instance = make_nightly_instance(cells_per_region=6, replicates=8,
                                     seed=seed)
    packed = pack_ffdt_dc(instance)
    jobs = jobs_from_packing(packed)
    sim = FaultySlurmSimulator(
        BRIDGES,
        db_caps=instance.db_caps,
        reserved_nodes=BRIDGES.n_nodes - instance.machine_width,
        node_mttf_hours=mttf_hours,
        rng=np.random.default_rng(seed),
    )
    return sim.run(jobs)


def test_resilience_node_failures(benchmark, save_artifact):
    def sweep():
        out = {}
        for mttf in (1e9, 5000.0, 500.0, 100.0):
            res = night_with_failures(mttf)
            out[mttf] = res
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'node MTTF (h)':>14}{'makespan (h)':>14}{'reruns':>8}"
             f"{'overhead':>10}{'fits 10h':>9}"]
    for mttf, res in results.items():
        hours = res.schedule.makespan / 3600
        fits = hours <= NIGHTLY_WINDOW.duration_hours
        lines.append(f"{mttf:>14.0f}{hours:>14.2f}{res.reruns:>8}"
                     f"{res.overhead_fraction:>10.3f}{str(fits):>9}")
    save_artifact("resilience_node_failures", "\n".join(lines))

    clean = results[1e9]
    worst = results[100.0]
    # Everything still completes; overhead grows as MTTF shrinks.
    assert clean.reruns == 0
    assert worst.reruns > 0
    assert worst.schedule.makespan >= clean.schedule.makespan
    # Realistic MTTFs leave the night comfortably inside the window.
    assert results[5000.0].schedule.makespan / 3600 < 10.0
    overheads = [results[m].overhead_fraction
                 for m in (1e9, 5000.0, 500.0, 100.0)]
    assert overheads == sorted(overheads)


def test_resilience_transfer_retries(benchmark, save_artifact):
    def transfers():
        out = {}
        for p_fail in (0.0, 0.2, 0.5):
            link = FlakyGlobusLink(
                "rivanna", "bridges", failure_probability=p_fail,
                max_retries=30, rng=np.random.default_rng(8))
            durations = [
                link.transfer(f"xfer{i}", "rivanna", "bridges",
                              4 * GB).duration
                for i in range(20)
            ]
            out[p_fail] = (float(np.mean(durations)),
                           len(link.retry_log))
        return out

    results = benchmark.pedantic(transfers, rounds=1, iterations=1)
    lines = [f"{'P(fail)':>8}{'mean duration (s)':>19}{'retries':>9}"]
    for p, (dur, retries) in results.items():
        lines.append(f"{p:>8.1f}{dur:>19.1f}{retries:>9}")
    save_artifact("resilience_transfers", "\n".join(lines))

    assert results[0.0][1] == 0
    assert results[0.5][1] > results[0.2][1]
    assert results[0.5][0] > results[0.0][0]
    # Even at 50% interruption probability the nightly config volume
    # (<= 8.7GB) moves within minutes, far inside the window.
    assert results[0.5][0] < 1800


def test_resilience_checkpointed_retry(benchmark, save_artifact, tmp_path):
    """Checkpointed resume vs restart-from-zero on a live simulation.

    A 100-tick instance is killed at tick 95 — the worst preemption
    short of completion.  Without checkpoints the retry re-executes 95
    already-computed ticks; with ``--checkpoint-every 10`` it resumes
    from the tick-90 snapshot and re-executes 5.  The undisturbed legs
    price the snapshot-write overhead the saving costs.
    """
    from repro.core.parallel import InstanceSpec, supervise_instances
    from repro.obs import MetricsRegistry
    from repro.resilience import FaultPlan, RetryPolicy

    DAYS, CRASH, EVERY = 100, 95, 10
    retry = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)

    def leg(every, crash, root):
        plan = (CheckpointPlan(store_root=str(root), every=every)
                if every else None)
        faults = (FaultPlan.parse(
            [f"worker.crash_mid_run:tick={crash},times=1"], seed=0)
            if crash is not None else None)
        reg = MetricsRegistry()
        spec = InstanceSpec(region_code="VT", params={"TAU": 0.3},
                            n_days=DAYS, scale=1e-3, seed=11,
                            label="ck-bench", asset_seed=0)
        t0 = time.perf_counter()
        res = supervise_instances([spec], parallel=False, retry=retry,
                                  faults=faults, registry=reg,
                                  checkpoint=plan)
        wall = time.perf_counter() - t0
        assert res.ok
        # A crashed attempt's counters die with it (by design), so the
        # sink's tick count is the *successful* attempt's alone; ticks
        # past the crash point were never computed before, the rest is
        # re-execution.
        final_ticks = reg.value("runner.ticks_executed")
        re_executed = (max(0, final_ticks - (DAYS - crash))
                       if crash is not None else 0)
        return {"wall": wall, "re_executed": re_executed,
                "saved": res.ticks_saved}

    def scenarios():
        return {
            "clean every=0": leg(0, None, tmp_path / "a"),
            f"clean every={EVERY}": leg(EVERY, None, tmp_path / "b"),
            f"crash@{CRASH} every=0": leg(0, CRASH, tmp_path / "c"),
            f"crash@{CRASH} every={EVERY}": leg(EVERY, CRASH,
                                                tmp_path / "d"),
        }

    results = benchmark.pedantic(scenarios, rounds=1, iterations=1)
    base = results["clean every=0"]["wall"]
    lines = [f"{'scenario':>20}{'wall (s)':>10}{'overhead':>10}"
             f"{'re-executed':>13}{'ticks saved':>13}"]
    for name, r in results.items():
        lines.append(f"{name:>20}{r['wall']:>10.2f}"
                     f"{r['wall'] / base - 1:>+10.1%}"
                     f"{r['re_executed']:>13}{r['saved']:>13}")
    save_artifact("resilience_checkpointed_retry", "\n".join(lines))

    restart = results[f"crash@{CRASH} every=0"]
    resumed = results[f"crash@{CRASH} every={EVERY}"]
    # The acceptance gate: resumed retries re-execute <= 15% of the
    # ticks a restart-from-zero retry re-executes.
    assert restart["re_executed"] == CRASH
    assert resumed["re_executed"] <= 0.15 * restart["re_executed"]
    assert resumed["saved"] == (CRASH // EVERY) * EVERY
    assert restart["saved"] == 0
