"""Case study 1: medical costs of keeping the economy open (ref [9]).

The workflow: calibrate toward R0 ~ 2.5, run the NPI factorial with
county-level seeding, aggregate individual-level medical events, and cost
them.  The reproduced outcome shape: costs scale with the epidemic size;
hospital costs dominate outpatient costs; stronger compliance reduces both
the attack rate and the bill.
"""

import numpy as np
import pytest

from repro.core.counterfactual_wf import run_economic_workflow
from repro.core.designs import ExperimentDesign, factorial_cells
from repro.economics.costs import cost_per_capita
from repro.synthpop.regions import get_region


@pytest.fixture(scope="module")
def outcome():
    cells = factorial_cells({
        "vhi_compliance": [0.2, 0.8],
        "sh_compliance": [0.2, 0.8],
        "TAU": [0.28],
    })
    design = ExperimentDesign("economic", cells, ("VT", "RI"), 3)
    return run_economic_workflow(
        regions=("VT", "RI"), design=design, n_days=150, scale=1e-3,
        seed=41)


def test_case1_compliance_reduces_costs(benchmark, outcome, save_artifact):
    result = benchmark.pedantic(lambda: outcome, rounds=1, iterations=1)
    save_artifact("case1_cost_table", result.cost_table())

    by_key = {
        (o.cell.params["vhi_compliance"], o.cell.params["sh_compliance"]): o
        for o in result.outcomes
    }
    lax = by_key[(0.2, 0.2)]
    strict = by_key[(0.8, 0.8)]
    assert strict.mean_attack_rate < lax.mean_attack_rate
    assert strict.total_cost < lax.total_cost


def test_case1_cost_structure(benchmark, outcome, save_artifact):
    result = outcome

    def structure():
        worst = result.most_expensive()
        pop = sum(get_region(r).population for r in ("VT", "RI"))
        return worst, cost_per_capita(worst.costs, pop)

    worst, per_capita = benchmark.pedantic(structure, rounds=1,
                                           iterations=1)
    save_artifact(
        "case1_cost_structure",
        f"worst scenario: {worst.cell.label()}\n"
        f"outpatient: ${worst.costs.outpatient:,.0f}\n"
        f"hospital:   ${worst.costs.hospital:,.0f}\n"
        f"ventilator: ${worst.costs.ventilator:,.0f}\n"
        f"admissions: ${worst.costs.admissions:,.0f}\n"
        f"per capita: ${per_capita:,.0f}")

    # Inpatient care dominates the bill (the case study's finding).
    inpatient = (worst.costs.hospital + worst.costs.ventilator
                 + worst.costs.admissions)
    assert inpatient > worst.costs.outpatient
    # Per-capita costs are in plausible dollars (tens to thousands).
    assert 1.0 < per_capita < 20_000.0


def test_case1_costs_proportional_to_attack(benchmark, outcome):
    result = outcome

    def correlation():
        attacks = [o.mean_attack_rate for o in result.outcomes]
        costs = [o.total_cost for o in result.outcomes]
        return float(np.corrcoef(attacks, costs)[0, 1])

    corr = benchmark(correlation)
    assert corr > 0.8
