"""Ablation: network partitioning strategies (Section III).

The paper deliberately uses a simple threshold partitioner ("even a simple
partitioning scheme takes a significant amount of compute time") plus a
disk cache.  This ablation quantifies the trade: the threshold scheme vs
round-robin vs degree-greedy on balance, cut edges, partitioning time, and
the resulting simulated execution time — and measures the cache speedup.
"""

import time

import numpy as np
import pytest

from repro.epihiper import (
    Simulation,
    build_covid_model,
    partition_cached,
    partition_degree_greedy,
    partition_round_robin,
    partition_threshold,
    simulate_rank_execution,
    uniform_seeds,
)
from repro.synthpop import build_region_network

P = 16


@pytest.fixture(scope="module")
def setup():
    pop, net = build_region_network("CA", scale=1e-3, seed=6)
    model = build_covid_model()
    sim = Simulation(model, pop, net, seed=3)
    sim.seed_infections(uniform_seeds(pop, 60, sim.rng))
    result = sim.run(60)
    return net, result


def test_ablation_partitioners(benchmark, setup, save_artifact):
    net, result = setup

    def compare():
        out = {}
        for name, fn in (
            ("threshold", partition_threshold),
            ("round-robin", partition_round_robin),
            ("degree-greedy", partition_degree_greedy),
        ):
            t0 = time.perf_counter()
            part = fn(net, P)
            elapsed = time.perf_counter() - t0
            prof = simulate_rank_execution(result, net, part)
            out[name] = {
                "imbalance": part.imbalance(),
                "cut_fraction": part.cut_edges(net) / net.n_edges,
                "partition_time": elapsed,
                "exec_time": prof.total_time,
            }
        return out

    stats = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = [f"{'scheme':<14}{'imbalance':>10}{'cut %':>8}"
             f"{'part (s)':>10}{'exec (units)':>14}"]
    for name, s in stats.items():
        lines.append(
            f"{name:<14}{s['imbalance']:>10.3f}"
            f"{s['cut_fraction'] * 100:>8.1f}{s['partition_time']:>10.4f}"
            f"{s['exec_time']:>14.0f}")
    save_artifact("ablation_partitioning", "\n".join(lines))

    # The paper's threshold scheme balances edges well...
    assert stats["threshold"]["imbalance"] < 1.2
    # ...while round-robin (node-balanced, edge-blind) is worse or equal.
    assert (stats["threshold"]["imbalance"]
            <= stats["round-robin"]["imbalance"] + 0.05)
    # Degree-greedy balances best but costs the most partitioning time.
    assert stats["degree-greedy"]["imbalance"] <= 1.1
    assert (stats["degree-greedy"]["partition_time"]
            >= stats["round-robin"]["partition_time"] * 0.5)
    # Execution time tracks the balance (the slowest rank gates the tick).
    assert (stats["threshold"]["exec_time"]
            <= stats["round-robin"]["exec_time"] * 1.1)


def test_ablation_partition_cache(benchmark, setup, tmp_path, save_artifact):
    net, _result = setup

    def cached_roundtrip():
        t0 = time.perf_counter()
        _p1, hit1 = partition_cached(net, P, tmp_path)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        _p2, hit2 = partition_cached(net, P, tmp_path)
        warm = time.perf_counter() - t0
        return cold, warm, hit1, hit2

    cold, warm, hit1, hit2 = benchmark.pedantic(
        cached_roundtrip, rounds=1, iterations=1)
    save_artifact(
        "ablation_partition_cache",
        f"cold: {cold:.4f}s (hit={hit1})\nwarm: {warm:.4f}s (hit={hit2})")
    assert not hit1 and hit2
    # The cache is the point: warm load beats recomputation.
    assert warm < cold
