"""Result-store memoization: the economics of never redoing finished work.

The paper's pipeline re-ran overlapping designs night after night for 30+
weeks; `repro.store` makes repeated work free.  This bench measures the
cold/warm asymmetry of a memoized calibration round (the warm pass serves
every instance from the content-addressed store, executing zero
simulations) and the resumed-night makespan (a fully-journaled night
re-packs nothing).
"""

import time

import numpy as np

from repro.core.calibration_wf import _design_specs, run_calibration_workflow
from repro.core.designs import (
    ExperimentDesign,
    case_study_space,
    factorial_cells,
)
from repro.core.orchestrator import orchestrate_night
from repro.store import ContentStore, RunLedger, run_instances_memoized

CAL_ARGS = dict(n_cells=12, n_days=60, scale=1e-3, seed=29,
                mcmc_samples=200, mcmc_burn_in=200)


def test_cold_vs_warm_calibration(benchmark, tmp_path, save_artifact):
    store = ContentStore(tmp_path / "store")

    def rounds():
        t0 = time.perf_counter()
        cold = run_calibration_workflow("VA", **CAL_ARGS, store=store)
        t_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_calibration_workflow("VA", **CAL_ARGS, store=store)
        t_warm = time.perf_counter() - t0

        # Isolate the instance-execution portion the store short-circuits
        # (the MCMC posterior pass runs either way).
        space = case_study_space()
        specs = _design_specs("VA", space, cold.prior_design,
                              n_days=CAL_ARGS["n_days"],
                              scale=CAL_ARGS["scale"],
                              seed=CAL_ARGS["seed"], seed_offset=1000,
                              label_prefix="bench")
        fresh = ContentStore(tmp_path / "fresh")
        t0 = time.perf_counter()
        run_instances_memoized(specs, store=fresh, parallel=False)
        t_exec_cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_instances_memoized(specs, store=fresh, parallel=False)
        t_exec_warm = time.perf_counter() - t0
        return cold, warm, t_cold, t_warm, t_exec_cold, t_exec_warm

    cold, warm, t_cold, t_warm, t_exec_cold, t_exec_warm = \
        benchmark.pedantic(rounds, rounds=1, iterations=1)

    s = store.stats
    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    exec_speedup = (t_exec_cold / t_exec_warm if t_exec_warm > 0
                    else float("inf"))
    save_artifact(
        "store_memoization",
        "memoized calibration round (12 cells, VA, 60 days)\n"
        f"cold round: {t_cold:.2f}s ({s.misses} misses, "
        f"{s.puts} blobs stored)\n"
        f"warm round: {t_warm:.2f}s ({s.hits} hits, "
        f"0 simulations executed)\n"
        f"round speedup: {speedup:.2f}x (MCMC runs either way)\n"
        f"instance execution cold: {t_exec_cold:.3f}s  "
        f"warm: {t_exec_warm:.3f}s  ({exec_speedup:.0f}x)\n"
        f"store: {len(store)} blobs, {store.total_bytes():,} bytes")

    # The warm pass executed nothing: every instance was a hit.
    assert s.misses == CAL_ARGS["n_cells"]
    assert s.hits == CAL_ARGS["n_cells"]
    # ...and is bit-identical to the cold pass.
    np.testing.assert_array_equal(cold.sim_series, warm.sim_series)
    assert t_warm < t_cold
    # Serving blobs beats running simulations by a wide margin.
    assert exec_speedup > 5.0


def test_resumed_night_repacks_nothing(benchmark, tmp_path, save_artifact):
    design = ExperimentDesign(
        name="bench-night",
        cells=factorial_cells({"TAU": [0.2, 0.25, 0.3]}),
        regions=("VA", "NC", "MD", "VT"),
        replicates=5,
    )
    path = tmp_path / "night.jsonl"

    def nights():
        with RunLedger(path) as ledger:
            full = orchestrate_night(design, seed=8, ledger=ledger)
        with RunLedger(path) as ledger:
            resumed = orchestrate_night(design, seed=8, ledger=ledger,
                                        resume=True)
        return full, resumed

    full, resumed = benchmark.pedantic(nights, rounds=1, iterations=1)
    save_artifact(
        "store_resume_night",
        f"design: {design.n_simulations} simulations "
        f"({design.n_cells} cells x {design.n_regions} regions x "
        f"{design.replicates} reps)\n"
        f"full night: makespan {full.remote_hours:.2f}h, "
        f"{len(full.schedule.records)} jobs\n"
        f"resumed night: makespan {resumed.remote_hours:.2f}h, "
        f"{len(resumed.schedule.records)} jobs re-executed, "
        f"{resumed.n_resumed} served from the ledger")

    assert len(full.schedule.records) == design.n_simulations
    assert len(resumed.schedule.records) == 0
    assert resumed.n_resumed == design.n_simulations
    assert resumed.schedule.makespan == 0.0
