"""Table II: cluster configurations and daily data volumes.

Regenerates the machine-spec rows and checks that the orchestrated daily
data movement falls inside the paper's ranges: configurations 100MB-8.7GB,
raw outputs 20GB-3.5TB, summaries 120MB-70GB, one-time staging 2TB.
"""

import pytest

from repro.cluster.machines import BRIDGES, RIVANNA
from repro.core.accounting import account_workflow
from repro.core.designs import calibration_design, prediction_design
from repro.core.orchestrator import orchestrate_night
from repro.params import GB, MB, TB, fmt_bytes


def spec_table():
    lines = [f"{'':<22}{'remote (Bridges)':>20}{'home (Rivanna)':>20}"]
    for label, attr in [
        ("# nodes", "n_nodes"),
        ("cpus/node", "cpus_per_node"),
        ("cores/cpu", "cores_per_cpu"),
        ("total cores", "total_cores"),
    ]:
        lines.append(f"{label:<22}{getattr(BRIDGES, attr):>20}"
                     f"{getattr(RIVANNA, attr):>20}")
    lines.append(f"{'ram/node':<22}{fmt_bytes(BRIDGES.ram_per_node_bytes):>20}"
                 f"{fmt_bytes(RIVANNA.ram_per_node_bytes):>20}")
    return "\n".join(lines)


def test_table2_machines(benchmark, save_artifact):
    text = benchmark(spec_table)
    save_artifact("table2_machines", text)
    assert BRIDGES.n_nodes == 720 and RIVANNA.n_nodes == 50
    assert BRIDGES.total_cores > 20_000


def nightly_volumes():
    out = {}
    for design in (prediction_design(), calibration_design(seed=0)):
        report = orchestrate_night(design, seed=0)
        out[design.name] = {
            "configs": report.link.bytes_moved(src="rivanna", dst="bridges"),
            "summaries": report.link.bytes_moved(src="bridges",
                                                 dst="rivanna"),
            "raw": account_workflow(design).raw_bytes,
        }
    return out


def test_table2_daily_volumes(benchmark, save_artifact):
    vols = benchmark.pedantic(nightly_volumes, rounds=1, iterations=1)
    lines = [f"{'workflow':<14}{'configs':>12}{'raw output':>12}"
             f"{'summaries':>12}"]
    for name, v in vols.items():
        lines.append(f"{name:<14}{fmt_bytes(v['configs']):>12}"
                     f"{fmt_bytes(v['raw']):>12}"
                     f"{fmt_bytes(v['summaries']):>12}")
    save_artifact("table2_daily_volumes", "\n".join(lines))

    for v in vols.values():
        assert 100 * MB <= v["configs"] <= 8.7 * GB
        assert 20 * GB <= v["raw"] <= 6 * TB
        assert 120 * MB <= v["summaries"] <= 70 * GB
