"""Scenario service under sustained submit/poll load.

Drives an in-process :class:`~repro.service.ScenarioService` with a
Zipf-distributed scenario mix from several submitter threads — the shape
of interactive planner demand, where a few "hot" what-ifs are asked over
and over.  Reports requests/s, p50/p99 request latency, and the coalesce
and memo hit rates that make the hot head cheap.

Run directly for the sharded-plane measurement (see ``__main__``)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py --shards 4

That mode spawns N real shard worker processes over one shared store
(CAS + lease table + terminal spool, exactly the ``serve --shards N``
composition), drives each with its key-routed slice of the Zipf mix, and
reports sustained plane throughput, the coalescing ratio vs a
single-process run of the same mix, a bit-identical payload check, and —
honestly, separately — the HTTP front-door round-trip rate through the
router (this host has one CPU core; HTTP serialization timeshares with
everything else, so the front-door number is a floor, not the plane's
capacity).
"""

import hashlib
import json
import threading

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec
from repro.service import ScenarioService
from repro.store.cas import ContentStore

N_SCENARIOS = 12  #: distinct scenarios in the mix
N_REQUESTS = 120  #: total submissions across all threads
N_THREADS = 4
ZIPF_A = 1.5
N_DAYS = 10


def scenario(i):
    return InstanceSpec(
        region_code="VT", params={"TAU": 0.20 + 0.01 * i},
        n_days=N_DAYS, scale=1e-3, seed=1000 + i, label=f"svc-bench-{i}")


def zipf_mix(rng):
    """N_REQUESTS scenario indices, Zipf-weighted toward the head."""
    ranks = np.arange(1, N_SCENARIOS + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_A
    weights /= weights.sum()
    return rng.choice(N_SCENARIOS, size=N_REQUESTS, p=weights)


@pytest.fixture()
def service(tmp_path):
    svc = ScenarioService(store=ContentStore(tmp_path / "store"),
                          capacity=N_REQUESTS, batch_size=8,
                          parallel=False).start()
    yield svc
    svc.stop(drain=True, timeout_s=60.0)


def drive(service, mix):
    """Submit the whole mix from N_THREADS threads, wait for every reply."""
    chunks = np.array_split(mix, N_THREADS)
    ids = [[] for _ in range(N_THREADS)]

    def submitter(slot):
        for idx in chunks[slot]:
            adm = service.submit(scenario(int(idx)))
            if adm.admitted:
                ids[slot].append(adm.request_id)

    threads = [threading.Thread(target=submitter, args=(s,))
               for s in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = [service.queue.wait(rid, timeout_s=120.0)
               for slot in ids for rid in slot]
    return records


def test_service_throughput_zipf_mix(benchmark, service, save_artifact):
    rng = np.random.default_rng(7)
    mix = zipf_mix(rng)

    watch = {}

    def load():
        import time

        t0 = time.perf_counter()
        records = drive(service, mix)
        watch["wall_s"] = time.perf_counter() - t0
        return records

    records = benchmark.pedantic(load, rounds=1, iterations=1)
    assert len(records) == N_REQUESTS
    assert all(rec.state == "done" for rec in records)

    latencies = np.array([rec.total_s for rec in records])
    snap = service.metrics_snapshot()
    admitted = snap["service.admitted"]
    coalesced = snap.get("service.coalesced", 0)
    memo_hits = snap.get("memo.hits", 0)
    memo_misses = snap.get("memo.misses", 0)
    rps = N_REQUESTS / watch["wall_s"]

    # Every distinct scenario executes at most once; everything else is
    # served by coalescing (same in-flight batch) or the memo store.
    assert snap["runner.instances"] == N_SCENARIOS
    assert coalesced + memo_hits == N_REQUESTS - N_SCENARIOS

    lines = [
        "scenario service under Zipf submit/poll load",
        f"  mix: {N_REQUESTS} requests over {N_SCENARIOS} scenarios "
        f"(zipf a={ZIPF_A}), {N_THREADS} submitter threads",
        f"  throughput: {rps:.1f} requests/s "
        f"({watch['wall_s']:.2f}s wall)",
        f"  latency: p50 {np.percentile(latencies, 50) * 1e3:.1f}ms, "
        f"p99 {np.percentile(latencies, 99) * 1e3:.1f}ms",
        f"  admission: {admitted:.0f} queued, {coalesced:.0f} coalesced "
        f"({coalesced / N_REQUESTS:.0%} of demand)",
        f"  memo: {memo_hits:.0f} hits / {memo_misses:.0f} misses "
        f"({memo_hits / max(memo_hits + memo_misses, 1):.0%} hit rate)",
        f"  executions: {snap['runner.instances']:.0f} "
        f"(one per distinct scenario)",
    ]
    save_artifact("service_throughput", "\n".join(lines))
    print("\n".join(lines))


# -- sharded-plane measurement (python bench_service_throughput.py) ------------

BENCH_SALT = "bench-shards"


def payload_digest_hex(result):
    """Stable digest of a JSON-shaped result payload (bit-identity check)."""
    return hashlib.sha256(
        json.dumps(result, sort_keys=True).encode()).hexdigest()


def record_result(rec):
    """The JSON payload a client would receive for a DONE record."""
    return {k: v.tolist() for k, v in rec.result.items()}


#: Closed-loop driver chunk: comfortably inside the queue's terminal-
#: record retention window (``max_finished``), so every id in a chunk is
#: still pollable when its chunk is waited on.
DRIVE_CHUNK = 1500


def drive_service(service, specs, mix, *, timeout_s=600.0):
    """Drive ``mix`` (spec indices) closed-loop: submit a chunk as fast
    as possible, wait every id in it to terminal, repeat.

    Returns ``(wall_s, digests)`` where digests maps spec index -> the
    payload digest of that scenario's answer.
    """
    import time

    digests = {}
    t0 = time.perf_counter()
    for lo in range(0, len(mix), DRIVE_CHUNK):
        chunk = mix[lo:lo + DRIVE_CHUNK]
        ids = [(int(i), service.submit(specs[int(i)]).request_id)
               for i in chunk]
        for i, rid in ids:
            rec = service.queue.wait(rid, timeout_s=timeout_s)
            assert rec is not None and rec.state == "done", (i, rid)
            if i not in digests:
                digests[i] = payload_digest_hex(record_result(rec))
    return time.perf_counter() - t0, digests


def make_specs(n):
    return [scenario(i) for i in range(n)]


def single_process_run(store_root, mix):
    """The whole mix through one service: the coalescing/digest baseline."""
    service = ScenarioService(
        store=ContentStore(store_root), salt=BENCH_SALT,
        capacity=len(mix) + 1, batch_size=8, elastic_max=1024,
        parallel=False).start()
    try:
        wall_s, digests = drive_service(service, make_specs(N_SCENARIOS), mix)
        snap = service.metrics_snapshot()
    finally:
        service.stop(drain=True, timeout_s=60.0)
    return {"wall_s": wall_s, "requests": len(mix), "digests": digests,
            "coalesced": snap.get("service.coalesced", 0),
            "memo_hits": snap.get("memo.hits", 0),
            "memo_misses": snap.get("memo.misses", 0)}


def plane_worker(index, num_shards, store_root, mix, barrier, result_path):
    """One shard worker process of the plane measurement.

    Builds the exact shard composition of ``serve --shards N`` — shared
    CAS, lease table, terminal spool, shard-prefixed ids, elastic broker
    — and drives it with the key-routed slice of the global mix.  The
    driver is in-process (no HTTP) so the measurement is of the sharded
    service plane itself.
    """
    from pathlib import Path

    from repro.service.shard import ShardConfig, build_shard_service

    config = ShardConfig(
        index=index, num_shards=num_shards, store_root=str(store_root),
        port_file="", salt=BENCH_SALT, capacity=len(mix) + 1, batch_size=8,
        elastic_max=1024, parallel=False)
    service, _store = build_shard_service(config)
    service.start()
    try:
        specs = make_specs(N_SCENARIOS)
        barrier.wait()
        wall_s, digests = drive_service(service, specs, mix)
        snap = service.metrics_snapshot()
    finally:
        service.stop(drain=True, timeout_s=60.0)
    Path(result_path).write_text(json.dumps({
        "shard": index, "requests": len(mix), "wall_s": wall_s,
        "digests": digests,
        "coalesced": snap.get("service.coalesced", 0),
        "memo_hits": snap.get("memo.hits", 0),
        "memo_misses": snap.get("memo.misses", 0),
        "remote_hits": snap.get("memo.remote_hits", 0),
        "batch_effective": snap.get("service.batch_effective", 0)}))


def sharded_plane_run(store_root, mix, num_shards):
    """Spawn the worker fleet, partition the mix by key hash, aggregate."""
    import multiprocessing

    from repro.service.shard import shard_of
    from repro.store.keys import instance_key

    keys = [instance_key(s, salt=BENCH_SALT) for s in make_specs(N_SCENARIOS)]
    slices = [[int(i) for i in mix
               if shard_of(keys[int(i)], num_shards) == k]
              for k in range(num_shards)]
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(num_shards)
    procs = []
    for k in range(num_shards):
        result_path = store_root / f"bench_result_s{k}.json"
        # daemon=False: shard brokers may own process pools.
        procs.append(ctx.Process(
            target=plane_worker,
            args=(k, num_shards, store_root, slices[k], barrier,
                  str(result_path)),
            daemon=False))
    for p in procs:
        p.start()
    for p in procs:
        p.join(900)
        assert p.exitcode == 0, f"worker exited {p.exitcode}"
    results = [json.loads((store_root / f"bench_result_s{k}.json")
                          .read_text()) for k in range(num_shards)]
    return results


def http_front_door_run(store_root, mix, num_shards, *, n_threads=4):
    """The same mix through the real router + shard HTTP processes."""
    import time

    from repro.service import Router, ServiceClient, ShardFleet, \
        make_router_server

    fleet = ShardFleet(store_root, num_shards, capacity=512, batch_size=8,
                       elastic_max=64, parallel=False, salt=BENCH_SALT)
    fleet.start()
    server = make_router_server(Router.for_fleet(fleet))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://127.0.0.1:%d" % server.server_address[1]
    bodies = [{"region": "VT", "params": {"TAU": 0.20 + 0.01 * int(i)},
               "days": N_DAYS, "scale": 1e-3, "seed": 1000 + int(i)}
              for i in mix]
    chunks = np.array_split(np.arange(len(bodies)), n_threads)
    walls = [0.0] * n_threads

    def submitter(slot):
        client = ServiceClient(url, timeout_s=120.0)
        t0 = time.perf_counter()
        ids = [client.submit(bodies[int(j)])["id"] for j in chunks[slot]]
        for rid in ids:
            view = client.wait(rid, timeout_s=300.0)
            assert view["state"] == "done"
        walls[slot] = time.perf_counter() - t0

    try:
        t0 = time.perf_counter()
        threads = [threading.Thread(target=submitter, args=(s,))
                   for s in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall_s = time.perf_counter() - t0
    finally:
        server.shutdown()
        server.server_close()
        fleet.stop()
    return {"requests": len(bodies), "wall_s": wall_s}


def main():
    import argparse
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="sharded scenario-service plane throughput")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--requests", type=int, default=24_000,
                        help="total submissions in the measured mix")
    parser.add_argument("--http-requests", type=int, default=240,
                        help="submissions for the HTTP front-door pass")
    parser.add_argument("--out", default=str(
        Path(__file__).parent / "out" / "service_throughput_sharded.txt"))
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    ranks = np.arange(1, N_SCENARIOS + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_A
    weights /= weights.sum()
    mix = rng.choice(N_SCENARIOS, size=args.requests, p=weights)

    tmp = Path(tempfile.mkdtemp(prefix="bench-shards-"))

    print(f"single-process baseline: {args.requests} requests ...",
          flush=True)
    single = single_process_run(tmp / "store-single", mix)
    rps_single = single["requests"] / single["wall_s"]
    ratio_single = (single["requests"] - single["memo_misses"]) \
        / single["requests"]

    print(f"sharded plane: {args.shards} worker processes ...", flush=True)
    shards = sharded_plane_run(tmp / "store-sharded", mix, args.shards)
    plane_requests = sum(r["requests"] for r in shards)
    plane_wall = max(r["wall_s"] for r in shards)
    rps_plane = plane_requests / plane_wall
    plane_misses = sum(r["memo_misses"] for r in shards)
    ratio_plane = (plane_requests - plane_misses) / plane_requests

    # Bit-identity: every scenario's sharded answer equals the
    # single-process answer, byte for byte (JSON-serialized payload).
    sharded_digests = {}
    for r in shards:
        sharded_digests.update({int(k): v for k, v in r["digests"].items()})
    assert set(sharded_digests) == set(single["digests"])
    mismatched = [i for i, d in sharded_digests.items()
                  if single["digests"][i] != d]
    assert not mismatched, f"payload mismatch for scenarios {mismatched}"

    print(f"http front door: {args.http_requests} requests ...", flush=True)
    http = http_front_door_run(tmp / "store-http", mix[:args.http_requests],
                               args.shards)
    rps_http = http["requests"] / http["wall_s"]

    lines = [
        "sharded scenario service plane (serve --shards N composition)",
        f"  mix: {args.requests} requests over {N_SCENARIOS} scenarios "
        f"(zipf a={ZIPF_A}), key-hash sharded",
        f"  single-process baseline: {rps_single:,.0f} req/s "
        f"({single['wall_s']:.2f}s wall), "
        f"{single['memo_misses']:.0f} executions, "
        f"coalescing ratio {ratio_single:.1%}",
        f"  sharded plane ({args.shards} worker processes, shared "
        f"CAS+leases+spool): {rps_plane:,.0f} req/s sustained "
        f"({plane_wall:.2f}s wall), {plane_misses:.0f} executions "
        f"fleet-wide, coalescing ratio {ratio_plane:.1%}",
        "  per-shard: " + ", ".join(
            f"s{r['shard']}={r['requests']}req/"
            f"{r['requests'] / r['wall_s']:,.0f}rps" for r in shards),
        f"  coalescing delta vs single-process: "
        f"{abs(ratio_plane - ratio_single) * 100:.2f} points "
        f"(gate: within 5)",
        "  payloads: bit-identical to single-process for all "
        f"{len(sharded_digests)} scenarios (sha256 over JSON payload)",
        f"  http front door (router + {args.shards} shard processes, "
        f"1 CPU core): {rps_http:,.0f} req/s round-trip over "
        f"{http['requests']} requests",
    ]
    text = "\n".join(lines)
    print(text)
    Path(args.out).parent.mkdir(exist_ok=True)
    Path(args.out).write_text(text + "\n")
    assert rps_plane >= 10_000, f"plane throughput {rps_plane:,.0f} < 10k"
    assert abs(ratio_plane - ratio_single) <= 0.05


if __name__ == "__main__":
    main()
