"""Scenario service under sustained submit/poll load.

Drives an in-process :class:`~repro.service.ScenarioService` with a
Zipf-distributed scenario mix from several submitter threads — the shape
of interactive planner demand, where a few "hot" what-ifs are asked over
and over.  Reports requests/s, p50/p99 request latency, and the coalesce
and memo hit rates that make the hot head cheap.
"""

import threading

import numpy as np
import pytest

from repro.core.parallel import InstanceSpec
from repro.service import ScenarioService
from repro.store.cas import ContentStore

N_SCENARIOS = 12  #: distinct scenarios in the mix
N_REQUESTS = 120  #: total submissions across all threads
N_THREADS = 4
ZIPF_A = 1.5
N_DAYS = 10


def scenario(i):
    return InstanceSpec(
        region_code="VT", params={"TAU": 0.20 + 0.01 * i},
        n_days=N_DAYS, scale=1e-3, seed=1000 + i, label=f"svc-bench-{i}")


def zipf_mix(rng):
    """N_REQUESTS scenario indices, Zipf-weighted toward the head."""
    ranks = np.arange(1, N_SCENARIOS + 1, dtype=np.float64)
    weights = ranks ** -ZIPF_A
    weights /= weights.sum()
    return rng.choice(N_SCENARIOS, size=N_REQUESTS, p=weights)


@pytest.fixture()
def service(tmp_path):
    svc = ScenarioService(store=ContentStore(tmp_path / "store"),
                          capacity=N_REQUESTS, batch_size=8,
                          parallel=False).start()
    yield svc
    svc.stop(drain=True, timeout_s=60.0)


def drive(service, mix):
    """Submit the whole mix from N_THREADS threads, wait for every reply."""
    chunks = np.array_split(mix, N_THREADS)
    ids = [[] for _ in range(N_THREADS)]

    def submitter(slot):
        for idx in chunks[slot]:
            adm = service.submit(scenario(int(idx)))
            if adm.admitted:
                ids[slot].append(adm.request_id)

    threads = [threading.Thread(target=submitter, args=(s,))
               for s in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = [service.queue.wait(rid, timeout_s=120.0)
               for slot in ids for rid in slot]
    return records


def test_service_throughput_zipf_mix(benchmark, service, save_artifact):
    rng = np.random.default_rng(7)
    mix = zipf_mix(rng)

    watch = {}

    def load():
        import time

        t0 = time.perf_counter()
        records = drive(service, mix)
        watch["wall_s"] = time.perf_counter() - t0
        return records

    records = benchmark.pedantic(load, rounds=1, iterations=1)
    assert len(records) == N_REQUESTS
    assert all(rec.state == "done" for rec in records)

    latencies = np.array([rec.total_s for rec in records])
    snap = service.metrics_snapshot()
    admitted = snap["service.admitted"]
    coalesced = snap.get("service.coalesced", 0)
    memo_hits = snap.get("memo.hits", 0)
    memo_misses = snap.get("memo.misses", 0)
    rps = N_REQUESTS / watch["wall_s"]

    # Every distinct scenario executes at most once; everything else is
    # served by coalescing (same in-flight batch) or the memo store.
    assert snap["runner.instances"] == N_SCENARIOS
    assert coalesced + memo_hits == N_REQUESTS - N_SCENARIOS

    lines = [
        "scenario service under Zipf submit/poll load",
        f"  mix: {N_REQUESTS} requests over {N_SCENARIOS} scenarios "
        f"(zipf a={ZIPF_A}), {N_THREADS} submitter threads",
        f"  throughput: {rps:.1f} requests/s "
        f"({watch['wall_s']:.2f}s wall)",
        f"  latency: p50 {np.percentile(latencies, 50) * 1e3:.1f}ms, "
        f"p99 {np.percentile(latencies, 99) * 1e3:.1f}ms",
        f"  admission: {admitted:.0f} queued, {coalesced:.0f} coalesced "
        f"({coalesced / N_REQUESTS:.0%} of demand)",
        f"  memo: {memo_hits:.0f} hits / {memo_misses:.0f} misses "
        f"({memo_hits / max(memo_hits + memo_misses, 1):.0%} hit rate)",
        f"  executions: {snap['runner.instances']:.0f} "
        f"(one per distinct scenario)",
    ]
    save_artifact("service_throughput", "\n".join(lines))
    print("\n".join(lines))
