"""Case study 2: county-level projections with the metapopulation model.

Reproduces Appendix F's workflow: SEIR dynamics across counties, Bayesian
calibration of transmissibility and infectious duration by direct MCMC
(Eq. 6), and projection of the five social-distancing scenarios with
uncertainty bounds from the posterior sample.
"""

import numpy as np
import pytest

from repro.metapop import (
    ALL_SCENARIOS,
    DISTANCE_JUN10_25,
    MetapopModel,
    SEIRParams,
    calibrate_metapop,
)
from repro.surveillance.truth import GroundTruth

HORIZON = 160
TRUE_PARAMS = SEIRParams(beta=0.45, infectious_days=6.0)


@pytest.fixture(scope="module")
def setup():
    model = MetapopModel.for_region("VA")
    rng = np.random.default_rng(3)
    run = model.run(TRUE_PARAMS, HORIZON,
                    beta_modifier=DISTANCE_JUN10_25.beta_modifier(),
                    stochastic=True, rng=rng, initial_infected=30.0)
    daily = run.confirmed.T
    truth = GroundTruth("VA", np.arange(model.n_counties, dtype=np.int32),
                        daily, np.cumsum(daily, axis=1))
    cal = calibrate_metapop(model, truth, n_samples=500, burn_in=400,
                            seed=4, initial_infected=30.0)
    return model, truth, cal


def test_case2_calibration_recovers_parameters(benchmark, setup,
                                               save_artifact):
    model, truth, cal = benchmark.pedantic(lambda: setup, rounds=1,
                                           iterations=1)
    post = cal.mcmc.samples
    lines = [
        f"true beta: {TRUE_PARAMS.beta}  "
        f"posterior: {post[:, 0].mean():.3f} ± {post[:, 0].std():.3f}",
        f"true infectious days: {TRUE_PARAMS.infectious_days}  "
        f"posterior: {post[:, 1].mean():.2f} ± {post[:, 1].std():.2f}",
        f"true R0: {TRUE_PARAMS.r0:.2f}  "
        f"MAP R0: {cal.map_params.r0:.2f}",
    ]
    save_artifact("case2_calibration", "\n".join(lines))

    assert abs(post[:, 0].mean() - TRUE_PARAMS.beta) < 0.1
    r0s = post[:, 0] * post[:, 1]
    assert abs(np.median(r0s) - TRUE_PARAMS.r0) < 0.8


def test_case2_scenario_projections(benchmark, setup, save_artifact):
    model, _truth, cal = setup

    def project():
        rng = np.random.default_rng(5)
        out = {}
        for sc in ALL_SCENARIOS:
            finals = []
            for params in cal.posterior_params(10, rng):
                res = model.run(params, HORIZON,
                                beta_modifier=sc.beta_modifier(),
                                stochastic=True, rng=rng,
                                initial_infected=30.0)
                finals.append(res.state_confirmed_cumulative()[-1])
            out[sc.name] = (float(np.median(finals)),
                            float(np.quantile(finals, 0.05)),
                            float(np.quantile(finals, 0.95)))
        return out

    proj = benchmark.pedantic(project, rounds=1, iterations=1)
    lines = [f"{'scenario':<28}{'median':>14}{'5%':>14}{'95%':>14}"]
    for name, (med, lo, hi) in proj.items():
        lines.append(f"{name:<28}{med:>14,.0f}{lo:>14,.0f}{hi:>14,.0f}")
    save_artifact("case2_projections", "\n".join(lines))

    # Shape: worst case largest; intensity and duration both matter.
    meds = {k: v[0] for k, v in proj.items()}
    assert meds["worst-case"] == max(meds.values())
    assert (meds["distancing-to-Jun10-50pct"]
            < meds["distancing-to-Apr30-50pct"])
    assert (meds["distancing-to-Apr30-50pct"]
            < meds["distancing-to-Apr30-25pct"])
    # Uncertainty bounds are genuine intervals.
    for med, lo, hi in proj.values():
        assert lo <= med <= hi


def test_case2_county_resolution(benchmark, setup):
    model, truth, cal = setup

    def county_curves():
        res = model.run(cal.map_params, HORIZON,
                        beta_modifier=ALL_SCENARIOS[0].beta_modifier(),
                        initial_infected=30.0)
        return res.county_confirmed_cumulative()

    curves = benchmark.pedantic(county_curves, rounds=1, iterations=1)
    assert curves.shape == (model.n_counties, HORIZON)
    # Bigger counties accumulate more cases (gravity seeding + mixing).
    finals = curves[:, -1]
    big = np.argmax(model.county_pop)
    assert finals[big] == finals.max()
